"""Quickstart: keyword search over a relational database.

Builds a synthetic DBLP-like database, runs the end-to-end engine
(cleaning -> candidate networks -> top-k) and contrasts the three
algorithm families the tutorial surveys: schema-based (DISCOVER),
graph-based heuristic (BANKS) and exact Steiner trees.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import KeywordSearchEngine
from repro.datasets.bibliographic import generate_bibliographic_db


def main() -> None:
    db = generate_bibliographic_db(
        n_authors=60, n_papers=150, n_conferences=8, seed=7
    )
    print(f"database: {db}")
    engine = KeywordSearchEngine(db)

    query = "john database"
    print(f"\n--- schema-based top-5 for {query!r} (DISCOVER-style) ---")
    for result in engine.search(query, k=5):
        print(f"  [{result.score:.3f}] {result.network}")
        print(f"          {result.describe()}")

    print(f"\n--- BANKS backward expansion for {query!r} ---")
    for result in engine.search(query, method="banks", k=3):
        print(f"  [{result.score:.3f}] {result.describe()}")

    print(f"\n--- exact group Steiner tree for {query!r} ---")
    for result in engine.search(query, method="steiner"):
        print(f"  [{result.score:.3f}] {result.network}")
        print(f"          {result.describe()}")

    # A misspelled query is cleaned transparently (Pu & Yu, VLDB 08).
    dirty = "jhon databse"
    parsed = engine.parse(dirty)
    print(f"\n--- query cleaning: {dirty!r} -> {' '.join(parsed.keywords)!r} ---")
    for result in engine.search(dirty, k=3):
        print(f"  [{result.score:.3f}] {result.describe()}")

    print("\n--- type-ahead completions for 'dat' ---")
    print(" ", ", ".join(engine.suggest("dat")))

    print(f"\n--- refinement terms for 'database' (Tao & Yu) ---")
    for term, weight in engine.refine_terms("database", k=6):
        print(f"  {term} ({weight:.0f})")


if __name__ == "__main__":
    main()
