"""Exploratory search over a product catalog and an events table.

Exercises the exploration side of the tutorial: Keyword++ predicate
mapping for non-quantitative keywords (slides 95-100), faceted
navigation with a cost model (slides 84-93), text-cube top cells
(slides 166-167) and aggregate minimal group-bys (slides 16, 165).

Run:  python examples/product_exploration.py
"""

from __future__ import annotations

from repro.ambiguity.rewriting import KeywordPlusPlus
from repro.analysis.aggregation import cell_members, minimal_group_bys
from repro.analysis.facets import (
    NavigationModel,
    build_navigation_tree,
    navigation_cost,
)
from repro.analysis.textcube import TextCube, top_cells
from repro.datasets.events import tutorial_events_db
from repro.datasets.logs import generate_query_log
from repro.datasets.products import generate_product_db


def keyword_plus_plus_demo() -> None:
    db = generate_product_db(n_products=200, seed=13)
    kpp = KeywordPlusPlus(
        db,
        "product",
        categorical_attributes=["brand", "category"],
        numerical_attributes=["screen_size", "weight", "price"],
    )
    log = [
        ["ibm", "laptop"], ["laptop"], ["ibm", "business"], ["business"],
        ["small", "laptop"], ["small", "tablet"], ["tablet"],
    ]
    kpp.learn(log)
    print("--- Keyword++ learned mappings ---")
    for mapping in kpp.mappings.values():
        print(f"  {mapping.describe()}  (strength {mapping.strength:.2f})")
    query = ["small", "ibm", "laptop"]
    literal = kpp.literal_match(query)
    structured = kpp.structured_match(query)
    print(f"\nquery {query}: literal LIKE matches {len(literal)} products, "
          f"structured query matches {len(structured)}")
    print("first three structured answers (ordered by screen size):")
    for row in structured[:3]:
        print(f"  {row['name']}: brand={row['brand']}, "
              f"screen={row['screen_size']}\", ${row['price']}")


def faceted_navigation_demo() -> None:
    db = tutorial_events_db()
    rows = list(db.rows("events"))
    log = generate_query_log(db, "events", n_queries=60,
                             attributes=["state", "month"], seed=23)
    model = NavigationModel(log)
    tree = build_navigation_tree(rows, ["state", "month", "city"], model)
    print("\n--- faceted navigation tree (greedy, cost-model driven) ---")
    print(f"root facet: {tree.facet}  "
          f"(expected cost {navigation_cost(tree, model):.1f} vs "
          f"{len(rows)} for the flat list)")

    def show(node, indent=1):
        for child in node.children:
            attr, value = child.condition
            print("  " * indent + f"{attr}={value} ({child.size()} events)")
            show(child, indent + 1)

    show(tree)


def aggregation_demo() -> None:
    db = tutorial_events_db()
    rows = list(db.rows("events"))
    keywords = ["pool", "motorcycle", "american", "food"]
    print(f"\n--- aggregate keyword query {keywords} over (month, state) ---")
    for cell in minimal_group_bys(rows, ["month", "state"], keywords):
        members = cell_members(rows, cell)
        print(f"  group [{cell.label()}]: {len(members)} events")
        for row in members:
            print(f"      {row['city']}: {row['event']}")


def textcube_demo() -> None:
    db = generate_product_db(n_products=200, seed=13)
    rows = [
        (
            {"brand": r["brand"], "category": r["category"]},
            r["description"],
        )
        for r in db.rows("product")
    ]
    cube = TextCube(["brand", "category"], rows)
    print("\n--- text cube: top cells for 'light portable' ---")
    for cell, relevance, support in top_cells(
        cube, ["light", "portable"], k=5, min_support=3
    ):
        print(f"  {cell.label()}  relevance={relevance:.2f} support={support}")


def main() -> None:
    keyword_plus_plus_demo()
    faceted_navigation_demo()
    aggregation_demo()
    textcube_demo()


if __name__ == "__main__":
    main()
