"""XML keyword search session.

Replays the tutorial's XML threads: ?LCA semantics on the slide-33
conference tree, return-node inference (XSeek, slide 51; XReal, slides
37-38), snippets (slide 148), XBridge type clustering (slide 156),
describable role clustering on the slide-161 auctions, and the
axiomatic evaluation matrix (slides 107-109).

Run:  python examples/xml_search_session.py
"""

from __future__ import annotations

from repro import XmlSearchEngine
from repro.analysis.snippets import snippet_text
from repro.datasets.xml_corpora import (
    generate_bib_xml,
    slide_auction_tree,
    slide_conf_tree,
)
from repro.eval.axioms import axiom_matrix, standard_engines


def lca_semantics_demo() -> None:
    engine = XmlSearchEngine(slide_conf_tree())
    print("--- slide 33 tree, Q = {keyword, mark} ---")
    for semantics in ("slca", "elca"):
        results = engine.search("keyword mark", semantics=semantics)
        print(f"{semantics.upper()}:")
        for result in results:
            print(f"  [{result.score:.2f}] {result.describe()}")
            items = engine.snippet(result, "keyword mark")
            print(f"      snippet: {snippet_text(items)}")
            returns = engine.return_nodes(result, "keyword mark")
            print(f"      return nodes: {[n.tag for n in returns]}")

    print("\nXReal search-for node type for 'mark keyword':")
    for path, score in engine.infer_return_type("mark keyword"):
        print(f"  {path}  (score {score:.2f})")


def clustering_demo() -> None:
    tree = generate_bib_xml(n_confs=6, papers_per_conf=8, seed=5)
    engine = XmlSearchEngine(tree)
    results = engine.search("paper xml")
    print(f"\n--- XBridge type clusters for 'paper xml' "
          f"({len(results)} results) ---")
    for path, score, members in engine.cluster_by_type(results, "paper xml"):
        print(f"  {path}: {len(members)} results (score {score:.2f})")


def role_clustering_demo() -> None:
    engine = XmlSearchEngine(slide_auction_tree())
    results = engine.search("tom")
    print("\n--- slide 161 auctions, Q = {tom}: describable clusters ---")
    for description, members in engine.cluster_by_role(results, "tom").items():
        print(f"  [{description}] -> {len(members)} auction(s)")
        for result in members:
            print(f"      {result.describe(60)}")


def axioms_demo() -> None:
    tree = generate_bib_xml(n_confs=3, papers_per_conf=5, seed=9)
    matrix = axiom_matrix(
        standard_engines(), tree, ["xml", "john"], ["search", "paper"]
    )
    print("\n--- axiom satisfaction matrix (Q = xml john) ---")
    axioms = [
        "data-monotonicity",
        "data-consistency",
        "query-monotonicity",
        "query-consistency",
    ]
    header = f"{'engine':<10}" + "".join(f"{a:<22}" for a in axioms)
    print(header)
    for engine_name, reports in matrix.items():
        row = f"{engine_name:<10}"
        for axiom in axioms:
            report = reports[axiom]
            cell = "ok" if report.satisfied else f"{len(report.violations)} violations"
            row += f"{cell:<22}"
        print(row)


def main() -> None:
    lca_semantics_demo()
    clustering_demo()
    role_clustering_demo()
    axioms_demo()


if __name__ == "__main__":
    main()
