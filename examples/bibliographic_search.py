"""A SPARK-demo-style search session (tutorial slides 19-21).

The user looks for join papers by David DeWitt, starts with a typo,
refines after seeing results, compares candidates side by side, and
finally gets ranked query forms for structured follow-up — the whole
slide-19/20/21 interaction replayed against the library.

Run:  python examples/bibliographic_search.py
"""

from __future__ import annotations

from repro import KeywordSearchEngine
from repro.datasets.bibliographic import tiny_bibliographic_db
from repro.forms.generation import generate_forms, generate_skeletons
from repro.forms.matching import FormIndex, group_forms, rank_forms
from repro.relational.schema_graph import SchemaGraph
from repro.schema_search.candidate_networks import generate_candidate_networks
from repro.schema_search.spark import skyline_sweep
from repro.schema_search.tuple_sets import TupleSets


def main() -> None:
    db = tiny_bibliographic_db()
    engine = KeywordSearchEngine(db)

    # Step 1: the user types a misspelled query (slide 19: 'david'
    # turns out to be 'david J. Dewitt').
    raw = "dewit join"
    parsed = engine.parse(raw)
    print(f"user types : {raw!r}")
    print(f"cleaned to : {' '.join(parsed.keywords)!r}")

    # Step 2: top-k results with the SPARK (virtual document) score.
    keywords = list(parsed.keywords)
    tuple_sets = TupleSets(db, engine.index, keywords)
    cns = generate_candidate_networks(engine.schema_graph, tuple_sets, max_size=4)
    print(f"\ncandidate networks ({len(cns)}):")
    for cn in cns:
        print(f"  {cn.label()}")
    print("\nSPARK top-5 (skyline sweep):")
    for score, joined in skyline_sweep(cns, tuple_sets, engine.index, keywords, k=5):
        parts = " | ".join(
            f"{row.table.name}:{row.text()[:35]}" for row in joined.distinct_rows()
        )
        print(f"  [{score:.3f}] {parts}")

    # Step 3: compare several relevant results (slide 20: the user only
    # wants the join papers written by DeWitt, not the 4th result).
    results = engine.search("dewitt join", k=4)
    print("\ncomparison table (result differentiation):")
    table = engine.differentiate(results, budget=2)
    for result_id, features in table.items():
        label = results[result_id].network
        print(f"  result {result_id} ({label}):")
        for feature_type, value in features:
            print(f"      {feature_type} = {value}")

    # Step 4: hand the user query forms for a precise follow-up
    # (Chu et al., SIGMOD 09).
    skeletons = generate_skeletons(engine.schema_graph, max_size=3)
    forms = generate_forms(db.schema, skeletons, with_query_classes=True)
    form_index = FormIndex(forms, engine.index)
    ranked = rank_forms(form_index, ["dewitt", "join"], k=8)
    print(f"\ntop query forms for 'dewitt join' ({len(ranked)} shown, grouped):")
    for skeleton_label, by_class in group_forms(ranked).items():
        print(f"  skeleton {skeleton_label}:")
        for query_class, class_forms in by_class.items():
            print(f"      [{query_class}] x{len(class_forms)}")


if __name__ == "__main__":
    main()
