"""Keyword search beyond one static database (tutorial slide 168).

Four vignettes: streaming keyword search with the operator mesh
(Markowetz et al.), keyword-based database selection (Yu et al.),
Kite-style cross-database answers (Sayyadian et al.), and spatial
m-closest-keywords queries (Zhang et al.).

Run:  python examples/federated_and_streams.py
"""

from __future__ import annotations

from repro.datasets.bibliographic import tiny_bibliographic_db
from repro.distributed.kite import CrossDatabase, InterDbLink, cross_search, spans_databases
from repro.distributed.selection import DatabaseSummary, rank_databases
from repro.index.inverted import InvertedIndex
from repro.relational.database import Database
from repro.relational.schema import Column, Schema, TableSchema
from repro.relational.schema_graph import SchemaGraph
from repro.schema_search.candidate_networks import generate_candidate_networks
from repro.schema_search.mesh import OperatorMesh
from repro.schema_search.tuple_sets import TupleSets
from repro.spatial.mck import mck_grid
from repro.spatial.objects import generate_spatial_db


def streaming_demo() -> None:
    db = tiny_bibliographic_db()
    index = InvertedIndex(db)
    query = ["widom", "xml"]
    ts = TupleSets(db, index, query)
    cns = generate_candidate_networks(SchemaGraph(db.schema), ts, max_size=5)
    mesh = OperatorMesh(cns, query)
    print("--- streaming keyword search (operator mesh) ---")
    print(f"{len(cns)} CNs, {mesh.total_plan_steps()} unshared plan steps "
          f"clustered into {mesh.operator_count} operators "
          f"(sharing ratio {mesh.sharing_ratio():.2f})")
    emitted = 0
    for tid in db.all_tuple_ids():
        for cn_index, rows in mesh.feed(db.row(tid)):
            emitted += 1
            chain = " -> ".join(f"{r.table.name}:{r.rowid}" for r in rows)
            print(f"  result #{emitted} completed by arrival of {tid}: {chain}")
    print(f"total streamed results: {emitted}")


def _hr_database() -> Database:
    schema = Schema(
        [
            TableSchema(
                "person",
                (
                    Column("id", "int"),
                    Column("fullname", "str", text=True),
                    Column("office", "str", nullable=True, text=True),
                ),
                primary_key="id",
            )
        ]
    )
    hr = Database(schema)
    hr.insert("person", id=0, fullname="jennifer widom", office="gates 432")
    hr.insert("person", id=1, fullname="john smith", office="soda 511")
    return hr


def federation_demo() -> None:
    pubs = tiny_bibliographic_db()
    hr = _hr_database()
    print("\n--- database selection ---")
    summaries = [
        DatabaseSummary.build("pubs", pubs),
        DatabaseSummary.build("hr", hr),
    ]
    for query in (["widom", "xml"], ["widom", "gates"]):
        ranked = rank_databases(summaries, query)
        answer = ranked[0][0].name if ranked else "(no single database)"
        print(f"  Q={query}: best single database = {answer}")

    print("\n--- Kite-style cross-database search: Q = {xml, gates} ---")
    federation = CrossDatabase(
        {"pubs": pubs, "hr": hr},
        [InterDbLink("pubs", "author", "name", "hr", "person", "fullname")],
    )
    result = cross_search(federation, ["xml", "gates"], k=3)
    for tree in result.trees:
        nodes = sorted(tree.nodes)
        marker = "cross-db" if spans_databases(nodes) else "local"
        print(f"  [{marker}] " + " | ".join(str(n) for n in nodes))


def spatial_demo() -> None:
    print("\n--- spatial mCK query: tightest {cafe, museum, park} group ---")
    db = generate_spatial_db(n_objects=120, seed=43)
    result = mck_grid(db, ["cafe", "museum", "park"])
    if result is None:
        print("  no group covers all keywords")
        return
    group, d = result
    for obj in group:
        print(f"  ({obj.x:5.2f}, {obj.y:5.2f})  {obj.text}")
    print(f"  group diameter: {d:.3f}")


def main() -> None:
    streaming_demo()
    federation_demo()
    spatial_demo()


if __name__ == "__main__":
    main()
