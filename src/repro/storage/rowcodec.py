"""Compact row encoding shared by snapshots and the columnar substrates.

JSON snapshots spell every value out as text and repeat per-row list
syntax; for numeric-heavy tables that is several times the in-memory
footprint the columnar backend worked to shrink.  This codec packs a
whole table **column-major** (one column's values are self-similar, so
zlib bites much harder) with a one-byte type tag per value:

``0`` None · ``1`` int (zigzag varint) · ``2`` float (f64) ·
``3`` str (varint length + UTF-8) · ``4`` True · ``5`` False

The packed blob is zlib-compressed and base64-wrapped so it embeds in
the existing JSON snapshot envelope unchanged — manifests, checksums,
retention and the commit protocol are untouched; only the ``tables``
payload shape differs.  Decoding restores values exactly (ints, floats
— by IEEE bit pattern —, strings, bools, None), so rowids and TupleIds
survive byte-for-byte like the JSON codec.
"""

from __future__ import annotations

import base64
import struct
import zlib
from typing import List, Sequence, Tuple

from repro.storage.varint import decode_uint, encode_uint

_F64 = struct.Struct("<d")


def _zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


def _encode_value(value: object, out: bytearray) -> None:
    if value is None:
        out.append(0)
    elif value is True:
        out.append(4)
    elif value is False:
        out.append(5)
    elif isinstance(value, int):
        out.append(1)
        encode_uint(_zigzag(value), out)
    elif isinstance(value, float):
        out.append(2)
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(3)
        encode_uint(len(raw), out)
        out += raw
    else:
        raise TypeError(f"unsupported snapshot value type: {type(value)!r}")


def _decode_value(buf: bytes, pos: int) -> Tuple[object, int]:
    tag = buf[pos]
    pos += 1
    if tag == 0:
        return None, pos
    if tag == 4:
        return True, pos
    if tag == 5:
        return False, pos
    if tag == 1:
        raw, pos = decode_uint(buf, pos)
        return _unzigzag(raw), pos
    if tag == 2:
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag == 3:
        length, pos = decode_uint(buf, pos)
        return buf[pos:pos + length].decode("utf-8"), pos + length
    raise ValueError(f"bad value tag {tag} at offset {pos - 1}")


def encode_table(rows: Sequence[Sequence[object]]) -> str:
    """Pack a table's row tuples into a base64 string (column-major)."""
    out = bytearray()
    n_rows = len(rows)
    n_cols = len(rows[0]) if n_rows else 0
    encode_uint(n_rows, out)
    encode_uint(n_cols, out)
    for col in range(n_cols):
        for row in rows:
            _encode_value(row[col], out)
    return base64.b64encode(zlib.compress(bytes(out), 6)).decode("ascii")


def decode_table(data: str) -> List[List[object]]:
    """Inverse of :func:`encode_table`; rows in original order."""
    buf = zlib.decompress(base64.b64decode(data.encode("ascii")))
    pos = 0
    n_rows, pos = decode_uint(buf, pos)
    n_cols, pos = decode_uint(buf, pos)
    rows: List[List[object]] = [[None] * n_cols for _ in range(n_rows)]
    for col in range(n_cols):
        for rowid in range(n_rows):
            value, pos = _decode_value(buf, pos)
            rows[rowid][col] = value
    return rows
