"""LEB128-style varint coding for postings and forward-index runs.

Every compact substrate in :mod:`repro.storage` stores integer runs —
rowids, column indexes, term frequencies, token ids — as unsigned
varints (7 payload bits per byte, high bit = continuation).  Ascending
runs are delta-coded first, so dense posting lists collapse to ~1 byte
per entry regardless of the absolute rowid magnitude.

All functions are pure and dependency-free; the decoders take an
explicit position and return the new position so callers can walk
mixed-field records without slicing.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def encode_uint(value: int, out: bytearray) -> None:
    """Append one unsigned varint to *out*."""
    if value < 0:
        raise ValueError(f"varint values must be >= 0, got {value}")
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def decode_uint(buf, pos: int) -> Tuple[int, int]:
    """Read one unsigned varint from *buf* at *pos*; (value, new_pos)."""
    result = 0
    shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def encode_run(values: Sequence[int]) -> bytes:
    """Delta+varint encode an ascending integer run (count-prefixed)."""
    out = bytearray()
    encode_uint(len(values), out)
    prev = 0
    for value in values:
        if value < prev:
            raise ValueError("runs must be non-decreasing for delta coding")
        encode_uint(value - prev, out)
        prev = value
    return bytes(out)


def decode_run(buf, pos: int = 0) -> Tuple[List[int], int]:
    """Inverse of :func:`encode_run`; returns (values, new_pos)."""
    count, pos = decode_uint(buf, pos)
    values: List[int] = []
    prev = 0
    for _ in range(count):
        delta, pos = decode_uint(buf, pos)
        prev += delta
        values.append(prev)
    return values, pos
