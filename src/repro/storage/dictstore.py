"""Reference dict-of-objects backend (the original index layout).

This is the historical :class:`~repro.index.inverted.InvertedIndex`
internals lifted behind :class:`StorageBackend` with **no behavior
change**: every statistic the scorers consult is a precomputed O(1)
dict probe, posting lists are tuples of :class:`Posting` objects, and
refresh() appends delta postings in arrival order exactly as before.
It is the fastest backend per lookup and the memory baseline the
compact substrates are benchmarked against.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.relational.database import Database, TupleId
from repro.storage.base import (
    EMPTY_POSTINGS,
    EMPTY_TF,
    EMPTY_TUPLES,
    Posting,
    StorageBackend,
)


class DictBackend(StorageBackend):
    """Token -> tuple-of-:class:`Posting` with precomputed DF/TF maps."""

    name = "dict"

    def __init__(self) -> None:
        super().__init__()
        self._postings: Dict[str, Tuple[Posting, ...]] = {}
        self._matching: Dict[str, Tuple[TupleId, ...]] = {}
        self._df: Dict[str, int] = {}
        self._tf: Dict[str, Dict[TupleId, int]] = {}
        self._tuple_tokens: Dict[TupleId, Set[str]] = {}
        # Scan staging (valid between _begin and _commit).
        self._stage_postings: Dict[str, List[Posting]] = {}
        self._stage_matching: Dict[str, Dict[TupleId, None]] = {}
        self._stage_tf: Dict[str, Dict[TupleId, int]] = {}

    # ------------------------------------------------------------------
    # Scan hooks
    # ------------------------------------------------------------------
    def _begin(self, db: Database, initial: bool) -> None:
        self._stage_postings = {}
        self._stage_matching = {}
        self._stage_tf = {}

    def _add_row(self, tid: TupleId, row, text_cols: Sequence[str]) -> None:
        postings = self._stage_postings
        matching = self._stage_matching
        tf = self._stage_tf
        seen: Set[str] = set()
        for column, counts in self._column_token_counts(row, text_cols):
            for token, freq in counts.items():
                postings.setdefault(token, []).append(Posting(tid, column, freq))
                matching.setdefault(token, {}).setdefault(tid)
                token_tf = tf.setdefault(token, {})
                token_tf[tid] = token_tf.get(tid, 0) + freq
                seen.add(token)
        if seen:
            self._tuple_tokens[tid] = seen

    def _commit(self, db: Database, initial: bool, staged: int) -> None:
        if not initial and not staged:
            return
        for token, plist in self._stage_postings.items():
            self._postings[token] = (
                self._postings.get(token, EMPTY_POSTINGS) + tuple(plist)
            )
            tids = tuple(self._stage_matching[token])
            merged = self._matching.get(token, EMPTY_TUPLES) + tids
            self._matching[token] = merged
            self._df[token] = len(merged)
            token_tf = self._tf.setdefault(token, {})
            for tid, freq in self._stage_tf[token].items():
                token_tf[tid] = token_tf.get(tid, 0) + freq
        self._stage_postings = {}
        self._stage_matching = {}
        self._stage_tf = {}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def matching_view(self, token: str) -> Tuple[TupleId, ...]:
        return self._matching.get(token, EMPTY_TUPLES)

    def postings(self, token: str) -> Tuple[Posting, ...]:
        return self._postings.get(token, EMPTY_POSTINGS)

    def term_frequency(self, tid: TupleId, token: str) -> int:
        return self._tf.get(token, EMPTY_TF).get(tid, 0)

    def document_frequency(self, token: str) -> int:
        return self._df.get(token, 0)

    def tokens_of(self, tid: TupleId) -> Set[str]:
        return set(self._tuple_tokens.get(tid, ()))

    def contains_token(self, tid: TupleId, token: str) -> bool:
        return token in self._tuple_tokens.get(tid, ())

    def has_token(self, token: str) -> bool:
        return token in self._postings

    def vocabulary(self) -> List[str]:
        return sorted(self._postings)

    def token_count(self) -> int:
        return len(self._postings)
