"""Compact columnar in-memory backend.

Where the dict backend spends a Python object per posting (a frozen
``Posting`` holding a ``TupleId`` holding two boxed fields), this
backend stores the whole index as a handful of flat buffers:

* **vocab**: token string → dense int token id (strings interned once);
* **postings**: one delta+varint byte blob per token id, laid out as
  table blocks — ``[n_blocks][table_idx, n_entries, (rowid_delta,
  col_id, freq)*]`` — in canonical (table, rowid) order, ~3–6 bytes per
  occurrence instead of ~200;
* **df**: an ``array('I')`` indexed by token id;
* **forward**: per table, one growing ``bytearray`` of varint-encoded
  sorted token-id runs plus an ``array('Q')`` of row offsets, backing
  ``tokens_of`` / ``contains_token`` without a dict of sets.

Decoded per-token views (matching tuple + tid→tf map) are materialised
on demand into a bounded LRU (:class:`TokenViewCache`), so the hot
scoring loops still see O(1) probes for the tokens a query actually
touches while cold vocabulary stays byte-packed.

refresh() decodes only the blobs of tokens the new rows contain,
merges the staged entries per table block (append-only rowids keep
blocks sorted by construction) and re-encodes — the same suffix-scan
contract as the dict backend.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.relational.database import Database, TupleId
from repro.storage.base import (
    EMPTY_TUPLES,
    Posting,
    StorageBackend,
    TokenView,
    TokenViewCache,
)
from repro.storage.varint import decode_run, decode_uint, encode_run, encode_uint

#: Default capacity of the decoded-token LRU.
DEFAULT_HOT_TOKENS = 256

Entry = Tuple[int, int, int, int]  # (table_idx, rowid, col_id, freq)


def encode_token_entries(
    per_table: Sequence[Tuple[int, Sequence[Tuple[int, int, int]]]]
) -> bytes:
    """Encode ``[(table_idx, [(rowid, col_id, freq), ...]), ...]``.

    Table blocks must be in ascending ``table_idx`` order and each
    block's rowids non-decreasing (equal rowids = several columns of
    one row); rowids are delta-coded within the block.
    """
    out = bytearray()
    encode_uint(len(per_table), out)
    for table_idx, entries in per_table:
        encode_uint(table_idx, out)
        encode_uint(len(entries), out)
        prev = 0
        for rowid, col_id, freq in entries:
            encode_uint(rowid - prev, out)
            encode_uint(col_id, out)
            encode_uint(freq, out)
            prev = rowid
    return bytes(out)


def decode_token_entries(buf, pos: int = 0) -> Tuple[List[Entry], int]:
    """Inverse of :func:`encode_token_entries`; flat entry list."""
    entries: List[Entry] = []
    n_blocks, pos = decode_uint(buf, pos)
    for _ in range(n_blocks):
        table_idx, pos = decode_uint(buf, pos)
        n_entries, pos = decode_uint(buf, pos)
        prev = 0
        for _ in range(n_entries):
            delta, pos = decode_uint(buf, pos)
            col_id, pos = decode_uint(buf, pos)
            freq, pos = decode_uint(buf, pos)
            prev += delta
            entries.append((table_idx, prev, col_id, freq))
    return entries, pos


def distinct_count(entries: Sequence[Entry]) -> int:
    """Distinct (table, rowid) pairs in an entry list (df for a token)."""
    seen = 0
    last: Optional[Tuple[int, int]] = None
    for table_idx, rowid, _col, _freq in entries:
        key = (table_idx, rowid)
        if key != last:
            seen += 1
            last = key
    return seen


class ColumnarBackend(StorageBackend):
    """Interned-id, delta+varint coded in-memory substrate."""

    name = "columnar"

    def __init__(self, hot_tokens: int = DEFAULT_HOT_TOKENS) -> None:
        super().__init__()
        # Vocab / column / table interning.
        self._token_ids: Dict[str, int] = {}
        self._tokens: List[str] = []
        self._col_ids: Dict[str, int] = {}
        self._cols: List[str] = []
        self._table_ids: Dict[str, int] = {}
        self._table_names: List[str] = []
        # Token id -> encoded posting blob / df.
        self._blobs: List[bytes] = []
        self._df = array("I")
        # Forward index: per table, packed token-id runs + row offsets.
        # _fwd_base is the rowid of the first run in the buffer — 0 for
        # a full build, the watermark when this backend is a disk-delta
        # overlay that only ever sees a table's suffix.
        self._fwd_buf: List[bytearray] = []
        self._fwd_off: List[array] = []
        self._fwd_base: List[Optional[int]] = []
        self._hot = TokenViewCache(hot_tokens)
        # Scan staging (token id -> new entries in scan order).
        self._stage: Dict[int, List[Entry]] = {}

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def _token_id(self, token: str) -> int:
        tid = self._token_ids.get(token)
        if tid is None:
            tid = len(self._tokens)
            self._token_ids[token] = tid
            self._tokens.append(token)
        return tid

    def _col_id(self, column: str) -> int:
        cid = self._col_ids.get(column)
        if cid is None:
            cid = len(self._cols)
            self._col_ids[column] = cid
            self._cols.append(column)
        return cid

    def _table_id(self, table: str) -> int:
        tix = self._table_ids.get(table)
        if tix is None:
            tix = len(self._table_names)
            self._table_ids[table] = tix
            self._table_names.append(table)
            self._fwd_buf.append(bytearray())
            self._fwd_off.append(array("Q", [0]))
            self._fwd_base.append(None)
        return tix

    # ------------------------------------------------------------------
    # Scan hooks
    # ------------------------------------------------------------------
    def _begin(self, db: Database, initial: bool) -> None:
        self._stage = {}
        # Register text tables in database order so canonical block
        # order matches a fresh sequential scan.
        for table in db.tables.values():
            if table.schema.text_columns:
                self._table_id(table.name)

    def _add_row(self, tid: TupleId, row, text_cols: Sequence[str]) -> None:
        table_idx = self._table_ids[tid.table]
        rowid = tid.rowid
        stage = self._stage
        row_tokens: Set[int] = set()
        for column, counts in self._column_token_counts(row, text_cols):
            col_id = self._col_id(column)
            for token, freq in counts.items():
                token_id = self._token_id(token)
                stage.setdefault(token_id, []).append(
                    (table_idx, rowid, col_id, freq)
                )
                row_tokens.add(token_id)
        # Forward run — rows arrive in rowid order with no gaps, so the
        # run at position (rowid - base) is this row's.
        if self._fwd_base[table_idx] is None:
            self._fwd_base[table_idx] = rowid
        buf = self._fwd_buf[table_idx]
        buf += encode_run(sorted(row_tokens))
        self._fwd_off[table_idx].append(len(buf))

    def _commit(self, db: Database, initial: bool, staged: int) -> None:
        if not initial and not staged:
            return
        blobs = self._blobs
        df = self._df
        # New token ids were assigned past the old blob count.
        while len(blobs) < len(self._tokens):
            blobs.append(b"")
            df.append(0)
        for token_id, new_entries in self._stage.items():
            old_blob = blobs[token_id]
            if old_blob:
                entries, _ = decode_token_entries(old_blob)
                entries.extend(new_entries)
                # Append-only rowids keep per-table runs sorted, but a
                # refresh may interleave tables: re-group by table.
                entries.sort(key=lambda e: (e[0], e[1], e[2]))
            else:
                entries = new_entries
            blobs[token_id] = self._encode_entries(entries)
            df[token_id] = distinct_count(entries)
        self._stage = {}
        self._hot.clear()

    @staticmethod
    def _encode_entries(entries: Sequence[Entry]) -> bytes:
        per_table: List[Tuple[int, List[Tuple[int, int, int]]]] = []
        for table_idx, rowid, col_id, freq in entries:
            if not per_table or per_table[-1][0] != table_idx:
                per_table.append((table_idx, []))
            per_table[-1][1].append((rowid, col_id, freq))
        return encode_token_entries(per_table)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _view(self, token: str) -> Optional[TokenView]:
        view = self._hot.get(token)
        if view is not None:
            return view
        token_id = self._token_ids.get(token)
        if token_id is None:
            return None
        entries, _ = decode_token_entries(self._blobs[token_id])
        view = self._entries_to_view(entries)
        self._hot.put(token, view)
        return view

    def _entries_to_view(self, entries: Sequence[Entry]) -> TokenView:
        names = self._table_names
        matching: List[TupleId] = []
        tf: Dict[TupleId, int] = {}
        last: Optional[Tuple[int, int]] = None
        tid: Optional[TupleId] = None
        for table_idx, rowid, _col, freq in entries:
            key = (table_idx, rowid)
            if key != last:
                tid = TupleId(names[table_idx], rowid)
                matching.append(tid)
                tf[tid] = freq
                last = key
            else:
                tf[tid] = tf[tid] + freq
        return TokenView(tuple(matching), tf)

    def _row_token_ids(self, tid: TupleId) -> Optional[List[int]]:
        table_idx = self._table_ids.get(tid.table)
        if table_idx is None:
            return None
        base = self._fwd_base[table_idx]
        if base is None:
            return None
        offsets = self._fwd_off[table_idx]
        pos = tid.rowid - base
        if pos < 0 or pos >= len(offsets) - 1:
            return None
        run, _ = decode_run(self._fwd_buf[table_idx], offsets[pos])
        return run

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def matching_view(self, token: str) -> Tuple[TupleId, ...]:
        view = self._view(token)
        return view.matching if view is not None else EMPTY_TUPLES

    def postings(self, token: str) -> Tuple[Posting, ...]:
        token_id = self._token_ids.get(token)
        if token_id is None:
            return ()
        entries, _ = decode_token_entries(self._blobs[token_id])
        names = self._table_names
        cols = self._cols
        return tuple(
            Posting(TupleId(names[table_idx], rowid), cols[col_id], freq)
            for table_idx, rowid, col_id, freq in entries
        )

    def term_frequency(self, tid: TupleId, token: str) -> int:
        view = self._view(token)
        if view is None:
            return 0
        return view.tf.get(tid, 0)

    def document_frequency(self, token: str) -> int:
        token_id = self._token_ids.get(token)
        return self._df[token_id] if token_id is not None else 0

    def tokens_of(self, tid: TupleId) -> Set[str]:
        run = self._row_token_ids(tid)
        if not run:
            return set()
        tokens = self._tokens
        return {tokens[token_id] for token_id in run}

    def contains_token(self, tid: TupleId, token: str) -> bool:
        token_id = self._token_ids.get(token)
        if token_id is None:
            return False
        run = self._row_token_ids(tid)
        return bool(run) and token_id in run

    def has_token(self, token: str) -> bool:
        return token in self._token_ids

    def vocabulary(self) -> List[str]:
        return sorted(self._token_ids)

    def token_count(self) -> int:
        return len(self._token_ids)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _resident_key(self) -> tuple:
        return (len(self._hot), self._hot.evictions)

    def _extra_stats(self) -> Dict[str, object]:
        postings_bytes = sum(len(b) for b in self._blobs)
        forward_bytes = sum(len(b) for b in self._fwd_buf)
        return {
            "postings_bytes": postings_bytes,
            "forward_bytes": forward_bytes,
            "hot_cache": self._hot.stats(),
        }

    # ------------------------------------------------------------------
    # Export for the disk backend's segment writer
    # ------------------------------------------------------------------
    def export_arrays(self):
        """Internal arrays for :mod:`repro.storage.diskstore` staging."""
        return {
            "tokens": self._tokens,
            "cols": self._cols,
            "tables": self._table_names,
            "blobs": self._blobs,
            "df": self._df,
            "fwd_buf": self._fwd_buf,
            "fwd_off": self._fwd_off,
            "row_counts": dict(self._row_counts),
            "doc_count": self.doc_count,
        }
