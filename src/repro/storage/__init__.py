"""Pluggable storage/index backends for the inverted keyword index.

Three implementations of one :class:`~repro.storage.base.StorageBackend`
protocol:

``dict``
    the original dict-of-objects layout — fastest per lookup, largest
    footprint, the parity baseline;
``columnar``
    interned token ids, delta+varint posting blobs, packed forward
    runs — several times smaller, same results;
``disk``
    an immutable mmap segment with zlib pages, an LRU page cache and an
    in-memory columnar delta for ``refresh()`` — beyond-RAM datasets.

Select one with ``KeywordSearchEngine(db, backend="columnar")`` or the
CLI/server ``--backend`` flag; :func:`create_backend` is the registry.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.storage.base import Posting, StorageBackend, TokenView, TokenViewCache
from repro.storage.columnar import ColumnarBackend
from repro.storage.dictstore import DictBackend
from repro.storage.diskstore import DiskBackend, PageCache, SegmentFormatError

BACKENDS: Dict[str, Callable[..., StorageBackend]] = {
    "dict": DictBackend,
    "columnar": ColumnarBackend,
    "disk": DiskBackend,
}

BACKEND_NAMES = tuple(sorted(BACKENDS))


def create_backend(
    name: str, options: Optional[Dict[str, object]] = None
) -> StorageBackend:
    """Instantiate a registered backend by name.

    *options* are backend-specific constructor kwargs (e.g. ``path``,
    ``cache_pages`` for ``disk``; ``hot_tokens`` for ``columnar``) and
    are rejected here with a ``ValueError`` when unknown so engine
    construction fails fast on typos.
    """
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown storage backend {name!r}; expected one of {BACKEND_NAMES}"
        ) from None
    try:
        return factory(**(options or {}))
    except TypeError as exc:
        raise ValueError(f"bad options for backend {name!r}: {exc}") from None


__all__ = [
    "BACKENDS",
    "BACKEND_NAMES",
    "ColumnarBackend",
    "DictBackend",
    "DiskBackend",
    "PageCache",
    "Posting",
    "SegmentFormatError",
    "StorageBackend",
    "TokenView",
    "TokenViewCache",
    "create_backend",
]
