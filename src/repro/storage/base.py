"""Storage backend protocol for the inverted keyword index.

The engine consumes one lookup surface — postings, distinct matching
tuples, DF/IDF/TF, per-tuple token membership — regardless of how the
index is laid out in memory or on disk.  :class:`StorageBackend` pins
that surface down and owns the pieces every implementation shares:

* the **append-only scan**: tables only grow, so both the initial build
  and PR 4's incremental ``refresh()`` are one walk over each text
  table's suffix past a per-table row-count watermark, feeding rows to
  the backend's ``_add_row`` hook and committing staged state at the
  end;
* the **IDF memo**: smoothed IDF is a pure function of (N, df) —
  ``ln((N+1)/(df+1)) + 1`` — computed lazily and invalidated whenever
  the document count moves, so every backend produces bit-identical
  floats without materialising a per-token table;
* **residency accounting** for the ``storage.resident_bytes`` gauge.

Canonical posting order is (table insertion order, ascending rowid) —
exactly the order a fresh scan produces.  The dict backend preserves
its historical append-on-refresh order; compact backends re-sort on
merge.  No consumer observes the difference (tuple-set construction
sorts, ``index_only`` ranks by ``(-score, tid)``, scoring reads
per-tuple maps) and the cross-backend parity suite holds all seven
search methods to byte-identical results.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.index.text import tokenize
from repro.obs.memory import deep_sizeof
from repro.relational.database import Database, TupleId

EMPTY_POSTINGS: Tuple["Posting", ...] = ()
EMPTY_TUPLES: Tuple[TupleId, ...] = ()
EMPTY_TF: Dict[TupleId, int] = {}


@dataclass(frozen=True)
class Posting:
    """One occurrence record: tuple, column it occurred in, and frequency."""

    tid: TupleId
    column: str
    frequency: int


class TokenView:
    """Decoded per-token lookup state cached by compact backends.

    Holds exactly what the hot loops read — the distinct matching-tuple
    tuple and the tid→tf map — so one decode amortises across the many
    probes a query makes for the same token.
    """

    __slots__ = ("matching", "tf")

    def __init__(self, matching: Tuple[TupleId, ...], tf: Dict[TupleId, int]):
        self.matching = matching
        self.tf = tf


class TokenViewCache:
    """Bounded LRU of :class:`TokenView` keyed by token string.

    Query vocabularies are tiny and heavily repeated relative to the
    corpus vocabulary, so a small cache keeps the compact backends'
    decode cost off the steady-state path while bounding how much
    decoded (pointer-rich) state they re-materialise.
    """

    __slots__ = ("capacity", "_entries", "hits", "misses", "evictions")

    def __init__(self, capacity: int):
        self.capacity = max(1, int(capacity))
        self._entries: "OrderedDict[str, TokenView]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, token: str) -> Optional[TokenView]:
        entry = self._entries.get(token)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(token)
        self.hits += 1
        return entry

    def put(self, token: str, view: TokenView) -> None:
        self._entries[token] = view
        self._entries.move_to_end(token)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class StorageBackend(ABC):
    """Abstract index substrate behind :class:`~repro.index.inverted.InvertedIndex`."""

    #: Registry key; subclasses override ("dict", "columnar", "disk").
    name = "abstract"

    def __init__(self) -> None:
        # Rows indexed so far per text table; tables are append-only, so
        # everything past this watermark is the delta refresh() patches.
        self._row_counts: Dict[str, int] = {}
        self.doc_count = 0
        self.refreshes = 0
        self.rows_patched = 0
        self._idf_memo: Dict[str, float] = {}
        self._resident_memo: Optional[Tuple[tuple, int]] = None

    # ------------------------------------------------------------------
    # Lifecycle: shared append-only scan
    # ------------------------------------------------------------------
    def build(self, db: Database) -> None:
        """Index every row of every text table (initial full scan)."""
        self._scan(db, initial=True)

    def refresh(self, db: Database) -> int:
        """Delta-index rows inserted since the last build/refresh.

        The delta is exactly the suffix of each text table past the
        stored watermark; returns the number of rows indexed.
        """
        new_rows = self._scan(db, initial=False)
        if new_rows:
            self.rows_patched += new_rows
        self.refreshes += 1
        return new_rows

    def _scan(self, db: Database, initial: bool) -> int:
        self._begin(db, initial)
        staged = 0
        for table in db.tables.values():
            text_cols = table.schema.text_columns
            if not text_cols:
                continue
            start = 0 if initial else self._row_counts.get(table.name, 0)
            total = len(table)
            for rowid in range(start, total):
                self._add_row(
                    TupleId(table.name, rowid), table.row(rowid), text_cols
                )
                self.doc_count += 1
                staged += 1
            self._row_counts[table.name] = total
        if initial or staged:
            # N moved: every memoised IDF is stale.
            self._idf_memo.clear()
        self._commit(db, initial, staged)
        return staged

    @staticmethod
    def _column_token_counts(
        row, text_cols: Sequence[str]
    ) -> Iterator[Tuple[str, Dict[str, int]]]:
        """Yield (column, token→count) for each non-empty text column."""
        for column in text_cols:
            value = row[column]
            if value is None:
                continue
            counts: Dict[str, int] = {}
            for token in tokenize(str(value)):
                counts[token] = counts.get(token, 0) + 1
            if counts:
                yield column, counts

    # Backend hooks --------------------------------------------------------
    @abstractmethod
    def _begin(self, db: Database, initial: bool) -> None:
        """Prepare staging state before a scan (full or delta)."""

    @abstractmethod
    def _add_row(self, tid: TupleId, row, text_cols: Sequence[str]) -> None:
        """Stage one row's tokens."""

    @abstractmethod
    def _commit(self, db: Database, initial: bool, staged: int) -> None:
        """Fold staged state into the queryable substrate."""

    # ------------------------------------------------------------------
    # Lookup surface (tokens arrive already lowercased by the facade)
    # ------------------------------------------------------------------
    @abstractmethod
    def matching_view(self, token: str) -> Tuple[TupleId, ...]:
        """Distinct tuples containing *token* (immutable, zero-copy-ish)."""

    @abstractmethod
    def postings(self, token: str) -> Tuple[Posting, ...]:
        """Per-(tuple, column) occurrence records for *token*."""

    @abstractmethod
    def term_frequency(self, tid: TupleId, token: str) -> int:
        """Total occurrences of *token* across *tid*'s text columns."""

    @abstractmethod
    def document_frequency(self, token: str) -> int:
        """Number of distinct tuples containing *token*."""

    @abstractmethod
    def tokens_of(self, tid: TupleId) -> Set[str]:
        """Fresh set of every token *tid* contains."""

    @abstractmethod
    def contains_token(self, tid: TupleId, token: str) -> bool:
        """Membership probe without materialising :meth:`tokens_of`."""

    @abstractmethod
    def has_token(self, token: str) -> bool:
        """True if any tuple contains *token*."""

    @abstractmethod
    def vocabulary(self) -> List[str]:
        """Sorted list of all indexed tokens."""

    @abstractmethod
    def token_count(self) -> int:
        """Vocabulary size (cheaper than ``len(vocabulary())``)."""

    def idf(self, token: str) -> float:
        """Smoothed inverse document frequency (ln((N+1)/(df+1)) + 1).

        Unknown tokens fall out of the same formula with df=0, matching
        the historical dict-backend smoothing exactly.
        """
        cached = self._idf_memo.get(token)
        if cached is None:
            cached = (
                math.log(
                    (self.doc_count + 1) / (self.document_frequency(token) + 1)
                )
                + 1.0
            )
            self._idf_memo[token] = cached
        return cached

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _resident_key(self) -> tuple:
        """Extra memo-key components for backends with mutable caches."""
        return ()

    def resident_bytes(self, refresh: bool = False) -> int:
        """Deep resident footprint of this backend's unique state.

        Memoised on (doc_count, refreshes, backend-specific key) so the
        metrics gauge can poll it cheaply between mutations.
        """
        key = (self.doc_count, self.refreshes) + self._resident_key()
        memo = self._resident_memo
        if refresh or memo is None or memo[0] != key:
            memo = (key, deep_sizeof(self))
            self._resident_memo = memo
        return memo[1]

    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "backend": self.name,
            "documents": self.doc_count,
            "tokens": self.token_count(),
            "refreshes": self.refreshes,
            "rows_patched": self.rows_patched,
            "resident_bytes": self.resident_bytes(),
        }
        out.update(self._extra_stats())
        return out

    def _extra_stats(self) -> Dict[str, object]:
        return {}

    def close(self) -> None:
        """Release external resources (files, mmaps); default no-op."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.token_count()} terms, "
            f"{self.doc_count} documents)"
        )
