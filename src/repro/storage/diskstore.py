"""Disk-backed inverted index: mmap segment files + LRU page cache.

The segment file is written once from a staged
:class:`~repro.storage.columnar.ColumnarBackend` and read forever via
``mmap``:

```
magic | page 0 .. page N (zlib)       <- postings blobs + forward runs
      | footer (zlib JSON)            <- vocab, df, directories, stamp
      | footer_off u64 | footer_len u64 | magic
```

Variable-length items (one token's posting blob, one row's forward
run) are packed into fixed-size raw pages by :class:`_PageWriter`; an
item never spans pages (oversized items get a page of their own), so
the directory addresses any item as ``(page, offset, length)``.  Pages
decompress lazily into a bounded LRU (:class:`PageCache`) — a cold
open reads only the footer and touches zero pages, and steady-state
RSS is capped by the cache regardless of corpus size (EMBANKS'
disk-based argument, PAPERS.md).

The segment is immutable; PR 4's incremental ``refresh()`` lands new
rows in an in-memory delta :class:`ColumnarBackend` whose watermarks
start at the segment's row counts.  Base and delta row sets are
disjoint, so df adds, tf sums, and matching lists merge by canonical
(table, rowid) order.  A cold open against a database that has grown
past the segment's stamp simply replays the suffix through the delta —
which is exactly the PR 8 ``/admin/swap`` rebuild-from-live-db path.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import zlib
from array import array
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.relational.database import Database, TupleId
from repro.storage.base import (
    EMPTY_TUPLES,
    Posting,
    StorageBackend,
    TokenView,
    TokenViewCache,
)
from repro.storage.columnar import ColumnarBackend, decode_token_entries
from repro.storage.varint import decode_run

MAGIC = b"RKWSEG01"
SEGMENT_FORMAT = 1
DEFAULT_PAGE_SIZE = 4096
DEFAULT_CACHE_PAGES = 64
_TRAILER = struct.Struct("<QQ8s")


class SegmentFormatError(RuntimeError):
    """Raised when a segment file is missing, truncated, or mismatched."""


class _PageWriter:
    """Packs variable-length items into fixed-size raw pages."""

    def __init__(self, page_size: int):
        self.page_size = max(256, int(page_size))
        self.pages: List[bytearray] = [bytearray()]

    def add(self, item: bytes) -> Tuple[int, int, int]:
        """Append *item*; returns its (page_idx, offset, length)."""
        current = self.pages[-1]
        if current and len(current) + len(item) > self.page_size:
            current = bytearray()
            self.pages.append(current)
        offset = len(current)
        current += item
        return len(self.pages) - 1, offset, len(item)


class PageCache:
    """Bounded LRU of decompressed pages with lazy page-in accounting."""

    __slots__ = ("capacity", "_pages", "hits", "misses", "evictions", "_ever")

    def __init__(self, capacity: int):
        self.capacity = max(1, int(capacity))
        self._pages: "OrderedDict[int, bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._ever: Set[int] = set()

    def lookup(self, page_idx: int) -> Optional[bytes]:
        page = self._pages.get(page_idx)
        if page is None:
            self.misses += 1
            return None
        self._pages.move_to_end(page_idx)
        self.hits += 1
        return page

    def store(self, page_idx: int, raw: bytes) -> None:
        self._ever.add(page_idx)
        self._pages[page_idx] = raw
        self._pages.move_to_end(page_idx)
        while len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def pages_ever_loaded(self) -> int:
        return len(self._ever)

    def stats(self) -> Dict[str, int]:
        return {
            "resident_pages": len(self._pages),
            "capacity_pages": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "pages_ever_loaded": len(self._ever),
        }


def _db_stamp(db: Database) -> Dict[str, object]:
    """Schema+rowcount fingerprint a segment was built against."""
    return {
        "format": SEGMENT_FORMAT,
        "text_schema": {
            t.name: list(t.schema.text_columns)
            for t in db.tables.values()
            if t.schema.text_columns
        },
        "row_counts": {
            t.name: len(t)
            for t in db.tables.values()
            if t.schema.text_columns
        },
    }


def write_segment(
    path: str,
    arrays: Dict[str, object],
    stamp: Dict[str, object],
    page_size: int = DEFAULT_PAGE_SIZE,
) -> None:
    """Serialise a staged columnar index (``export_arrays``) to *path*.

    Atomic: written to ``path + '.tmp'``, fsynced, then renamed.
    """
    writer = _PageWriter(page_size)
    token_dir = [writer.add(blob) for blob in arrays["blobs"]]
    fwd_dirs: List[List[Tuple[int, int, int]]] = []
    for buf, offsets in zip(arrays["fwd_buf"], arrays["fwd_off"]):
        view = memoryview(bytes(buf))
        rows = []
        for rowid in range(len(offsets) - 1):
            rows.append(writer.add(bytes(view[offsets[rowid]:offsets[rowid + 1]])))
        fwd_dirs.append(rows)

    page_table: List[Tuple[int, int, int]] = []  # (file_off, comp_len, raw_len)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(MAGIC)
        offset = len(MAGIC)
        for raw in writer.pages:
            comp = zlib.compress(bytes(raw), 6)
            fh.write(comp)
            page_table.append((offset, len(comp), len(raw)))
            offset += len(comp)
        footer = {
            "format": SEGMENT_FORMAT,
            "stamp": stamp,
            "tokens": arrays["tokens"],
            "cols": arrays["cols"],
            "tables": arrays["tables"],
            "df": list(arrays["df"]),
            "token_dir": token_dir,
            "fwd_dirs": fwd_dirs,
            "page_table": page_table,
            "page_size": page_size,
            "doc_count": arrays["doc_count"],
            "row_counts": arrays["row_counts"],
        }
        footer_bytes = zlib.compress(
            json.dumps(footer, separators=(",", ":")).encode("utf-8"), 6
        )
        footer_off = offset
        fh.write(footer_bytes)
        fh.write(_TRAILER.pack(footer_off, len(footer_bytes), MAGIC))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    # Durability of the rename itself.
    dir_fd = os.open(os.path.dirname(os.path.abspath(path)) or ".", os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def read_footer(path: str) -> Dict[str, object]:
    """Load and validate a segment's footer (no pages touched)."""
    size = os.path.getsize(path)
    if size < len(MAGIC) + _TRAILER.size:
        raise SegmentFormatError(f"segment too small: {path}")
    with open(path, "rb") as fh:
        if fh.read(len(MAGIC)) != MAGIC:
            raise SegmentFormatError(f"bad segment magic: {path}")
        fh.seek(size - _TRAILER.size)
        footer_off, footer_len, trailer_magic = _TRAILER.unpack(
            fh.read(_TRAILER.size)
        )
        if trailer_magic != MAGIC:
            raise SegmentFormatError(f"bad segment trailer: {path}")
        if footer_off + footer_len > size - _TRAILER.size:
            raise SegmentFormatError(f"footer out of bounds: {path}")
        fh.seek(footer_off)
        footer = json.loads(zlib.decompress(fh.read(footer_len)))
    if footer.get("format") != SEGMENT_FORMAT:
        raise SegmentFormatError(
            f"unsupported segment format {footer.get('format')!r}: {path}"
        )
    return footer


class DiskBackend(StorageBackend):
    """mmap segment + page cache + in-memory delta overlay."""

    name = "disk"

    def __init__(
        self,
        path: Optional[str] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        cache_pages: int = DEFAULT_CACHE_PAGES,
        hot_tokens: int = 128,
        reuse: bool = True,
    ) -> None:
        super().__init__()
        self._ephemeral = path is None
        if path is None:
            fd, path = tempfile.mkstemp(prefix="repro-seg-", suffix=".rkws")
            os.close(fd)
            os.unlink(path)  # build() recreates it atomically
        self.path = path
        self.page_size = page_size
        self.reuse = reuse
        self.reused_segment = False
        self._cache = PageCache(cache_pages)
        self._hot = TokenViewCache(hot_tokens)
        # Segment state (populated by _open).
        self._mm = None
        self._file = None
        self._page_table: List[Tuple[int, int, int]] = []
        self._tokens: List[str] = []
        self._token_ids: Dict[str, int] = {}
        self._cols: List[str] = []
        self._tables: List[str] = []
        self._table_rank: Dict[str, int] = {}
        self._df: array = array("I")
        self._token_dir: List[Tuple[int, int, int]] = []
        self._fwd_dirs: List[List[Tuple[int, int, int]]] = []
        self._base_row_counts: Dict[str, int] = {}
        self._base_doc_count = 0
        self._delta = ColumnarBackend(hot_tokens=hot_tokens)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def build(self, db: Database) -> None:
        """Open a matching segment cold, or stage+write one, then map it."""
        footer = None
        if self.reuse and os.path.exists(self.path):
            try:
                footer = read_footer(self.path)
                if not self._stamp_compatible(footer["stamp"], db):
                    footer = None
            except (SegmentFormatError, OSError, ValueError, KeyError):
                footer = None
        if footer is None:
            staging = ColumnarBackend(hot_tokens=1)
            staging.build(db)
            write_segment(
                self.path, staging.export_arrays(), _db_stamp(db), self.page_size
            )
            footer = read_footer(self.path)
        else:
            self.reused_segment = True
        self._open(footer)
        # Rows inserted after the segment was stamped replay as delta —
        # the rebuild-from-live-db path stays incremental.
        grew = any(
            len(t) > self._base_row_counts.get(t.name, 0)
            for t in db.tables.values()
            if t.schema.text_columns
        )
        if grew:
            new_rows = self._delta.refresh(db)
            self.doc_count += new_rows
            self._row_counts = dict(self._delta._row_counts)

    def _stamp_compatible(self, stamp: Dict[str, object], db: Database) -> bool:
        current = _db_stamp(db)
        if stamp.get("text_schema") != current["text_schema"]:
            return False
        old_counts = stamp.get("row_counts", {})
        # The database may only have grown (append-only model).
        for name, count in current["row_counts"].items():
            if old_counts.get(name, 0) > count:
                return False
        return set(old_counts) <= set(current["row_counts"])

    def _open(self, footer: Dict[str, object]) -> None:
        import mmap

        self._unmap()
        self._file = open(self.path, "rb")
        self._mm = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        self._page_table = [tuple(p) for p in footer["page_table"]]
        self._tokens = list(footer["tokens"])
        self._token_ids = {t: i for i, t in enumerate(self._tokens)}
        self._cols = list(footer["cols"])
        self._tables = list(footer["tables"])
        self._table_rank = {t: i for i, t in enumerate(self._tables)}
        self._df = array("I", footer["df"])
        self._token_dir = [tuple(d) for d in footer["token_dir"]]
        self._fwd_dirs = [[tuple(r) for r in rows] for rows in footer["fwd_dirs"]]
        self._base_row_counts = dict(footer["row_counts"])
        self._base_doc_count = int(footer["doc_count"])
        self.doc_count = self._base_doc_count
        self._row_counts = dict(self._base_row_counts)
        self._idf_memo.clear()
        self._hot.clear()
        # Delta overlay starts empty at the segment's watermarks, with
        # table ids pre-registered in segment order so canonical merge
        # order matches.
        self._delta = ColumnarBackend(hot_tokens=self._hot.capacity)
        for name in self._tables:
            self._delta._table_id(name)
        self._delta._row_counts = dict(self._base_row_counts)

    def refresh(self, db: Database) -> int:
        new_rows = self._delta.refresh(db)
        if new_rows:
            self.doc_count += new_rows
            self.rows_patched += new_rows
            self._row_counts = dict(self._delta._row_counts)
            self._idf_memo.clear()
            self._hot.clear()
        self.refreshes += 1
        return new_rows

    # Base-class scan hooks never run (build/refresh are overridden).
    def _begin(self, db: Database, initial: bool) -> None:  # pragma: no cover
        raise AssertionError("DiskBackend does not use the shared scan")

    def _add_row(self, tid, row, text_cols) -> None:  # pragma: no cover
        raise AssertionError("DiskBackend does not use the shared scan")

    def _commit(self, db, initial, staged) -> None:  # pragma: no cover
        raise AssertionError("DiskBackend does not use the shared scan")

    def _unmap(self) -> None:
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def close(self) -> None:
        self._unmap()
        if self._ephemeral and os.path.exists(self.path):
            try:
                os.unlink(self.path)
            except OSError:  # pragma: no cover
                pass

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Page access
    # ------------------------------------------------------------------
    def _page(self, page_idx: int) -> bytes:
        page = self._cache.lookup(page_idx)
        if page is None:
            file_off, comp_len, _raw_len = self._page_table[page_idx]
            page = zlib.decompress(self._mm[file_off:file_off + comp_len])
            self._cache.store(page_idx, page)
        return page

    def _item(self, loc: Tuple[int, int, int]) -> bytes:
        page_idx, offset, length = loc
        return self._page(page_idx)[offset:offset + length]

    # ------------------------------------------------------------------
    # Merged views
    # ------------------------------------------------------------------
    def _view(self, token: str) -> Optional[TokenView]:
        view = self._hot.get(token)
        if view is not None:
            return view
        token_id = self._token_ids.get(token)
        base_view = None
        if token_id is not None:
            blob = self._item(self._token_dir[token_id])
            if blob:
                entries, _ = decode_token_entries(blob)
                base_view = self._entries_to_view(entries)
        delta_view = (
            self._delta._view(token) if self._delta.has_token(token) else None
        )
        if base_view is None and delta_view is None:
            return None
        if delta_view is None:
            merged = base_view
        elif base_view is None:
            merged = delta_view
        else:
            rank = self._table_rank
            matching = sorted(
                base_view.matching + delta_view.matching,
                key=lambda t: (rank.get(t.table, len(rank)), t.rowid),
            )
            tf = dict(base_view.tf)
            tf.update(delta_view.tf)  # disjoint row sets
            merged = TokenView(tuple(matching), tf)
        self._hot.put(token, merged)
        return merged

    def _entries_to_view(self, entries) -> TokenView:
        names = self._tables
        matching: List[TupleId] = []
        tf: Dict[TupleId, int] = {}
        last = None
        tid: Optional[TupleId] = None
        for table_idx, rowid, _col, freq in entries:
            key = (table_idx, rowid)
            if key != last:
                tid = TupleId(names[table_idx], rowid)
                matching.append(tid)
                tf[tid] = freq
                last = key
            else:
                tf[tid] = tf[tid] + freq
        return TokenView(tuple(matching), tf)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def matching_view(self, token: str) -> Tuple[TupleId, ...]:
        view = self._view(token)
        return view.matching if view is not None else EMPTY_TUPLES

    def postings(self, token: str) -> Tuple[Posting, ...]:
        out: List[Posting] = []
        token_id = self._token_ids.get(token)
        if token_id is not None:
            blob = self._item(self._token_dir[token_id])
            if blob:
                entries, _ = decode_token_entries(blob)
                names = self._tables
                cols = self._cols
                out.extend(
                    Posting(TupleId(names[ti], rowid), cols[ci], freq)
                    for ti, rowid, ci, freq in entries
                )
        out.extend(self._delta.postings(token))
        return tuple(out)

    def term_frequency(self, tid: TupleId, token: str) -> int:
        view = self._view(token)
        if view is None:
            return 0
        return view.tf.get(tid, 0)

    def document_frequency(self, token: str) -> int:
        token_id = self._token_ids.get(token)
        base = self._df[token_id] if token_id is not None else 0
        return base + self._delta.document_frequency(token)

    def _in_delta(self, tid: TupleId) -> bool:
        return tid.rowid >= self._base_row_counts.get(tid.table, 0)

    def tokens_of(self, tid: TupleId) -> Set[str]:
        if self._in_delta(tid):
            return self._delta.tokens_of(tid)
        rank = self._table_rank.get(tid.table)
        if rank is None:
            return set()
        rows = self._fwd_dirs[rank]
        if tid.rowid < 0 or tid.rowid >= len(rows):
            return set()
        run, _ = decode_run(self._item(rows[tid.rowid]))
        tokens = self._tokens
        return {tokens[token_id] for token_id in run}

    def contains_token(self, tid: TupleId, token: str) -> bool:
        if self._in_delta(tid):
            return self._delta.contains_token(tid, token)
        token_id = self._token_ids.get(token)
        if token_id is None:
            return False
        rank = self._table_rank.get(tid.table)
        if rank is None:
            return False
        rows = self._fwd_dirs[rank]
        if tid.rowid < 0 or tid.rowid >= len(rows):
            return False
        run, _ = decode_run(self._item(rows[tid.rowid]))
        return token_id in run

    def has_token(self, token: str) -> bool:
        return token in self._token_ids or self._delta.has_token(token)

    def vocabulary(self) -> List[str]:
        if self._delta.token_count():
            return sorted(set(self._tokens) | set(self._delta._token_ids))
        return sorted(self._tokens)

    def token_count(self) -> int:
        if self._delta.token_count():
            return len(set(self._tokens) | set(self._delta._token_ids))
        return len(self._tokens)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _resident_key(self) -> tuple:
        return (
            self._delta.doc_count,
            len(self._hot),
            self._cache.misses,
            self._cache.evictions,
        )

    def _extra_stats(self) -> Dict[str, object]:
        try:
            segment_bytes = os.path.getsize(self.path)
        except OSError:
            segment_bytes = 0
        return {
            "segment_path": self.path,
            "segment_bytes": segment_bytes,
            "segment_pages": len(self._page_table),
            "reused_segment": self.reused_segment,
            "page_cache": self._cache.stats(),
            "hot_cache": self._hot.stats(),
            "delta_documents": self._delta.doc_count,
        }
