"""Command-line interface: ``python -m repro <command> ...``.

Lets a user try every search family against the bundled synthetic
datasets without writing code:

    python -m repro search "john database" --method schema -k 5
    python -m repro search "widom xml" --dataset tiny --method steiner
    python -m repro search "john database" --trace
    python -m repro batch "john database" "widom xml" --workers 8 --stats
    python -m repro batch --file queries.txt --method banks
    python -m repro xml "keyword mark" --semantics elca --snippets
    python -m repro suggest "dat"
    python -m repro metrics "john database" "widom xml" --method banks
    python -m repro facets --dataset events
    python -m repro datasets
    python -m repro snapshot --dataset tiny --dir /tmp/durable
    python -m repro recover --dir /tmp/durable --query "john xml"
    python -m repro fsck --dir /tmp/durable
    python -m repro search "john database" --json
    python -m repro serve --dataset biblio --port 8080

``serve``, ``batch`` and ``recover`` drain cleanly on SIGTERM or
Ctrl-C and exit 130 (the conventional interrupted-by-signal code).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.engine import KeywordSearchEngine
from repro.core.xml_engine import XmlSearchEngine
from repro.obs.trace import format_trace
from repro.resilience.degradation import KNOWN_METHODS
from repro.resilience.errors import QueryParseError

DATASETS: Dict[str, Callable] = {}
XML_CORPORA: Dict[str, Callable] = {}


def _register_datasets() -> None:
    from repro.datasets.bibliographic import (
        generate_bibliographic_db,
        tiny_bibliographic_db,
    )
    from repro.datasets.events import generate_events_db, tutorial_events_db
    from repro.datasets.movies import generate_movie_db
    from repro.datasets.products import generate_product_db
    from repro.datasets.xml_corpora import (
        generate_auctions_xml,
        generate_bib_xml,
        slide_auction_tree,
        slide_conf_tree,
    )

    DATASETS.update(
        {
            "biblio": lambda: generate_bibliographic_db(seed=7),
            "tiny": tiny_bibliographic_db,
            "movies": lambda: generate_movie_db(seed=11),
            "products": lambda: generate_product_db(seed=13),
            "events": lambda: generate_events_db(seed=17),
            "events-slide": tutorial_events_db,
        }
    )
    XML_CORPORA.update(
        {
            "bib": lambda: generate_bib_xml(seed=31),
            "auctions": lambda: generate_auctions_xml(seed=37),
            "conf-slide": slide_conf_tree,
            "auctions-slide": slide_auction_tree,
        }
    )


def _cmd_datasets(args: argparse.Namespace) -> int:
    print("relational datasets:", ", ".join(sorted(DATASETS)))
    print("xml corpora:       ", ", ".join(sorted(XML_CORPORA)))
    return 0


def _backend_options(args: argparse.Namespace):
    backend = getattr(args, "backend", "dict")
    options = {}
    storage_dir = getattr(args, "storage_dir", None)
    if backend == "disk" and storage_dir:
        os.makedirs(storage_dir, exist_ok=True)
        options["path"] = os.path.join(storage_dir, "index.rkws")
    cache_pages = getattr(args, "page_cache", None)
    if backend == "disk" and cache_pages:
        options["cache_pages"] = cache_pages
    return backend, (options or None)


def _make_engine(args: argparse.Namespace, db):
    """Single or sharded engine per ``--shards``."""
    backend, options = _backend_options(args)
    shards = getattr(args, "shards", 1)
    if shards > 1:
        from repro.sharding import ShardedSearchEngine

        return ShardedSearchEngine(
            db,
            n_shards=shards,
            partitioner=args.partitioner,
            backend=backend,
            backend_options=options,
        )
    return KeywordSearchEngine(db, backend=backend, backend_options=options)


def _add_shard_flags(p) -> None:
    p.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the dataset across N shards (scatter-gather)",
    )
    p.add_argument(
        "--partitioner",
        default="affinity",
        choices=["hash", "affinity"],
        help="shard assignment strategy (with --shards > 1)",
    )
    _add_backend_flags(p)


def _add_backend_flags(p) -> None:
    p.add_argument(
        "--backend",
        default="dict",
        choices=["dict", "columnar", "disk"],
        help="inverted-index storage backend (see repro.storage)",
    )
    p.add_argument(
        "--storage-dir",
        default=None,
        help=(
            "with --backend disk: directory for the persistent index "
            "segment (reused on restart when the data still matches); "
            "omitted = ephemeral temp segment"
        ),
    )
    p.add_argument(
        "--page-cache",
        type=int,
        default=None,
        help="with --backend disk: LRU page-cache capacity in pages",
    )


def _cmd_search(args: argparse.Namespace) -> int:
    factory = DATASETS.get(args.dataset)
    if factory is None:
        print(f"unknown dataset {args.dataset!r}", file=sys.stderr)
        return 2
    engine = _make_engine(args, factory())
    from repro.query.pipeline import core_engine, execute_pipeline

    try:
        query = core_engine(engine)._parse_canonical(args.query)
    except QueryParseError as exc:
        print(f"bad request: {exc}", file=sys.stderr)
        return 2
    if not args.json:
        # Human-readable echo only: --json must emit nothing but JSON.
        if query.cleaned_from is not None:
            print(f"(query cleaned to: {' '.join(query.bare_keywords())})")
        if not query.is_bare:
            print(f"(parsed as: {query.canonical()})")
    response = None
    try:
        if args.expand or args.facets or args.highlight:
            response = execute_pipeline(
                engine,
                args.query,
                k=args.k,
                method=args.method,
                expand=args.expand,
                facets=args.facets,
                highlight=args.highlight,
                timeout_ms=args.timeout_ms,
                max_expansions=args.max_expansions,
                fallback=args.fallback,
                trace=args.trace or None,
            )
            results = response.results
        else:
            results = engine.search(
                args.query,
                k=args.k,
                method=args.method,
                timeout_ms=args.timeout_ms,
                max_expansions=args.max_expansions,
                fallback=args.fallback,
                trace=args.trace or None,
            )
    except QueryParseError as exc:
        print(f"bad request: {exc}", file=sys.stderr)
        return 2
    if args.json:
        payload = (
            response.to_dict(include_rows=args.rows)
            if response is not None
            else results.to_dict(include_rows=args.rows)
        )
        print(json.dumps(payload, indent=2))
        return 0
    _print_degraded_banner(results)
    if response is not None:
        for rewrite in response.rewrites:
            detail = ", ".join(
                f"{key}={value}"
                for key, value in rewrite.items()
                if key != "kind"
            )
            print(f"(rewrite {rewrite['kind']}: {detail})")
    if not results:
        print("no results")
    highlights = response.highlights if response is not None else None
    for rank, result in enumerate(results, start=1):
        print(f"{rank:2d}. [{result.score:.3f}] {result.network}")
        print(f"      {result.describe()}")
        if highlights is not None and rank - 1 < len(highlights):
            snippet = highlights[rank - 1].get("snippet")
            if snippet:
                print(f"      » {snippet}")
    if response is not None and response.facets:
        print("-- facets:")
        for attribute, entries in response.facets.items():
            rendered = ", ".join(
                f"{entry['value']} ({entry['count']})" for entry in entries
            )
            print(f"   {attribute}: {rendered}")
    if args.explain:
        if hasattr(engine, "shard_stats"):
            stats = engine.shard_stats()
            print(
                f"-- shards: {stats['shards']} ({stats['partitioner']}), "
                f"balance {stats['balance']:.2f}, "
                f"{stats['boundary_replicas']} boundary replicas, "
                f"{stats['cut_edges']}/{stats['total_edges']} FK edges cut"
            )
            _print_explain(engine.engine)
        else:
            _print_explain(engine)
    if args.trace and results.trace is not None:
        print("-- trace:")
        print(format_trace(results.trace))
    return 0


def _print_explain(engine: KeywordSearchEngine) -> None:
    """Shared-execution and incremental-maintenance counters."""
    stats = engine.cache_stats()
    sharing = stats["sharing"]
    patches = stats["substrates"]["patches"]
    print(
        f"-- sharing: {sharing['subexpressions_materialized']} subexpressions "
        f"materialized, {sharing['reuse_hits']} reuse hits, "
        f"{sharing['joins_saved']} joins avoided "
        f"({sharing['joins_executed']} executed, "
        f"{sharing['semijoin_pruned']} rows semijoin-pruned)"
    )
    print(
        f"-- incremental: {patches['applied']} index patches applied "
        f"({patches['index_rows']} rows, "
        f"{patches['cn_memos_dropped']} CN memos dropped)"
    )


def _print_degraded_banner(results) -> None:
    """One-line label for partial / fallback answers."""
    if not getattr(results, "degraded", False):
        return
    parts = [f"degraded: {results.degraded_reason or 'budget exhausted'}"]
    if getattr(results, "fallback_from", None):
        parts.append(f"fell back to {results.method}")
    print(f"({'; '.join(parts)})")


def _cmd_batch(args: argparse.Namespace) -> int:
    factory = DATASETS.get(args.dataset)
    if factory is None:
        print(f"unknown dataset {args.dataset!r}", file=sys.stderr)
        return 2
    queries: List[str] = list(args.queries)
    if args.file:
        try:
            with open(args.file, "r", encoding="utf-8") as handle:
                queries.extend(
                    line.strip() for line in handle if line.strip()
                )
        except OSError as exc:
            print(f"cannot read {args.file!r}: {exc}", file=sys.stderr)
            return 2
    if not queries:
        print("no queries given (positional args or --file)", file=sys.stderr)
        return 2
    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    engine = KeywordSearchEngine(factory())
    try:
        outcomes = engine.search_many(
            queries,
            k=args.k,
            method=args.method,
            max_workers=args.workers,
            timeout_ms=args.timeout_ms,
            max_expansions=args.max_expansions,
            fallback=args.fallback,
            detailed=True,
        )
    except QueryParseError as exc:
        print(f"bad request: {exc}", file=sys.stderr)
        return 2
    failures = 0
    for query, outcome in zip(queries, outcomes):
        results = outcome.results
        if outcome.status == "error":
            failures += 1
            err = outcome.error
            print(f"== {query!r} ERROR {type(err).__name__}: {err}")
            continue
        print(f"== {query!r} ({len(results)} results)")
        _print_degraded_banner(results)
        for rank, result in enumerate(results, start=1):
            print(f"{rank:2d}. [{result.score:.3f}] {result.network}")
            print(f"      {result.describe()}")
    if args.stats:
        stats = engine.cache_stats()
        results_stats = stats["results"]
        substrates = stats["substrates"]
        print(
            f"-- result cache: {results_stats['hits']} hits / "
            f"{results_stats['misses']} misses "
            f"(hit rate {results_stats['hit_rate']:.0%}), "
            f"{results_stats['evictions']} evictions"
        )
        print(f"-- substrate builds: {substrates['builds']}")
    return 1 if failures else 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run queries against one engine, then dump its metrics snapshot."""
    factory = DATASETS.get(args.dataset)
    if factory is None:
        print(f"unknown dataset {args.dataset!r}", file=sys.stderr)
        return 2
    engine = _make_engine(args, factory())
    for query in args.queries:
        try:
            engine.search(query, k=args.k, method=args.method)
        except QueryParseError as exc:
            print(f"bad request {query!r}: {exc}", file=sys.stderr)
            return 2
        if args.repeat > 1:
            for _ in range(args.repeat - 1):
                engine.search(query, k=args.k, method=args.method)
    payload = engine.metrics.snapshot()
    violations = None
    if args.check_fk:
        violations = engine.db.validate()
        payload["fk_violations"] = violations
    print(json.dumps(payload, indent=2, sort_keys=True))
    if violations:
        print(
            f"{len(violations)} referential-integrity violation(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    """Bootstrap (or reopen) a durability directory and checkpoint it."""
    from repro.durability import DurableEngine

    factory = DATASETS.get(args.dataset)
    if factory is None:
        print(f"unknown dataset {args.dataset!r}", file=sys.stderr)
        return 2
    engine = DurableEngine(
        _make_engine(args, factory()), args.dir, fsync=args.fsync
    )
    info = engine.snapshot()
    wal = engine.wal.stats()
    print(
        f"snapshot committed: lsn={info.lsn}, {info.rows} rows, "
        f"sha256={info.sha256[:12]}…"
    )
    print(
        f"wal: {wal['segments']} segment(s), last lsn {wal['last_lsn']}, "
        f"{wal['bytes']} bytes, fsync={wal['fsync_policy']}"
    )
    engine.close()
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    """Recover an engine from a durability directory."""
    from repro.durability import DurableEngine, RecoveryError

    backend, options = _backend_options(args)
    try:
        engine, result = DurableEngine.recover(
            args.dir,
            shards=args.shards,
            partitioner=args.partitioner,
            trace=True,
            backend=backend,
            backend_options=options,
        )
    except RecoveryError as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 1
    print(f"recovered: {result.summary()} ({result.elapsed_ms:.1f} ms)")
    if args.trace and result.trace is not None:
        print(format_trace(result.trace))
    if args.query:
        results = engine.search(args.query, k=args.k, method=args.method)
        _print_degraded_banner(results)
        if not results:
            print("no results")
        for rank, res in enumerate(results, start=1):
            print(f"{rank:2d}. [{res.score:.3f}] {res.network}")
            print(f"      {res.describe()}")
    engine.close()
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    """Verify derived state; recovers from --dir or builds from --dataset."""
    from repro.durability import DurableEngine, RecoveryError, fsck

    if args.dir:
        try:
            engine, result = DurableEngine.recover(
                args.dir, shards=args.shards, partitioner=args.partitioner
            )
        except RecoveryError as exc:
            print(f"recovery failed: {exc}", file=sys.stderr)
            return 1
        print(f"recovered: {result.summary()}")
        report = engine.fsck()
        engine.close()
    else:
        factory = DATASETS.get(args.dataset)
        if factory is None:
            print(f"unknown dataset {args.dataset!r}", file=sys.stderr)
            return 2
        report = fsck(_make_engine(args, factory()))
    print(report.summary())
    for problem in report.problems:
        print(f"  ! {problem}")
    return 0 if report.ok else 1


def _cmd_suggest(args: argparse.Namespace) -> int:
    factory = DATASETS.get(args.dataset)
    if factory is None:
        print(f"unknown dataset {args.dataset!r}", file=sys.stderr)
        return 2
    engine = KeywordSearchEngine(factory())
    completions = engine.suggest(args.prefix, limit=args.k)
    print(", ".join(completions) if completions else "(no completions)")
    return 0


def _cmd_xml(args: argparse.Namespace) -> int:
    factory = XML_CORPORA.get(args.corpus)
    if factory is None:
        print(f"unknown corpus {args.corpus!r}", file=sys.stderr)
        return 2
    engine = XmlSearchEngine(factory())
    results = engine.search(
        args.query,
        k=args.k,
        semantics=args.semantics,
        trace=args.trace or None,
    )
    if not results:
        print("no results")
    for rank, result in enumerate(results, start=1):
        print(f"{rank:2d}. [{result.score:.3f}] {result.describe()}")
        if args.snippets:
            from repro.analysis.snippets import snippet_text

            items = engine.snippet(result, args.query)
            print(f"      snippet: {snippet_text(items)}")
    if args.trace and results.trace is not None:
        print("-- trace:")
        print(format_trace(results.trace))
    return 0


def _cmd_facets(args: argparse.Namespace) -> int:
    factory = DATASETS.get(args.dataset)
    if factory is None:
        print(f"unknown dataset {args.dataset!r}", file=sys.stderr)
        return 2
    db = factory()
    table = args.table or next(iter(db.tables))
    from repro.analysis.facets import (
        NavigationModel,
        build_navigation_tree,
        navigation_cost,
    )
    from repro.datasets.logs import generate_query_log

    rows = list(db.rows(table))
    schema = db.table(table).schema
    attributes = [
        c.name for c in schema.columns if c.name != schema.primary_key
    ][:4]
    log = generate_query_log(db, table, n_queries=100, attributes=attributes)
    model = NavigationModel(log)
    tree = build_navigation_tree(rows, attributes, model)
    print(
        f"table {table!r}: {len(rows)} rows, expected navigation cost "
        f"{navigation_cost(tree, model):.1f} (flat list: {len(rows)})"
    )

    def show(node, indent=0):
        for child in node.children:
            attr, value = child.condition
            print("  " * (indent + 1) + f"{attr}={value} ({child.size()})")
            show(child, indent + 1)

    show(tree)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the overload-safe HTTP serving front end."""
    from repro.serving.server import ServingServer

    durable_dir = args.dir
    if durable_dir is not None:
        import os

        from repro.durability import DurableEngine, RecoveryError

        if os.path.exists(os.path.join(durable_dir, "MANIFEST")) or (
            os.path.isdir(durable_dir) and os.listdir(durable_dir)
        ):
            backend, options = _backend_options(args)
            try:
                engine, result = DurableEngine.recover(
                    durable_dir,
                    shards=args.shards,
                    partitioner=args.partitioner,
                    backend=backend,
                    backend_options=options,
                )
            except RecoveryError as exc:
                print(f"recovery failed: {exc}", file=sys.stderr)
                return 1
            print(f"recovered: {result.summary()}")
        else:
            factory = DATASETS.get(args.dataset)
            if factory is None:
                print(f"unknown dataset {args.dataset!r}", file=sys.stderr)
                return 2
            engine = _make_engine(args, factory())
    else:
        factory = DATASETS.get(args.dataset)
        if factory is None:
            print(f"unknown dataset {args.dataset!r}", file=sys.stderr)
            return 2
        engine = _make_engine(args, factory())

    def rebuild(live_db):
        # The router passes the database that is live *at build time* —
        # after a recover swap that is a new object rebuilt from
        # snapshot + WAL, and building from the boot-time db would
        # silently drop acknowledged post-recovery inserts.
        fresh = argparse.Namespace(
            shards=args.shards,
            partitioner=args.partitioner,
            backend=getattr(args, "backend", "dict"),
            storage_dir=getattr(args, "storage_dir", None),
            page_cache=getattr(args, "page_cache", None),
        )
        return _make_engine(fresh, live_db)

    server = ServingServer(
        engine,
        host=args.host,
        port=args.port,
        max_concurrency=args.workers,
        max_queue_depth=args.queue_depth,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        target_latency_ms=args.target_latency_ms,
        default_timeout_ms=args.timeout_ms or 2000.0,
        drain_timeout_s=args.drain_timeout_s,
        durable_dir=durable_dir,
        engine_builder=rebuild,
    )
    try:
        return server.run()
    except KeyboardInterrupt:
        drained = server.stop(timeout_s=args.drain_timeout_s)
        print(
            "interrupted: "
            + ("drained cleanly" if drained else "drain timed out"),
            file=sys.stderr,
        )
        return 130


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Keyword search and exploration on databases "
        "(ICDE 2011 tutorial reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="list bundled datasets")
    p.set_defaults(func=_cmd_datasets)

    def add_resilience_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--timeout-ms",
            type=float,
            default=None,
            help="per-query deadline; exhaustion returns partial "
            "results labeled degraded",
        )
        p.add_argument(
            "--max-expansions",
            type=int,
            default=None,
            help="per-query work cap (node expansions / CNs / candidates)",
        )
        p.add_argument(
            "--fallback",
            action="store_true",
            help="descend the degradation ladder (e.g. steiner -> banks "
            "-> index_only) when the budget exhausts with no results",
        )

    p = sub.add_parser("search", help="relational keyword search")
    p.add_argument("query")
    p.add_argument("--dataset", default="biblio", help="dataset name")
    p.add_argument("--method", default="schema", choices=list(KNOWN_METHODS))
    p.add_argument("-k", type=int, default=5)
    p.add_argument(
        "--explain",
        action="store_true",
        help="print shared-execution counters (subexpressions, reuse "
        "hits, joins avoided) and incremental index patches",
    )
    p.add_argument(
        "--trace",
        action="store_true",
        help="print the query's span tree (stage timings and work "
        "counters) after the results",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the result set as JSON (same schema as the HTTP API)",
    )
    p.add_argument(
        "--rows",
        action="store_true",
        help="with --json, inline each tuple's column values",
    )
    p.add_argument(
        "--expand",
        default=None,
        metavar="KNOBS",
        help="query expansion knobs, comma-separated: spelling, "
        "synonyms, kpp (reported as rewrites)",
    )
    p.add_argument(
        "--facets",
        nargs="?",
        const=True,
        default=None,
        metavar="ATTRS",
        help="facet the results: bare flag = auto over result tables, "
        "or an explicit table.column,... list",
    )
    p.add_argument(
        "--highlight",
        action="store_true",
        help="print a query-biased snippet under each result",
    )
    add_resilience_flags(p)
    _add_shard_flags(p)
    p.set_defaults(func=_cmd_search)

    p = sub.add_parser("batch", help="concurrent batch keyword search")
    p.add_argument("queries", nargs="*", help="query strings")
    p.add_argument("--file", default=None, help="file with one query per line")
    p.add_argument("--dataset", default="biblio", help="dataset name")
    p.add_argument("--method", default="schema", choices=list(KNOWN_METHODS))
    p.add_argument("-k", type=int, default=5)
    p.add_argument("--workers", type=int, default=8, help="thread pool size")
    p.add_argument(
        "--stats", action="store_true", help="print cache statistics after the batch"
    )
    add_resilience_flags(p)
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser(
        "metrics",
        help="run queries and print the engine's metrics snapshot as JSON",
    )
    p.add_argument("queries", nargs="+", help="query strings")
    p.add_argument("--dataset", default="biblio", help="dataset name")
    p.add_argument("--method", default="schema", choices=list(KNOWN_METHODS))
    p.add_argument("-k", type=int, default=5)
    p.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="run each query N times (exercises the result cache)",
    )
    p.add_argument(
        "--check-fk",
        action="store_true",
        help="run Database.validate() and include any referential-"
        "integrity violations in the output (exit 1 if found)",
    )
    _add_shard_flags(p)
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "snapshot",
        help="bootstrap a durability directory and commit a snapshot",
    )
    p.add_argument("--dataset", default="biblio", help="dataset name")
    p.add_argument("--dir", required=True, help="durability root directory")
    p.add_argument(
        "--fsync",
        default="always",
        choices=["always", "interval", "never"],
        help="WAL fsync policy for the session",
    )
    _add_shard_flags(p)
    p.set_defaults(func=_cmd_snapshot)

    p = sub.add_parser(
        "recover",
        help="recover an engine from a durability directory (snapshot + "
        "WAL replay)",
    )
    p.add_argument("--dir", required=True, help="durability root directory")
    p.add_argument("--query", default=None, help="run one query after recovery")
    p.add_argument("--method", default="schema", choices=list(KNOWN_METHODS))
    p.add_argument("-k", type=int, default=5)
    p.add_argument(
        "--trace",
        action="store_true",
        help="print the recovery span tree (snapshot_load/replay/refresh)",
    )
    _add_shard_flags(p)
    p.set_defaults(func=_cmd_recover)

    p = sub.add_parser(
        "fsck",
        help="verify index postings, cache stamps, FK integrity and shard "
        "ownership",
    )
    p.add_argument(
        "--dir", default=None, help="durability root to recover and check"
    )
    p.add_argument(
        "--dataset", default="biblio", help="dataset to check (without --dir)"
    )
    _add_shard_flags(p)
    p.set_defaults(func=_cmd_fsck)

    p = sub.add_parser(
        "serve",
        help="run the HTTP serving front end (admission control, load "
        "shedding, zero-downtime swaps)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080, help="0 picks a free port")
    p.add_argument("--dataset", default="biblio", help="dataset name")
    p.add_argument(
        "--dir",
        default=None,
        help="durability root; recovered on boot if populated, and "
        "mutations are WAL-logged",
    )
    p.add_argument(
        "--workers", type=int, default=8, help="query worker threads"
    )
    p.add_argument(
        "--queue-depth",
        type=int,
        default=32,
        help="bounded admission queue size (past it: 429 + Retry-After)",
    )
    p.add_argument("--tenant-rate", type=float, default=500.0)
    p.add_argument("--tenant-burst", type=float, default=1000.0)
    p.add_argument(
        "--target-latency-ms",
        type=float,
        default=250.0,
        help="latency target feeding the shedding ladder",
    )
    p.add_argument(
        "--timeout-ms",
        type=float,
        default=2000.0,
        help="default per-request deadline",
    )
    p.add_argument(
        "--drain-timeout-s",
        type=float,
        default=10.0,
        help="graceful-shutdown drain deadline (SIGTERM / Ctrl-C)",
    )
    _add_shard_flags(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("suggest", help="type-ahead completions")
    p.add_argument("prefix")
    p.add_argument("--dataset", default="biblio")
    p.add_argument("-k", type=int, default=8)
    p.set_defaults(func=_cmd_suggest)

    p = sub.add_parser("xml", help="XML keyword search")
    p.add_argument("query")
    p.add_argument("--corpus", default="bib")
    p.add_argument(
        "--semantics", default="slca", choices=["slca", "multiway", "elca"]
    )
    p.add_argument("-k", type=int, default=5)
    p.add_argument("--snippets", action="store_true")
    p.add_argument(
        "--trace",
        action="store_true",
        help="print the query's span tree after the results",
    )
    p.set_defaults(func=_cmd_xml)

    p = sub.add_parser("facets", help="faceted navigation tree")
    p.add_argument("--dataset", default="events")
    p.add_argument("--table", default=None)
    p.set_defaults(func=_cmd_facets)

    return parser


def _raise_keyboard_interrupt(signum, frame):
    raise KeyboardInterrupt


def main(argv: Optional[Sequence[str]] = None) -> int:
    _register_datasets()
    parser = build_parser()
    args = parser.parse_args(argv)
    # SIGTERM behaves like Ctrl-C: long-running commands (batch, recover,
    # serve) unwind through their finally blocks instead of dying
    # mid-write, and the process exits with the conventional 130.
    try:
        previous = signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
    except (ValueError, OSError):  # non-main thread / unsupported platform
        previous = None
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    finally:
        if previous is not None:
            try:
                signal.signal(signal.SIGTERM, previous)
            except (ValueError, OSError):
                pass


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
