"""Unified structured query front end.

* :mod:`repro.query.parser` — fielded DSL (``author:smith``,
  ``year:2008..2012``, ``AND``/``OR``/``NOT``, quoted phrases,
  ``term^2``) to a canonical, hashable :class:`StructuredQuery`;
* :mod:`repro.query.compiler` — lowers the structure onto the seven
  search methods (predicate pushdown before CN enumeration, weighted
  TF·IDF, OR-branch expansion, graceful degradation);
* :mod:`repro.query.pipeline` — response pipeline wiring expansion
  (spelling / synonyms / Keyword++), facets and highlighting around
  core search into one :class:`QueryResponse`.

The :class:`StructuredQuery` is the one object result-cache keys, span
tags, ``search --json`` and the HTTP ``/search`` route all speak.
"""

from repro.query.compiler import (
    CompiledQuery,
    FilteredTupleSets,
    RowFilter,
    WeightedIndexView,
    compile_query,
)
from repro.query.parser import (
    FieldPredicate,
    PhraseConstraint,
    StructuredQuery,
    Term,
    parse_query,
)
from repro.query.pipeline import QueryResponse, execute_pipeline

__all__ = [
    "CompiledQuery",
    "FieldPredicate",
    "FilteredTupleSets",
    "PhraseConstraint",
    "QueryResponse",
    "RowFilter",
    "StructuredQuery",
    "Term",
    "WeightedIndexView",
    "compile_query",
    "execute_pipeline",
    "parse_query",
]
