"""Lower a :class:`StructuredQuery` onto the existing search methods.

The compiler maps each DSL construct onto the machinery the engine
already has, without touching the bare-keyword code paths:

========================  ==================================================
construct                 lowering
========================  ==================================================
field/range predicates    per-table allowed-row bitsets applied to every
                          tuple set (free and non-free) *before* CN
                          enumeration (:class:`FilteredTupleSets`), to the
                          keyword-group seeds of the graph methods, and as
                          a result-row post-filter
``term^w`` weights        :class:`WeightedIndexView` scales ``idf(term)``
                          so every TF·IDF scoring path (CN top-k,
                          index_only) becomes weighted; graph methods rank
                          by tree weight and ignore weights (graceful)
``OR`` groups             CNF groups expand into a capped cross-product of
                          conjunctive *branches*; each branch runs through
                          the untouched conjunctive machinery and branch
                          results merge by max-score per tuple signature
``NOT term``              rows containing the term are banned from tuple
                          sets / seeds, plus the result post-filter
phrases                   phrase tokens join the conjunctive keywords;
                          results must contain a row with the tokens
                          adjacent (witness check on row text)
========================  ==================================================

Methods that cannot express a construct natively (the graph family:
banks/banks2/steiner/distinct_root/ease) still honour predicates,
NOT and phrases through seed filtering + the result post-filter; only
term weights are ignored there because their scores are tree weights,
not TF·IDF.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.index.text import tokenize
from repro.relational.database import TupleId
from repro.resilience.errors import QueryParseError
from repro.schema_search.candidate_networks import generate_candidate_networks
from repro.schema_search.scoring import tuple_score
from repro.schema_search.topk import topk_global_pipeline, topk_shared
from repro.schema_search.tuple_sets import TupleSetKey

from .parser import FieldPredicate, PhraseConstraint, StructuredQuery

#: Hard cap on the OR cross-product: one conjunctive execution per
#: branch, so this bounds work at ``MAX_BRANCHES`` × a normal query.
MAX_BRANCHES = 24


def _as_float(value: object) -> Optional[float]:
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


# ----------------------------------------------------------------------
# Row filtering (predicates + NOT)
# ----------------------------------------------------------------------
class RowFilter:
    """Per-table allowed-rowid bitsets plus a banned tuple set."""

    __slots__ = ("allowed", "banned")

    def __init__(self, allowed: Dict[str, int], banned: Set[TupleId]):
        self.allowed = allowed
        self.banned = banned

    def allows(self, tid: TupleId) -> bool:
        if self.banned and tid in self.banned:
            return False
        bits = self.allowed.get(tid.table)
        if bits is None:
            return True
        return bool((bits >> tid.rowid) & 1)

    def allows_rows(self, rows) -> bool:
        """True when every (already materialised) row passes."""
        return all(
            self.allows(TupleId(row.table.name, row.rowid)) for row in rows
        )

    @property
    def tables(self) -> FrozenSet[str]:
        return frozenset(self.allowed)


def _predicate_matches(row, predicate: FieldPredicate, column: Optional[str]) -> bool:
    """Does *row* satisfy *predicate* (ignoring negation)?

    ``column is None`` means the predicate resolved to the row's table:
    the value must appear (token containment) anywhere in the row text.
    """
    if predicate.op == "range":
        cell = row.get(column) if column is not None else None
        num = _as_float(cell)
        if num is None:
            return False
        if predicate.lo is not None and num < predicate.lo:
            return False
        if predicate.hi is not None and num > predicate.hi:
            return False
        return True
    candidates = (predicate.value,) + predicate.alternatives
    if column is None:
        row_tokens = set(tokenize(row.text()))
        for value in candidates:
            value_tokens = tokenize(value)
            if value_tokens and all(tok in row_tokens for tok in value_tokens):
                return True
        return False
    cell = row.get(column)
    if cell is None:
        return False
    cell_num = _as_float(cell)
    cell_tokens = None
    for value in candidates:
        value_num = _as_float(value)
        if value_num is not None and cell_num is not None:
            if value_num == cell_num:
                return True
            continue
        value_tokens = tokenize(value)
        if not value_tokens:
            continue
        if cell_tokens is None:
            cell_tokens = set(tokenize(str(cell)))
        if all(tok in cell_tokens for tok in value_tokens):
            return True
    return False


def resolve_field(db, field_name: str) -> List[Tuple[str, Optional[str]]]:
    """Resolve a DSL field to ``[(table, column-or-None), ...]``.

    A column name (in any table) wins over a table name; a table name
    means "value appears in the row text of that table".  Unknown
    fields raise :class:`QueryParseError` listing what is addressable.
    """
    hits: List[Tuple[str, Optional[str]]] = []
    for name, table in db.tables.items():
        if table.schema.has_column(field_name):
            hits.append((name, field_name))
    if hits:
        return hits
    if field_name in db.tables:
        return [(field_name, None)]
    known = sorted(
        set(db.tables)
        | {c for t in db.tables.values() for c in t.schema.column_names}
    )
    raise QueryParseError(
        f"unknown field {field_name!r} (addressable: {', '.join(known)})"
    )


def build_row_filter(engine, query: StructuredQuery) -> Optional[RowFilter]:
    """Materialise predicates + NOT terms into a :class:`RowFilter`."""
    banned: Set[TupleId] = set()
    for token in query.excluded:
        banned.update(engine.index.matching_tuples_view(token.lower()))
    allowed: Dict[str, int] = {}
    if query.predicates:
        by_table: Dict[str, List[Tuple[FieldPredicate, Optional[str]]]] = {}
        for predicate in query.predicates:
            for table, column in resolve_field(engine.db, predicate.field):
                by_table.setdefault(table, []).append((predicate, column))
        for table_name, preds in by_table.items():
            table = engine.db.table(table_name)
            bits = 0
            for rowid in range(len(table)):
                row = engine.db.row(TupleId(table_name, rowid))
                ok = True
                for predicate, column in preds:
                    hit = _predicate_matches(row, predicate, column)
                    if hit == predicate.negated:
                        ok = False
                        break
                if ok:
                    bits |= 1 << rowid
            allowed[table_name] = bits
    if not banned and not allowed:
        return None
    return RowFilter(allowed, banned)


# ----------------------------------------------------------------------
# Substrate views
# ----------------------------------------------------------------------
class FilteredTupleSets:
    """Read-only predicate view over a (possibly memoised) TupleSets.

    Delegates identity lookups to the base object and filters
    membership through the :class:`RowFilter`, so the shared memo is
    never mutated and CN enumeration / execution see only allowed
    rows — the predicate pushdown that happens *before* CN
    enumeration.  Keys whose membership filters to empty disappear
    from :meth:`non_free_keys`, shrinking the CN space accordingly.
    """

    def __init__(self, base, row_filter: RowFilter):
        self.base = base
        self.row_filter = row_filter
        self.db = base.db
        self.keywords = base.keywords
        self._members: Dict[TupleSetKey, List[TupleId]] = {}

    def tuple_ids(self, key: TupleSetKey) -> List[TupleId]:
        cached = self._members.get(key)
        if cached is None:
            allows = self.row_filter.allows
            cached = [t for t in self.base.tuple_ids(key) if allows(t)]
            self._members[key] = cached
        return list(cached)

    def rows(self, key: TupleSetKey):
        return [self.db.row(tid) for tid in self.tuple_ids(key)]

    def size(self, key: TupleSetKey) -> int:
        return len(self.tuple_ids(key))

    def non_free_keys(self) -> List[TupleSetKey]:
        return [k for k in self.base.non_free_keys() if self.size(k) > 0]

    def keys_for_table(self, table: str) -> List[TupleSetKey]:
        return [k for k in self.non_free_keys() if k.table == table]

    def keyword_subsets(self, table: str) -> List[FrozenSet[str]]:
        return [k.keywords for k in self.keys_for_table(table)]

    def covered_keywords(self) -> Set[str]:
        out: Set[str] = set()
        for key in self.non_free_keys():
            out |= key.keywords
        return out

    def __repr__(self) -> str:
        return f"Filtered({self.base!r})"


class WeightedIndexView:
    """Index proxy scaling ``idf(term)`` by per-term DSL weights.

    Every TF·IDF scoring path takes the index as a parameter, so
    substituting this view makes CN top-k and index_only scoring
    weighted without touching :mod:`repro.schema_search`.
    """

    __slots__ = ("_index", "_weights")

    def __init__(self, index, weights: Dict[str, float]):
        self._index = index
        self._weights = weights

    def idf(self, token: str) -> float:
        return self._index.idf(token) * self._weights.get(token.lower(), 1.0)

    def __getattr__(self, name):
        return getattr(self._index, name)


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
@dataclass
class CompiledQuery:
    """Execution plan: conjunctive branches + filters + weights."""

    query: StructuredQuery
    branches: Tuple[Tuple[str, ...], ...]
    weights: Dict[str, float] = field(default_factory=dict)
    row_filter: Optional[RowFilter] = None

    def index_view(self, index):
        if not self.weights:
            return index
        return WeightedIndexView(index, self.weights)

    # -- result post-filters ------------------------------------------
    def result_ok(self, result) -> bool:
        rows = result.joined.distinct_rows()
        if self.row_filter is not None and not self.row_filter.allows_rows(rows):
            return False
        for phrase in self.query.phrases:
            if not any(_phrase_in_row(row, phrase) for row in rows):
                return False
        return True


def _phrase_in_row(row, phrase: PhraseConstraint) -> bool:
    tokens = tokenize(row.text())
    want = phrase.tokens
    span = len(want)
    if span > len(tokens):
        return False
    for start in range(len(tokens) - span + 1):
        if tuple(tokens[start : start + span]) == want:
            return True
    return False


def compile_query(
    engine, query: StructuredQuery, max_branches: int = MAX_BRANCHES
) -> CompiledQuery:
    """Compile against a concrete engine (schema + index).

    Raises :class:`QueryParseError` for unknown fields or an OR
    cross-product beyond *max_branches*.
    """
    if query.branch_count() > max_branches:
        raise QueryParseError(
            f"query expands to {query.branch_count()} conjunctive branches "
            f"(cap {max_branches}); simplify the OR structure"
        )
    weights: Dict[str, float] = {}
    for group in query.groups:
        for term in group:
            if term.weight != 1.0:
                weights[term.token] = max(
                    weights.get(term.token, 0.0), term.weight
                )
    branches: List[Tuple[str, ...]] = []
    if query.groups:
        for choice in product(*query.groups):
            seen: Dict[str, None] = {}
            for term in choice:
                seen.setdefault(term.token)
            branches.append(tuple(seen))
    return CompiledQuery(
        query=query,
        branches=tuple(branches),
        weights=weights,
        row_filter=build_row_filter(engine, query),
    )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def execute_structured(engine, compiled, k, method, budget=None, tracer=None):
    """Run every branch through *method* and merge the branch top-ks.

    Returns a plain list of SearchResults (the engine wraps them in a
    ResultSet with degradation metadata, mirroring ``_dispatch``).
    Deduplication across branches keeps the best score per tuple
    signature; ordering is (score desc, tuple ids) — deterministic and
    identical for cached/uncached and sharded/unsharded execution.
    """
    from repro.obs.trace import span as trace_span

    gathered = []
    for branch in compiled.branches:
        with trace_span(tracer, "branch") as bsp:
            bsp.tag("keywords", " ".join(branch))
            gathered.extend(
                _run_branch(engine, compiled, branch, k, method, budget, tracer)
            )
    return merge_branch_results(gathered, compiled, k)


def merge_branch_results(results, compiled, k):
    """Post-filter, dedup and order results — one rule for every path.

    Shared by :func:`execute_structured` and the sharding
    coordinator's structured gather, so sharded and single-engine
    answers to the same structured query sort identically.
    """
    merged: Dict[Tuple, object] = {}
    for result in results:
        if not compiled.result_ok(result):
            continue
        signature = tuple(sorted(result.tuple_ids()))
        prior = merged.get(signature)
        if prior is None or result.score > prior.score:
            merged[signature] = result
    ordered = sorted(merged.items(), key=lambda kv: (-kv[1].score, kv[0]))
    return [result for _, result in ordered[:k]]


def predicate_only_results(engine, compiled, k):
    """Answers for a query with predicates but no keywords.

    The CN/graph machinery needs keywords to join on; a pure
    ``field:value`` query degrades gracefully to the satisfying rows
    themselves, one single-tuple answer per row, in tuple-id order.
    """
    from repro.core.results import SearchResult

    row_filter = compiled.row_filter
    if row_filter is None or not row_filter.allowed:
        return []
    out = []
    for table_name in sorted(row_filter.allowed):
        bits = row_filter.allowed[table_name]
        rowid = 0
        while bits:
            if bits & 1:
                tid = TupleId(table_name, rowid)
                if not row_filter.banned or tid not in row_filter.banned:
                    out.append(
                        SearchResult(
                            score=1.0,
                            network=f"filter({table_name})",
                            joined=engine._tree_to_joined({tid}),
                        )
                    )
                    if len(out) >= k:
                        return out
            bits >>= 1
            rowid += 1
    return out


def _run_branch(engine, compiled, keywords, k, method, budget, tracer):
    if method == "schema":
        return _branch_schema(engine, compiled, keywords, k, budget, tracer)
    if method == "index_only":
        return _branch_index_only(engine, compiled, keywords, k, budget, tracer)
    return _branch_graph(engine, compiled, keywords, k, method, budget, tracer)


def structured_substrates(engine, compiled, keywords, budget=None, tracer=None):
    """(tuple_sets, cns, index_view) for one conjunctive branch.

    Shared by the in-process engine and the sharding coordinator so
    scattered CN plans carry the *filtered* tuple sets — predicates
    ride to the shards instead of being re-checked at the gather.
    """
    from repro.obs.trace import span as trace_span

    keywords = list(keywords)
    with trace_span(tracer, "substrate_build") as ssp:
        base = engine.substrates.tuple_sets(keywords)
        if compiled.row_filter is not None:
            tuple_sets = FilteredTupleSets(base, compiled.row_filter)
        else:
            tuple_sets = base
        ssp.add("tuple_set_keys", len(tuple_sets.non_free_keys()))
    with trace_span(tracer, "cn_enumerate") as nsp:
        if compiled.row_filter is None and budget is None:
            cns = engine.substrates.candidate_networks(keywords, engine.max_cn_size)
        else:
            # Filtered or budgeted enumeration happens outside the memo:
            # the CN space depends on which tuple sets survive the
            # predicates, and a truncated list must never be cached.
            cns = generate_candidate_networks(
                engine.schema_graph,
                tuple_sets,
                max_size=engine.max_cn_size,
                budget=budget,
            )
        nsp.add("cns", len(cns))
    return tuple_sets, cns, compiled.index_view(engine.index)


def _branch_schema(engine, compiled, keywords, k, budget, tracer):
    from repro.core.results import SearchResult

    keywords = list(keywords)
    tuple_sets, cns, index = structured_substrates(
        engine, compiled, keywords, budget=budget, tracer=tracer
    )
    if not cns:
        return []
    if engine.cn_execution == "shared":
        result = topk_shared(
            cns,
            tuple_sets,
            index,
            keywords,
            k=k,
            budget=budget,
            max_workers=engine.cn_workers,
            tracer=tracer,
        )
    else:
        result = topk_global_pipeline(
            cns, tuple_sets, index, keywords, k=k, budget=budget, tracer=tracer
        )
    engine._record_sharing(result.stats)
    return [
        SearchResult(score=score, network=label, joined=joined)
        for score, label, joined in result.results
    ]


def _branch_index_only(engine, compiled, keywords, k, budget, tracer):
    from repro.core.results import SearchResult
    from repro.obs.trace import span as trace_span
    from repro.resilience.errors import BudgetExceededError

    index = compiled.index_view(engine.index)
    row_filter = compiled.row_filter
    keywords = list(keywords)
    scored: Dict[TupleId, float] = {}
    with trace_span(tracer, "evaluate") as esp:
        try:
            for keyword in keywords:
                for tid in engine.index.matching_tuples_view(keyword.lower()):
                    if tid in scored:
                        continue
                    if row_filter is not None and not row_filter.allows(tid):
                        continue
                    if budget is not None:
                        budget.tick_candidates()
                    scored[tid] = tuple_score(index, tid, keywords)
        except BudgetExceededError:
            pass  # partial scoring; caller sees budget.exhausted
        esp.add("tuples_scored", len(scored))
    top = sorted(scored.items(), key=lambda item: (-item[1], item[0]))[:k]
    return [
        SearchResult(
            score=score,
            network=f"index-only({tid.table})",
            joined=engine._tree_to_joined({tid}),
        )
        for tid, score in top
    ]


def filtered_keyword_groups(engine, compiled, keywords):
    """Keyword-match seed groups with banned/filtered rows removed.

    Returns ``None`` when a keyword has no (surviving) matches — AND
    semantics then yields no answers, same as the legacy groups path.
    """
    groups = engine.substrates.keyword_groups(list(keywords))
    if groups is None:
        return None
    if compiled.row_filter is None:
        return groups
    allows = compiled.row_filter.allows
    filtered = [[tid for tid in group if allows(tid)] for group in groups]
    if any(not group for group in filtered):
        return None
    return filtered


def _branch_graph(engine, compiled, keywords, k, method, budget, tracer):
    """Graph-family lowering: filtered seeds + result post-filter.

    Term weights do not lower here (scores are tree weights); phrase
    and predicate semantics are enforced by seed filtering plus the
    shared result post-filter in :func:`execute_structured`.
    """
    from repro.core.results import SearchResult
    from repro.graph_search.banks import banks_backward, banks_bidirectional
    from repro.graph_search.steiner import group_steiner_dp
    from repro.obs.trace import span as trace_span

    with trace_span(tracer, "substrate_build") as ssp:
        groups = filtered_keyword_groups(engine, compiled, keywords)
        ssp.add("keyword_groups", len(groups) if groups else 0)
    if groups is None:
        return []
    if method in ("banks", "banks2"):
        algo = banks_bidirectional if method == "banks2" else banks_backward
        with trace_span(tracer, "evaluate") as esp:
            result = algo(
                engine.data_graph,
                groups,
                k=k,
                budget=budget,
                span=esp if tracer is not None else None,
            )
            esp.add("trees", len(result.trees))
        return [
            SearchResult(
                score=1.0 / (1.0 + tree.weight),
                network=f"banks-tree(root={tree.root})",
                joined=engine._tree_to_joined(tree.nodes),
            )
            for tree in result.trees
        ]
    if method == "steiner":
        with trace_span(tracer, "evaluate") as esp:
            tree = group_steiner_dp(
                engine.data_graph,
                groups,
                budget=budget,
                span=esp if tracer is not None else None,
            )
            esp.add("trees", 0 if tree is None else 1)
        if tree is None:
            return []
        return [
            SearchResult(
                score=1.0 / (1.0 + tree.weight),
                network=f"steiner(weight={tree.weight:.1f})",
                joined=engine._tree_to_joined(tree.nodes),
            )
        ]
    if method == "distinct_root":
        from repro.graph_search.semantics import distinct_root_results

        dmax = engine.distance_index.max_distance
        with trace_span(tracer, "evaluate") as esp:
            answers = distinct_root_results(
                engine.data_graph, groups, dmax=dmax, k=k
            )
            esp.add("answers", len(answers))
        return [
            SearchResult(
                score=1.0 / (1.0 + answer.cost),
                network=f"distinct-root(root={answer.root})",
                joined=engine._tree_to_joined(
                    {answer.root, *(m for m in answer.matches if m is not None)}
                ),
            )
            for answer in answers
        ]
    if method == "ease":
        from repro.graph_search.ease import r_radius_steiner_graphs

        with trace_span(tracer, "evaluate") as esp:
            answers = r_radius_steiner_graphs(
                engine.data_graph, groups, r=2, k=k, budget=budget
            )
            esp.add("answers", len(answers))
        return [
            SearchResult(
                score=1.0 / answer.size(),
                network=f"ease(center={answer.center})",
                joined=engine._tree_to_joined(answer.nodes),
            )
            for answer in answers
        ]
    raise QueryParseError(f"unknown method {method!r}")
