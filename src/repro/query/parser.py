"""Fielded query DSL -> canonical :class:`StructuredQuery`.

Grammar (whitespace-separated, ``AND``/``OR``/``NOT`` must be uppercase
to act as operators; anything else is query text and is normalised by
the same tokenizer the inverted index uses)::

    expr     := or_expr
    or_expr  := and_expr (OR and_expr)*
    and_expr := unary (AND? unary)*          # adjacency is implicit AND
    unary    := (NOT | '-') unary | atom
    atom     := '(' expr ')' | phrase | fielded | word
    phrase   := '"' text '"' ['^' number]
    fielded  := name ':' value               # value: bare, quoted, or a..b
    word     := token ['^' number]

Examples: ``author:smith year:2008..2012``, ``"query processing"``,
``xml AND (search OR retrieval) NOT twig``, ``ranking^2 keyword``.

The parser produces a frozen, hashable :class:`StructuredQuery` in
conjunctive normal form: an AND of OR-groups of weighted terms, plus
excluded (NOT) terms, phrase constraints and field predicates.  Two
texts that normalise identically compare equal, which is what lets the
result-cache key, span tags, ``search --json`` and the HTTP API all
speak this one object.

Bare keyword queries — no operators, fields, phrases or weights — are
guaranteed to normalise to exactly the legacy token stream
(:func:`repro.index.text.tokenize`), so :attr:`StructuredQuery.is_bare`
gates a byte-identical legacy execution path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.index.text import tokenize
from repro.resilience.errors import QueryParseError

#: Hard cap on CNF clauses produced by OR-distribution, so a
#: pathological ``(a b c ...) OR (d e f ...)`` query cannot blow up
#: normalisation.
MAX_GROUPS = 64

_OPERATORS = {"AND", "OR", "NOT"}


@dataclass(frozen=True, order=True)
class Term:
    """One weighted query token (already lowercased/tokenized)."""

    token: str
    weight: float = 1.0

    def label(self) -> str:
        if self.weight != 1.0:
            return f"{self.token}^{self.weight:g}"
        return self.token


@dataclass(frozen=True)
class PhraseConstraint:
    """Adjacency constraint: tokens must appear consecutively in a row."""

    tokens: Tuple[str, ...]
    weight: float = 1.0

    def label(self) -> str:
        body = '"' + " ".join(self.tokens) + '"'
        if self.weight != 1.0:
            body += f"^{self.weight:g}"
        return body


@dataclass(frozen=True)
class FieldPredicate:
    """A structural constraint: ``field:value`` or ``field:lo..hi``.

    *field* names either a column (in any table that has it) or a
    table; resolution against a concrete schema happens at compile
    time (:mod:`repro.query.compiler`).  ``lo``/``hi`` are ``None`` for
    open-ended ranges (``year:2008..``).
    """

    field: str
    op: str  # "eq" | "range"
    value: str = ""
    lo: Optional[float] = None
    hi: Optional[float] = None
    negated: bool = False
    #: synonym-expanded values: an eq predicate matches its value OR
    #: any alternative (set by the ``expand=synonyms`` pipeline knob)
    alternatives: Tuple[str, ...] = ()

    def label(self) -> str:
        if self.op == "range":
            lo = "" if self.lo is None else f"{self.lo:g}"
            hi = "" if self.hi is None else f"{self.hi:g}"
            body = f"{self.field}:{lo}..{hi}"
        else:
            value = self.value
            if any(ch.isspace() for ch in value):
                value = f'"{value}"'
            body = f"{self.field}:{value}"
            if self.alternatives:
                body += "|" + "|".join(self.alternatives)
        return f"-{body}" if self.negated else body


@dataclass(frozen=True)
class StructuredQuery:
    """Canonical parsed query: AND of OR-groups + constraints.

    Hashable and order-stable: the *identity* part (groups, excluded,
    phrases, predicates) is exactly what :meth:`cache_key` returns, so
    any two texts that normalise to the same structure share one
    result-cache entry, while structurally different queries that
    happen to tokenize identically (``author:smith`` vs
    ``author smith``) get distinct keys.
    """

    raw: str
    groups: Tuple[Tuple[Term, ...], ...] = ()
    excluded: Tuple[str, ...] = ()
    phrases: Tuple[PhraseConstraint, ...] = ()
    predicates: Tuple[FieldPredicate, ...] = ()
    #: original bare tokens when query cleaning rewrote them
    cleaned_from: Optional[Tuple[str, ...]] = field(default=None, compare=False)

    # -- shape ---------------------------------------------------------
    @property
    def is_bare(self) -> bool:
        """True when this is a plain keyword query with no DSL constructs.

        Bare queries take the legacy execution path and are
        byte-identical to the pre-DSL engine.
        """
        return (
            not self.excluded
            and not self.phrases
            and not self.predicates
            and all(
                len(group) == 1 and group[0].weight == 1.0
                for group in self.groups
            )
        )

    @property
    def is_empty(self) -> bool:
        return not self.groups and not self.phrases and not self.predicates

    @property
    def has_weights(self) -> bool:
        return any(t.weight != 1.0 for g in self.groups for t in g) or any(
            p.weight != 1.0 for p in self.phrases
        )

    def bare_keywords(self) -> List[str]:
        """Token stream of a bare query (order and duplicates kept)."""
        return [group[0].token for group in self.groups]

    def branch_count(self) -> int:
        n = 1
        for group in self.groups:
            n *= len(group)
        return n

    # -- identity ------------------------------------------------------
    def cache_key(self) -> Tuple:
        """Hashable identity; ignores raw text and cleaning provenance."""
        return ("sq1", self.groups, self.excluded, self.phrases, self.predicates)

    def canonical(self) -> str:
        """Deterministic one-line form for span tags and logs.

        Round-trip stable: ``parse_query(q.canonical()).cache_key() ==
        q.cache_key()``.  Phrase constraints inject their tokens as
        trailing keyword groups at parse time; rendering the phrase
        re-injects them on reparse, so that tail is skipped here.
        """
        groups = self.groups
        injected = tuple(
            (Term(t, p.weight),) for p in self.phrases for t in p.tokens
        )
        if injected and groups[-len(injected):] == injected:
            groups = groups[: len(groups) - len(injected)]
        parts: List[str] = []
        for group in groups:
            if len(group) == 1:
                parts.append(group[0].label())
            else:
                parts.append("(" + " OR ".join(t.label() for t in group) + ")")
        parts.extend(p.label() for p in self.phrases)
        parts.extend(f"-{tok}" for tok in self.excluded)
        parts.extend(p.label() for p in self.predicates)
        return " ".join(parts)

    def to_dict(self) -> dict:
        out: dict = {"canonical": self.canonical(), "bare": self.is_bare}
        if self.groups:
            out["groups"] = [
                [{"token": t.token, "weight": t.weight} for t in g]
                for g in self.groups
            ]
        if self.excluded:
            out["excluded"] = list(self.excluded)
        if self.phrases:
            out["phrases"] = [" ".join(p.tokens) for p in self.phrases]
        if self.predicates:
            out["predicates"] = [p.label() for p in self.predicates]
        if self.cleaned_from is not None:
            out["cleaned_from"] = list(self.cleaned_from)
        return out

    def with_bare_keywords(self, tokens: Sequence[str]) -> "StructuredQuery":
        """Bare-query rewrite (cleaning), recording the original tokens."""
        return replace(
            self,
            groups=tuple((Term(t.lower()),) for t in tokens),
            cleaned_from=tuple(self.bare_keywords()),
        )


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Tok:
    kind: str  # lparen rparen op word phrase fielded
    text: str = ""
    value: str = ""
    weight: float = 1.0


def _parse_weight(spec: str, pos: int) -> float:
    try:
        weight = float(spec)
    except ValueError:
        raise QueryParseError(
            f"invalid weight {spec!r} at position {pos}"
        ) from None
    if weight <= 0:
        raise QueryParseError(f"weight must be positive, got {spec!r}")
    return weight


def _lex(text: str) -> List[_Tok]:
    toks: List[_Tok] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in "()":
            toks.append(_Tok("lparen" if ch == "(" else "rparen"))
            i += 1
            continue
        if ch == '"':
            end = text.find('"', i + 1)
            if end < 0:
                raise QueryParseError(f"unterminated phrase at position {i}")
            body = text[i + 1 : end]
            i = end + 1
            weight = 1.0
            if i < n and text[i] == "^":
                j = i + 1
                while j < n and not text[j].isspace() and text[j] not in '()"':
                    j += 1
                weight = _parse_weight(text[i + 1 : j], i)
                i = j
            toks.append(_Tok("phrase", text=body, weight=weight))
            continue
        if ch == "-" and i + 1 < n and not text[i + 1].isspace():
            toks.append(_Tok("op", text="NOT"))
            i += 1
            continue
        # bare word / operator / field:value run
        j = i
        while j < n and not text[j].isspace() and text[j] not in '()"':
            j += 1
        word = text[i:j]
        i = j
        if word in _OPERATORS:
            toks.append(_Tok("op", text=word))
            continue
        colon = word.find(":")
        if colon > 0:
            name, value = word[:colon], word[colon + 1 :]
            if not value and i < n and text[i] == '"':
                # field:"quoted value"
                end = text.find('"', i + 1)
                if end < 0:
                    raise QueryParseError(
                        f"unterminated field value at position {i}"
                    )
                value = text[i + 1 : end]
                i = end + 1
            if value:
                toks.append(_Tok("fielded", text=name.lower(), value=value))
                continue
            # trailing colon with no value ("time:"): legacy text, not
            # DSL — fall through and treat the run as a plain word
        weight = 1.0
        caret = word.rfind("^")
        if caret > 0:
            weight = _parse_weight(word[caret + 1 :], i)
            word = word[:caret]
        toks.append(_Tok("word", text=word, weight=weight))
    return toks


# ----------------------------------------------------------------------
# Recursive-descent parser over an AST, then CNF normalisation
# ----------------------------------------------------------------------
class _Node:
    pass


@dataclass
class _Leaf(_Node):
    tok: _Tok


@dataclass
class _Bool(_Node):
    op: str  # "and" | "or" | "not"
    children: List[_Node]


class _Parser:
    def __init__(self, toks: List[_Tok]):
        self.toks = toks
        self.pos = 0

    def peek(self) -> Optional[_Tok]:
        return self.toks[self.pos] if self.pos < len(self.toks) else None

    def take(self) -> _Tok:
        tok = self.toks[self.pos]
        self.pos += 1
        return tok

    def parse(self) -> Optional[_Node]:
        if not self.toks:
            return None
        node = self.or_expr()
        if self.peek() is not None:
            raise QueryParseError(
                f"unexpected {self.peek().kind} token after query end"
            )
        return node

    def or_expr(self) -> _Node:
        children = [self.and_expr()]
        while True:
            tok = self.peek()
            if tok is None or tok.kind != "op" or tok.text != "OR":
                break
            self.take()
            children.append(self.and_expr())
        return children[0] if len(children) == 1 else _Bool("or", children)

    def and_expr(self) -> _Node:
        children = [self.unary()]
        while True:
            tok = self.peek()
            if tok is None or tok.kind == "rparen":
                break
            if tok.kind == "op" and tok.text == "OR":
                break
            if tok.kind == "op" and tok.text == "AND":
                self.take()
                tok = self.peek()
                if tok is None or tok.kind == "rparen":
                    raise QueryParseError("dangling AND operator")
            children.append(self.unary())
        return children[0] if len(children) == 1 else _Bool("and", children)

    def unary(self) -> _Node:
        tok = self.peek()
        if tok is not None and tok.kind == "op" and tok.text == "NOT":
            self.take()
            inner = self.peek()
            if inner is None:
                raise QueryParseError("dangling NOT operator")
            return _Bool("not", [self.unary()])
        return self.atom()

    def atom(self) -> _Node:
        tok = self.peek()
        if tok is None:
            raise QueryParseError("unexpected end of query")
        if tok.kind == "lparen":
            self.take()
            node = self.or_expr()
            closing = self.peek()
            if closing is None or closing.kind != "rparen":
                raise QueryParseError("unbalanced parenthesis")
            self.take()
            return node
        if tok.kind == "rparen":
            raise QueryParseError("unbalanced parenthesis")
        if tok.kind == "op":
            raise QueryParseError(f"misplaced {tok.text} operator")
        return _Leaf(self.take())


@dataclass
class _Conj:
    """Normalisation accumulator: one conjunction of constraints."""

    groups: List[Tuple[Term, ...]]
    excluded: List[str]
    phrases: List[PhraseConstraint]
    predicates: List[FieldPredicate]
    #: Keyword groups injected by phrase constraints.  Kept apart so the
    #: final query always places them after the user's own groups —
    #: ``canonical()`` relies on that to skip them when rendering (the
    #: rendered phrase re-injects them on reparse).
    phrase_groups: List[Tuple[Term, ...]]

    @staticmethod
    def empty() -> "_Conj":
        return _Conj([], [], [], [], [])

    def merge(self, other: "_Conj") -> None:
        self.groups.extend(other.groups)
        self.excluded.extend(other.excluded)
        self.phrases.extend(other.phrases)
        self.predicates.extend(other.predicates)
        self.phrase_groups.extend(other.phrase_groups)

    @property
    def pure_terms(self) -> bool:
        return not self.excluded and not self.phrases and not self.predicates


def _field_predicate(tok: _Tok, negated: bool = False) -> FieldPredicate:
    value = tok.value
    if ".." in value:
        lo_s, hi_s = value.split("..", 1)
        try:
            lo = float(lo_s) if lo_s else None
            hi = float(hi_s) if hi_s else None
        except ValueError:
            raise QueryParseError(
                f"range bounds must be numeric: {tok.text}:{value}"
            ) from None
        if lo is None and hi is None:
            raise QueryParseError(f"empty range for field {tok.text!r}")
        return FieldPredicate(tok.text, "range", lo=lo, hi=hi, negated=negated)
    return FieldPredicate(tok.text, "eq", value=value.lower(), negated=negated)


def _leaf_conj(tok: _Tok) -> _Conj:
    conj = _Conj.empty()
    if tok.kind == "word":
        tokens = tokenize(tok.text)
        if not tokens and tok.weight == 1.0:
            return conj  # pure punctuation, legacy tokenizer drops it
        if not tokens:
            raise QueryParseError(f"weight attached to empty term {tok.text!r}")
        # A word that tokenizes to several tokens ("x-men") is an
        # implicit AND, matching the legacy token stream exactly.
        conj.groups.extend((Term(t, tok.weight),) for t in tokens)
        return conj
    if tok.kind == "phrase":
        tokens = tuple(tokenize(tok.text))
        if not tokens:
            return conj
        if len(tokens) == 1:
            conj.groups.append((Term(tokens[0], tok.weight),))
            return conj
        conj.phrases.append(PhraseConstraint(tokens, tok.weight))
        # Phrase tokens also participate as required keywords so every
        # method can retrieve candidates; adjacency is verified on the
        # result rows afterwards.
        conj.phrase_groups.extend((Term(t, tok.weight),) for t in tokens)
        return conj
    if tok.kind == "fielded":
        conj.predicates.append(_field_predicate(tok))
        return conj
    raise QueryParseError(f"unexpected {tok.kind} token")  # pragma: no cover


def _normalize(node: _Node) -> _Conj:
    if isinstance(node, _Leaf):
        return _leaf_conj(node.tok)
    assert isinstance(node, _Bool)
    if node.op == "and":
        conj = _Conj.empty()
        for child in node.children:
            conj.merge(_normalize(child))
        return conj
    if node.op == "or":
        parts = [_normalize(child) for child in node.children]
        for part in parts:
            if not part.pure_terms:
                raise QueryParseError(
                    "OR may only combine plain terms "
                    "(phrases, NOT and field predicates are AND-only)"
                )
        parts = [p for p in parts if p.groups]
        conj = _Conj.empty()
        if not parts:
            return conj
        # CNF distribution: (∧ai) OR (∧bj) = ∧ij (ai ∪ bj).
        clauses: List[Tuple[Term, ...]] = parts[0].groups
        for part in parts[1:]:
            merged = []
            for left in clauses:
                for right in part.groups:
                    union = dict.fromkeys(left)
                    union.update(dict.fromkeys(right))
                    merged.append(tuple(sorted(union)))
            clauses = merged
            if len(clauses) > MAX_GROUPS:
                raise QueryParseError(
                    f"query normalises to more than {MAX_GROUPS} AND-clauses"
                )
        conj.groups = clauses
        return conj
    # NOT
    inner = node.children[0]
    if isinstance(inner, _Bool) and inner.op == "not":
        return _normalize(inner.children[0])  # double negation
    conj = _Conj.empty()
    if isinstance(inner, _Leaf):
        tok = inner.tok
        if tok.kind == "word":
            conj.excluded.extend(tokenize(tok.text))
            return conj
        if tok.kind == "phrase":
            raise QueryParseError("NOT cannot apply to a phrase")
        if tok.kind == "fielded":
            conj.predicates.append(_field_predicate(tok, negated=True))
            return conj
    if isinstance(inner, _Bool) and inner.op == "or":
        for child in inner.children:
            part = _normalize(child)
            if not part.pure_terms or any(len(g) != 1 for g in part.groups):
                raise QueryParseError(
                    "NOT (...) may only contain an OR of plain terms"
                )
            conj.excluded.extend(g[0].token for g in part.groups)
        return conj
    raise QueryParseError("NOT may only apply to a term, field, or OR of terms")


def parse_query(text: str) -> StructuredQuery:
    """Parse DSL *text* into a canonical :class:`StructuredQuery`.

    Raises :class:`~repro.resilience.errors.QueryParseError` on
    malformed input (unbalanced parens/quotes, dangling operators, bad
    weights or range bounds, unsupported NOT/OR shapes).
    """
    node = _Parser(_lex(text)).parse()
    if node is None:
        return StructuredQuery(raw=text)
    conj = _normalize(node)
    # Drop excluded tokens that also appear as required terms is NOT
    # done here: ``a NOT a`` is contradictory and correctly returns
    # nothing — silently repairing it would mask user intent.
    return StructuredQuery(
        raw=text,
        groups=tuple(conj.groups) + tuple(conj.phrase_groups),
        excluded=tuple(dict.fromkeys(conj.excluded)),
        phrases=tuple(conj.phrases),
        predicates=tuple(conj.predicates),
    )
