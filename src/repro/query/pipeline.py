"""Response pipeline: expansion, facets and highlighting around search.

One call — :func:`execute_pipeline` — wires the previously siloed
:mod:`repro.ambiguity` (spelling, synonyms, Keyword++) and
:mod:`repro.analysis` (facets, snippets) scenarios around a core
search, producing a :class:`QueryResponse`:

* ``expand=`` (comma-separated knobs):

  - ``spelling`` — report the cleaner's rewrite of bare keywords as a
    ``rewrites`` entry (the rewrite itself is always applied by the
    engine's canonical parse);
  - ``synonyms`` — for each ``field:value`` equality predicate, find
    data-similar attribute values
    (:func:`repro.ambiguity.synonyms.similar_values`) and widen the
    predicate to match them too;
  - ``kpp`` — translate residual bare keywords through an attached
    Keyword++ model (``engine.keyword_model``,
    :class:`repro.ambiguity.rewriting.KeywordPlusPlus`) into field
    predicates.

* ``facets=`` — value-count facets over the distinct result rows,
  either auto (every non-key column of every table in the results) or
  an explicit list of ``table.column`` attributes; numeric attributes
  get equi-width range buckets.
* ``highlight=`` — a query-biased snippet per result: the row with the
  most matched query terms, matched tokens wrapped in ``**..**``.

The pipeline works against any front with the engine search contract —
:class:`~repro.core.engine.KeywordSearchEngine`,
:class:`~repro.sharding.coordinator.ShardedSearchEngine`, or a
:class:`~repro.durability.engine.DurableEngine` wrapping either.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.results import ResultSet
from repro.index.text import tokenize
from repro.resilience.errors import QueryParseError

from .compiler import _as_float, resolve_field
from .parser import StructuredQuery

KNOWN_EXPANSIONS = ("spelling", "synonyms", "kpp")

#: Auto-facet cap: at most this many facet attributes, each with at
#: most ``facet_limit`` entries.
MAX_FACET_ATTRIBUTES = 8


@dataclass
class QueryResponse:
    """Everything one query produced, JSON-ready.

    ``to_dict`` embeds the executed canonical query alongside the
    :class:`ResultSet` payload, so HTTP clients and ``search --json``
    consumers see exactly what ran (including expansion rewrites).
    """

    query: StructuredQuery
    results: ResultSet
    rewrites: List[Dict[str, Any]] = field(default_factory=list)
    facets: Optional[Dict[str, List[Dict[str, Any]]]] = None
    highlights: Optional[List[Dict[str, Any]]] = None

    def to_dict(self, include_rows: bool = False) -> Dict[str, Any]:
        payload = self.results.to_dict(include_rows=include_rows)
        payload["query"] = self.query.to_dict()
        if self.rewrites:
            payload["rewrites"] = self.rewrites
        if self.facets is not None:
            payload["facets"] = self.facets
        if self.highlights is not None:
            payload["highlights"] = self.highlights
        return payload


def core_engine(front):
    """Unwrap serving fronts to the KeywordSearchEngine that owns db/index."""
    engine = front
    seen = 0
    while not hasattr(engine, "substrates") and hasattr(engine, "engine"):
        engine = engine.engine
        seen += 1
        if seen > 4:  # defensive: malformed wrapper chain
            break
    return engine


def parse_expand(expand) -> Tuple[str, ...]:
    """Normalise the ``expand=`` knob to a tuple of known names."""
    if expand is None or expand == "" or expand is False:
        return ()
    if expand is True:
        return KNOWN_EXPANSIONS
    if isinstance(expand, str):
        names = [part.strip().lower() for part in expand.split(",") if part.strip()]
    else:
        names = [str(part).strip().lower() for part in expand]
    for name in names:
        if name not in KNOWN_EXPANSIONS:
            raise QueryParseError(
                f"unknown expansion {name!r} "
                f"(choices: {', '.join(KNOWN_EXPANSIONS)})"
            )
    return tuple(dict.fromkeys(names))


# ----------------------------------------------------------------------
# Expansion rewrites
# ----------------------------------------------------------------------
def _expand_synonyms(engine, query: StructuredQuery, limit: int = 3):
    """Widen eq field predicates with data-similar attribute values."""
    rewrites: List[Dict[str, Any]] = []
    new_predicates = []
    changed = False
    for predicate in query.predicates:
        if predicate.op != "eq" or predicate.negated or predicate.alternatives:
            new_predicates.append(predicate)
            continue
        alternatives: List[str] = []
        for table, column in resolve_field(engine.db, predicate.field):
            if column is None:
                continue
            features = [
                c
                for c in engine.db.table(table).schema.text_columns
                if c != column
            ]
            if not features:
                continue
            try:
                similar = similar_values_cached(
                    engine, table, column, predicate.value, tuple(features), limit
                )
            except (KeyError, ValueError):
                continue
            alternatives.extend(
                value.lower() for value, score in similar if score > 0.0
            )
        alternatives = list(dict.fromkeys(alternatives))[:limit]
        if alternatives:
            changed = True
            widened = replace(predicate, alternatives=tuple(alternatives))
            new_predicates.append(widened)
            rewrites.append(
                {
                    "kind": "synonym",
                    "field": predicate.field,
                    "value": predicate.value,
                    "alternatives": alternatives,
                }
            )
        else:
            new_predicates.append(predicate)
    if changed:
        query = replace(query, predicates=tuple(new_predicates))
    return query, rewrites


def similar_values_cached(engine, table, column, value, features, limit):
    from repro.ambiguity.synonyms import similar_values

    return similar_values(
        engine.db, table, column, value, list(features), k=limit
    )


def _expand_kpp(engine, query: StructuredQuery):
    """Translate bare keywords into predicates via Keyword++ mappings."""
    from .parser import FieldPredicate

    model = getattr(engine, "keyword_model", None)
    rewrites: List[Dict[str, Any]] = []
    if model is None:
        return query, rewrites
    mapped_predicates: List[FieldPredicate] = []
    kept_groups = []
    for group in query.groups:
        if len(group) != 1 or group[0].weight != 1.0:
            kept_groups.append(group)
            continue
        mapping = model.mappings.get(group[0].token)
        if mapping is None:
            kept_groups.append(group)
            continue
        if mapping.kind == "equality":
            mapped_predicates.append(
                FieldPredicate(
                    field=mapping.attribute,
                    op="eq",
                    value=str(mapping.value).lower(),
                )
            )
            rewrites.append(
                {
                    "kind": "kpp",
                    "keyword": group[0].token,
                    "predicate": f"{mapping.attribute}:{mapping.value}",
                }
            )
        else:
            # order_by mappings have no structural lowering yet; report
            # the interpretation without changing the query.
            kept_groups.append(group)
            rewrites.append(
                {
                    "kind": "kpp",
                    "keyword": group[0].token,
                    "note": f"order by {mapping.attribute} {mapping.direction}",
                }
            )
    if mapped_predicates:
        query = replace(
            query,
            groups=tuple(kept_groups),
            predicates=query.predicates + tuple(mapped_predicates),
        )
    return query, rewrites


# ----------------------------------------------------------------------
# Facets
# ----------------------------------------------------------------------
def _distinct_result_rows(results) -> List:
    rows = []
    seen = set()
    for result in results:
        joined = getattr(result, "joined", None)
        if joined is None:
            continue
        for row in joined.distinct_rows():
            key = (row.table.name, row.rowid)
            if key not in seen:
                seen.add(key)
                rows.append(row)
    return rows


def _facet_attributes(rows, spec) -> List[Tuple[str, str]]:
    """Resolve the facet spec to ``(table, column)`` pairs."""
    if spec is not None and spec is not True:
        if isinstance(spec, str):
            parts = [p.strip() for p in spec.split(",") if p.strip()]
        else:
            parts = [str(p).strip() for p in spec]
        out = []
        for part in parts:
            if "." not in part:
                raise QueryParseError(
                    f"facet attribute {part!r} must be table.column"
                )
            table, column = part.split(".", 1)
            out.append((table, column))
        return out
    tables: Dict[str, Any] = {}
    for row in rows:
        tables.setdefault(row.table.name, row.table)
    out = []
    for name in sorted(tables):
        table = tables[name]
        schema = table.schema
        keys = {schema.primary_key}
        keys.update(fk.column for fk in getattr(schema, "foreign_keys", ()))
        for column in schema.column_names:
            if column in keys:
                continue
            out.append((name, column))
            if len(out) >= MAX_FACET_ATTRIBUTES:
                return out
    return out


def build_facets(
    results, spec=True, limit: int = 5, buckets: int = 3
) -> Dict[str, List[Dict[str, Any]]]:
    """Value-count facets over the distinct rows of a result set.

    Numeric attributes get *buckets* equi-width ``lo..hi`` ranges;
    categorical ones the top-*limit* values by count (ties broken by
    value).  Keyed ``table.column``; attributes with no values in the
    results are omitted.
    """
    rows = _distinct_result_rows(results)
    facets: Dict[str, List[Dict[str, Any]]] = {}
    for table, column in _facet_attributes(rows, spec):
        values = [
            row.get(column)
            for row in rows
            if row.table.name == table and row.get(column) is not None
        ]
        if not values:
            continue
        numbers = [_as_float(v) for v in values]
        entries: List[Dict[str, Any]]
        if all(n is not None for n in numbers):
            lo, hi = min(numbers), max(numbers)
            if lo == hi:
                entries = [
                    {"value": f"{lo:g}", "count": len(numbers), "lo": lo, "hi": hi}
                ]
            else:
                width = (hi - lo) / buckets
                entries = []
                for i in range(buckets):
                    b_lo = lo + i * width
                    b_hi = hi if i == buckets - 1 else lo + (i + 1) * width
                    count = sum(
                        1
                        for n in numbers
                        if b_lo <= n < b_hi or (i == buckets - 1 and n == b_hi)
                    )
                    if count:
                        entries.append(
                            {
                                "value": f"{b_lo:g}..{b_hi:g}",
                                "count": count,
                                "lo": b_lo,
                                "hi": b_hi,
                            }
                        )
        else:
            counts: Dict[str, int] = {}
            for value in values:
                text = str(value)
                counts[text] = counts.get(text, 0) + 1
            top = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:limit]
            entries = [{"value": value, "count": count} for value, count in top]
        facets[f"{table}.{column}"] = entries
    return facets


# ----------------------------------------------------------------------
# Highlighting
# ----------------------------------------------------------------------
def _query_terms(query: StructuredQuery) -> List[str]:
    terms = [t.token for g in query.groups for t in g]
    for phrase in query.phrases:
        terms.extend(phrase.tokens)
    return list(dict.fromkeys(terms))


def highlight_snippet(
    text: str, terms: Sequence[str], window: int = 12, mark: str = "**"
) -> Tuple[str, int]:
    """Query-biased snippet of *text*: ``(snippet, matches)``.

    Picks the contiguous *window*-token span with the most query-term
    hits (earliest on ties) and wraps every matched token in *mark*.
    """
    tokens = text.split()
    lowered = [tokenize(tok) for tok in tokens]
    term_set = set(terms)
    hits = [
        1 if any(part in term_set for part in parts) else 0
        for parts in lowered
    ]
    if len(tokens) <= window:
        start, end = 0, len(tokens)
    else:
        best_start, best_score = 0, -1
        score = sum(hits[:window])
        best_score, best_start = score, 0
        for start in range(1, len(tokens) - window + 1):
            score += hits[start + window - 1] - hits[start - 1]
            if score > best_score:
                best_score, best_start = score, start
        start, end = best_start, best_start + window
    out = []
    matches = 0
    for i in range(start, end):
        if hits[i]:
            matches += 1
            out.append(f"{mark}{tokens[i]}{mark}")
        else:
            out.append(tokens[i])
    snippet = " ".join(out)
    if start > 0:
        snippet = "… " + snippet
    if end < len(tokens):
        snippet += " …"
    return snippet, matches


def build_highlights(
    results, query: StructuredQuery, window: int = 12
) -> List[Dict[str, Any]]:
    """One query-biased snippet per result (aligned by index)."""
    terms = _query_terms(query)
    out: List[Dict[str, Any]] = []
    for result in results:
        joined = getattr(result, "joined", None)
        if joined is None:
            out.append({"row": None, "snippet": "", "matches": 0})
            continue
        best: Optional[Dict[str, Any]] = None
        for row in joined.distinct_rows():
            text = row.text()
            if not text:
                continue
            snippet, matches = highlight_snippet(text, terms, window=window)
            entry = {
                "row": f"{row.table.name}:{row.rowid}",
                "snippet": snippet,
                "matches": matches,
            }
            if best is None or matches > best["matches"]:
                best = entry
        out.append(best or {"row": None, "snippet": "", "matches": 0})
    return out


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------
def execute_pipeline(
    front,
    text: str,
    k: int = 10,
    method: str = "schema",
    expand=None,
    facets=None,
    highlight: bool = False,
    facet_limit: int = 5,
    **search_kwargs,
) -> QueryResponse:
    """Parse → expand → search → facets/highlights, as one response.

    *front* is any engine with the ``search``/``search_structured``
    contract.  With every knob off this is exactly
    ``front.search(text, ...)`` plus the parsed query echo — bare
    queries stay byte-identical to legacy search.
    """
    engine = core_engine(front)
    query: StructuredQuery = engine._parse_canonical(text)
    knobs = parse_expand(expand)
    rewrites: List[Dict[str, Any]] = []
    if "spelling" in knobs and query.cleaned_from is not None:
        rewrites.append(
            {
                "kind": "spelling",
                "from": " ".join(query.cleaned_from),
                "to": " ".join(query.bare_keywords()),
            }
        )
    if "synonyms" in knobs:
        query, syn_rewrites = _expand_synonyms(engine, query)
        rewrites.extend(syn_rewrites)
    if "kpp" in knobs:
        query, kpp_rewrites = _expand_kpp(engine, query)
        rewrites.extend(kpp_rewrites)
    if hasattr(front, "search_structured"):
        results = front.search_structured(query, k=k, method=method, **search_kwargs)
    else:
        # Wrapper without the structured entry (e.g. DurableEngine):
        # fall back to text search; expansion rewrites require the
        # structured entry and were computed against the same canonical
        # parse, so this stays consistent when no rewrite happened.
        if query.cache_key() != engine._parse_canonical(text).cache_key():
            results = engine.search_structured(
                query, k=k, method=method, **search_kwargs
            )
        else:
            results = front.search(text, k=k, method=method, **search_kwargs)
    facet_payload = None
    if facets:
        facet_payload = build_facets(results, spec=facets, limit=facet_limit)
    highlight_payload = None
    if highlight:
        highlight_payload = build_highlights(results, query)
    return QueryResponse(
        query=query,
        results=results,
        rewrites=rewrites,
        facets=facet_payload,
        highlights=highlight_payload,
    )
