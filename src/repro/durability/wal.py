"""Append-only, segment-rotated write-ahead log for database mutations.

Every acknowledged mutation is encoded as one binary record::

    header  = <Q lsn> <I payload_len> <I crc32>     (16 bytes, little-endian)
    payload = compact JSON, utf-8

where the CRC covers ``payload + lsn`` so a record torn across a crash
— or relocated by a corrupted header — never replays.  LSNs are
assigned monotonically starting at 1 and never reused; the log is
organised as *segments* named ``wal-<first_lsn>.seg`` that rotate at a
configurable byte threshold, so snapshot-covered prefixes can be
dropped by unlinking whole files (:meth:`WriteAheadLog.prune`).

Durability is governed by the fsync policy:

``always``
    ``os.fsync`` after every append — an acknowledged append survives
    any crash.
``interval``
    flush on append, fsync every *fsync_interval* appends (and on
    rotation/close) — bounded loss window, much higher throughput.
``never``
    leave durability to the OS page cache — benchmark baseline.

Opening a log scans the tail segment and truncates any *torn tail*: a
trailing record whose header is short, whose payload is incomplete,
whose CRC mismatches, or whose LSN is out of sequence.  Everything
before the tear is kept, so recovery always resumes from a valid
prefix of the acknowledged history.

Chaos hooks (see :mod:`repro.resilience.failpoints`): ``wal.append``
fires *before* a record is written — when armed with an exception the
site simulates a kill mid-write by persisting only a prefix of the
record's bytes (a genuine torn tail) before raising; ``wal.fsync``
fires after the OS-level flush but before ``os.fsync``, simulating a
kill where the record may or may not have reached the platter.
"""

from __future__ import annotations

import json
import os
import struct
import time
import threading
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.resilience.failpoints import fail_point

#: lsn (uint64), payload length (uint32), crc32 (uint32).
_HEADER = struct.Struct("<QII")

#: Accepted fsync policies.
FSYNC_POLICIES = ("always", "interval", "never")

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"


class WalCorruptionError(RuntimeError):
    """A WAL segment failed validation mid-stream (not at the tail)."""


def _segment_name(first_lsn: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_lsn:016d}{_SEGMENT_SUFFIX}"


def _segment_first_lsn(name: str) -> Optional[int]:
    if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
        return None
    digits = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    try:
        return int(digits)
    except ValueError:
        return None


def _record_crc(lsn: int, payload: bytes) -> int:
    return zlib.crc32(payload + lsn.to_bytes(8, "little")) & 0xFFFFFFFF


def encode_record(lsn: int, record: Dict[str, object]) -> bytes:
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    return _HEADER.pack(lsn, len(payload), _record_crc(lsn, payload)) + payload


@dataclass(frozen=True)
class WalRecord:
    """One decoded log entry."""

    lsn: int
    record: Dict[str, object]


def _scan_segment(
    path: str, expect_lsn: Optional[int] = None
) -> Tuple[List[WalRecord], int, Optional[str]]:
    """Decode *path*; returns (records, valid_byte_prefix, tear_reason).

    Stops at the first invalid record.  ``tear_reason`` is ``None`` for
    a clean segment, otherwise a human-readable description of the tear
    (used both by tail truncation and by replay's clean stop).
    """
    records: List[WalRecord] = []
    offset = 0
    with open(path, "rb") as handle:
        data = handle.read()
    size = len(data)
    while offset < size:
        if size - offset < _HEADER.size:
            return records, offset, "short header"
        lsn, length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        if size - start < length:
            return records, offset, "short payload"
        payload = data[start:start + length]
        if _record_crc(lsn, payload) != crc:
            return records, offset, f"crc mismatch at lsn {lsn}"
        if expect_lsn is not None and lsn != expect_lsn:
            return records, offset, f"lsn {lsn} out of sequence (expected {expect_lsn})"
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return records, offset, f"undecodable payload at lsn {lsn}"
        records.append(WalRecord(lsn, record))
        offset = start + length
        if expect_lsn is not None:
            expect_lsn = lsn + 1
    return records, offset, None


class WriteAheadLog:
    """Durable mutation log over a directory of rotating segments."""

    def __init__(
        self,
        directory: str,
        fsync: str = "always",
        fsync_interval: int = 64,
        segment_max_bytes: int = 1 << 20,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r} (choices: {', '.join(FSYNC_POLICIES)})"
            )
        if fsync_interval < 1:
            raise ValueError(f"fsync_interval must be >= 1, got {fsync_interval}")
        self.directory = directory
        self.fsync_policy = fsync
        self.fsync_interval = fsync_interval
        self.segment_max_bytes = segment_max_bytes
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._file = None
        self._segment_size = 0
        self._dirty = 0
        #: Bytes truncated from the tail segment on open (0 = clean).
        self.truncated_bytes = 0
        self.truncated_reason: Optional[str] = None
        os.makedirs(directory, exist_ok=True)
        self._open_tail()

    # ------------------------------------------------------------------
    # Opening / torn-tail repair
    # ------------------------------------------------------------------
    def _segments(self) -> List[Tuple[int, str]]:
        """Sorted (first_lsn, path) pairs for every on-disk segment."""
        out = []
        for name in os.listdir(self.directory):
            first = _segment_first_lsn(name)
            if first is not None:
                out.append((first, os.path.join(self.directory, name)))
        out.sort()
        return out

    def _open_tail(self) -> None:
        segments = self._segments()
        if not segments:
            self._next_lsn = 1
            self._start_segment(1)
            return
        first_lsn, tail_path = segments[-1]
        records, valid_bytes, reason = _scan_segment(tail_path, expect_lsn=first_lsn)
        actual = os.path.getsize(tail_path)
        if reason is not None and actual > valid_bytes:
            # Torn tail: keep the valid prefix, drop the tear.
            self.truncated_bytes = actual - valid_bytes
            self.truncated_reason = reason
            with open(tail_path, "r+b") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        self._next_lsn = (records[-1].lsn + 1) if records else first_lsn
        if records or self.truncated_bytes:
            # Reuse the tail segment in append mode.
            self._file = open(tail_path, "ab")
            self._segment_size = valid_bytes
        else:
            self._file = open(tail_path, "ab")
            self._segment_size = 0

    def _start_segment(self, first_lsn: int) -> None:
        if self._file is not None:
            self._fsync_current()
            self._file.close()
        path = os.path.join(self.directory, _segment_name(first_lsn))
        self._file = open(path, "ab")
        self._segment_size = 0

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    @property
    def last_lsn(self) -> int:
        """LSN of the newest acknowledged record (0 = empty log)."""
        with self._lock:
            return self._next_lsn - 1

    def append(self, record: Dict[str, object], sync: bool = True) -> int:
        """Append one record; returns its LSN.

        With ``sync=False`` the policy-driven fsync is deferred — batch
        writers append N records and call :meth:`sync` once.
        """
        with self._lock:
            return self._append_locked(record, sync)

    def append_many(self, records: List[Dict[str, object]]) -> List[int]:
        """Append a batch with a single policy-driven fsync at the end."""
        with self._lock:
            lsns = [self._append_locked(r, sync=False) for r in records]
            self._maybe_fsync(force_always=True)
            return lsns

    def _append_locked(self, record: Dict[str, object], sync: bool) -> int:
        lsn = self._next_lsn
        data = encode_record(lsn, record)
        if self._segment_size and self._segment_size + len(data) > self.segment_max_bytes:
            self._start_segment(lsn)
        start_s = time.perf_counter()
        try:
            fail_point("wal.append", key=record.get("table"))
        except BaseException:
            # Simulate a kill mid-write: a prefix of the record reaches
            # the disk and the process dies.  The torn bytes are what
            # the next open's tail truncation must repair.
            self._file.write(data[: max(1, len(data) // 2)])
            self._file.flush()
            raise
        self._file.write(data)
        self._segment_size += len(data)
        self._next_lsn = lsn + 1
        self._dirty += 1
        if sync:
            self._maybe_fsync(force_always=True)
        self.metrics.observe(
            "wal.append_ms", (time.perf_counter() - start_s) * 1000.0
        )
        self.metrics.inc("wal.appends")
        return lsn

    def _maybe_fsync(self, force_always: bool = False) -> None:
        if self.fsync_policy == "never":
            self._file.flush()
            self._dirty = 0
            return
        if self.fsync_policy == "always" and force_always:
            self._fsync_current()
            return
        if self.fsync_policy == "interval" and self._dirty >= self.fsync_interval:
            self._fsync_current()
            return
        self._file.flush()

    def _fsync_current(self) -> None:
        self._file.flush()
        # Chaos hook *after* the user-space flush, *before* the OS-level
        # fsync: a kill here leaves the record's durability undecided.
        fail_point("wal.fsync")
        os.fsync(self._file.fileno())
        self._dirty = 0
        self.metrics.inc("wal.fsyncs")

    def sync(self) -> None:
        """Force an fsync regardless of policy (checkpoint barrier)."""
        with self._lock:
            self._fsync_current()

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                if self.fsync_policy != "never":
                    self._fsync_current()
                else:
                    self._file.flush()
                self._file.close()
                self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Replay / pruning
    # ------------------------------------------------------------------
    def replay(self, after_lsn: int = 0) -> Iterator[WalRecord]:
        """Yield records with ``lsn > after_lsn`` in order.

        Stops cleanly at the first invalid record (short/corrupt/out of
        sequence) — everything before the tear is yielded, nothing after
        it.  The stop reason is recorded on :attr:`replay_stopped`.
        """
        self.replay_stopped: Optional[str] = None
        expect: Optional[int] = None
        for first_lsn, path in self._segments():
            records, _, reason = _scan_segment(
                path, expect_lsn=first_lsn if expect is None else expect
            )
            for rec in records:
                if rec.lsn > after_lsn:
                    yield rec
            if reason is not None:
                self.replay_stopped = reason
                return
            expect = (records[-1].lsn + 1) if records else first_lsn

    def prune(self, through_lsn: int) -> int:
        """Drop whole segments entirely covered by ``lsn <= through_lsn``.

        Called after a snapshot commits at *through_lsn*; returns the
        number of segments unlinked.  The active tail segment is never
        removed.
        """
        with self._lock:
            segments = self._segments()
            removed = 0
            for i, (first_lsn, path) in enumerate(segments):
                next_first = (
                    segments[i + 1][0] if i + 1 < len(segments) else None
                )
                if next_first is None:
                    break  # tail segment stays
                if next_first - 1 <= through_lsn:
                    os.unlink(path)
                    removed += 1
                else:
                    break
            if removed:
                self.metrics.inc("wal.segments_pruned", removed)
            return removed

    def stats(self) -> Dict[str, object]:
        segments = self._segments()
        return {
            "segments": len(segments),
            "last_lsn": self.last_lsn,
            "bytes": sum(os.path.getsize(p) for _, p in segments),
            "fsync_policy": self.fsync_policy,
            "truncated_bytes": self.truncated_bytes,
        }

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.directory!r}, last_lsn={self.last_lsn}, "
            f"fsync={self.fsync_policy!r})"
        )
