"""Durability: write-ahead log, atomic snapshots, verified recovery.

The robustness layer that lets a killed process come back with search
results byte-identical to the pre-crash engine:

* :mod:`repro.durability.wal` — append-only segment-rotated mutation
  log (per-record CRC32, monotonic LSNs, configurable fsync policy,
  torn-tail truncation on open);
* :mod:`repro.durability.snapshot` — atomic point-in-time snapshots
  (write-temp + fsync + rename, checksummed manifests, retention);
* :mod:`repro.durability.recovery` — newest-valid-snapshot load + WAL
  suffix replay through the incremental ``refresh()`` path;
* :mod:`repro.durability.verify` — the ``fsck`` audit of postings,
  cache stamps, FK integrity and shard ownership;
* :mod:`repro.durability.manager` — :class:`DurableEngine`, the
  validate -> log -> apply -> refresh mutation front end.
"""

from repro.durability.manager import DurableEngine
from repro.durability.recovery import (
    RecoveryError,
    RecoveryResult,
    recover,
    recover_engine,
)
from repro.durability.snapshot import SnapshotInfo, SnapshotStore
from repro.durability.verify import FsckReport, fsck
from repro.durability.wal import WalRecord, WriteAheadLog

__all__ = [
    "DurableEngine",
    "FsckReport",
    "RecoveryError",
    "RecoveryResult",
    "SnapshotInfo",
    "SnapshotStore",
    "WalRecord",
    "WriteAheadLog",
    "fsck",
    "recover",
    "recover_engine",
]
