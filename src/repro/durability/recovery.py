"""Crash recovery: newest valid snapshot + WAL suffix replay.

``recover`` rebuilds a :class:`Database` from a durability directory
(as laid out by :class:`~repro.durability.manager.DurableEngine`):

1. load the newest snapshot whose checksum validates (corrupt or
   uncommitted snapshots fall back to the next-older one);
2. open the WAL — torn-tail truncation happens here — and replay every
   record with ``lsn`` past the snapshot's covered LSN through
   :meth:`Database.insert` / :meth:`Database.insert_many`, stopping
   cleanly at the first bad-CRC record;
3. with no snapshot at all, bootstrap an empty database from the WAL's
   leading ``bootstrap`` record (which carries the schema).

``recover_engine`` additionally wraps the recovered database in a
:class:`KeywordSearchEngine` whose inverted index is built over the
*snapshot* state and then patched forward through the incremental
``refresh()`` path (PR 4) while the WAL suffix replays — so recovery
exercises exactly the maintenance machinery live inserts use, and the
recovered engine's search results are byte-identical to an engine that
never crashed.

Every recovery emits a span tree (``recover -> snapshot_load ->
wal_open -> replay -> refresh``) and the ``recovery.replayed`` /
``recovery.ms`` metrics.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Trace, Tracer, span as trace_span
from repro.relational.database import Database
from repro.durability.snapshot import SnapshotStore, schema_from_dict
from repro.durability.wal import WriteAheadLog

#: Sub-directories of a durability root.
WAL_SUBDIR = "wal"
SNAPSHOT_SUBDIR = "snapshots"


class RecoveryError(RuntimeError):
    """The durability directory holds no recoverable state."""


@dataclass
class RecoveryResult:
    """What a recovery pass found and rebuilt."""

    db: Database
    last_lsn: int
    snapshot_lsn: int
    replayed: int
    #: Why replay stopped early (``None`` = clean end of log).
    stopped: Optional[str] = None
    #: Bytes dropped by torn-tail truncation on WAL open.
    truncated_bytes: int = 0
    elapsed_ms: float = 0.0
    trace: Optional[Trace] = None

    def summary(self) -> str:
        parts = [
            f"snapshot lsn={self.snapshot_lsn}",
            f"replayed {self.replayed} records",
            f"last lsn={self.last_lsn}",
        ]
        if self.truncated_bytes:
            parts.append(f"truncated {self.truncated_bytes} torn bytes")
        if self.stopped:
            parts.append(f"replay stopped: {self.stopped}")
        return ", ".join(parts)


def _apply_record(db: Database, record: Dict[str, object]) -> int:
    """Apply one WAL record to *db*; returns rows applied."""
    op = record.get("op")
    if op == "bootstrap":
        return 0
    if op == "insert":
        db.insert(str(record["table"]), check_fk=False, **record["values"])
        return 1
    if op == "insert_many":
        applied = db.insert_many(
            str(record["table"]), record["records"], check_fk=False
        )
        return len(applied)
    raise RecoveryError(f"unknown WAL op {op!r}")


def recover(
    root_dir: str,
    metrics: Optional[MetricsRegistry] = None,
    trace: bool = True,
    wal: Optional[WriteAheadLog] = None,
    snapshots: Optional[SnapshotStore] = None,
    refresh_hook=None,
) -> RecoveryResult:
    """Rebuild the database state persisted under *root_dir*.

    *refresh_hook*, when given, is called (inside the ``refresh`` span)
    after the WAL suffix is applied — :func:`recover_engine` passes the
    engine's incremental-maintenance entry point here.
    """
    metrics = metrics if metrics is not None else MetricsRegistry()
    tracer = Tracer() if trace else None
    start_s = time.perf_counter()
    with trace_span(tracer, "recover") as root:
        with trace_span(tracer, "snapshot_load") as ssp:
            store = snapshots or SnapshotStore(
                os.path.join(root_dir, SNAPSHOT_SUBDIR), metrics=metrics
            )
            info = store.latest()
            if info is not None:
                db, snapshot_lsn = store.load(info)
                ssp.tag("lsn", snapshot_lsn).add("rows", db.size())
            else:
                db, snapshot_lsn = None, 0
                ssp.tag("lsn", None)
        with trace_span(tracer, "wal_open") as wsp:
            log = wal or WriteAheadLog(
                os.path.join(root_dir, WAL_SUBDIR), metrics=metrics
            )
            wsp.add("truncated_bytes", log.truncated_bytes)
            if log.truncated_reason:
                wsp.tag("truncated", log.truncated_reason)
        replayed = 0
        last_lsn = snapshot_lsn
        with trace_span(tracer, "replay") as rsp:
            for entry in log.replay(after_lsn=snapshot_lsn):
                record = entry.record
                if db is None:
                    if record.get("op") != "bootstrap":
                        raise RecoveryError(
                            "no snapshot and the WAL does not start with a "
                            "bootstrap record"
                        )
                    db = Database(schema_from_dict(record["schema"]))
                else:
                    replayed += _apply_record(db, record)
                last_lsn = entry.lsn
            stopped = getattr(log, "replay_stopped", None)
            rsp.add("records", replayed)
            if stopped:
                rsp.tag("stopped", stopped)
        if db is None:
            if wal is None:
                log.close()
            raise RecoveryError(f"nothing to recover under {root_dir!r}")
        with trace_span(tracer, "refresh") as fsp:
            if refresh_hook is not None:
                refresh_hook()
                fsp.tag("applied", True)
        root.add("replayed", replayed)
    if wal is None:
        log.close()
    elapsed_ms = (time.perf_counter() - start_s) * 1000.0
    metrics.inc("recovery.replayed", replayed)
    metrics.observe("recovery.ms", elapsed_ms)
    return RecoveryResult(
        db=db,
        last_lsn=last_lsn,
        snapshot_lsn=snapshot_lsn,
        replayed=replayed,
        stopped=stopped,
        truncated_bytes=log.truncated_bytes,
        elapsed_ms=elapsed_ms,
        trace=tracer.finish() if tracer is not None else None,
    )


def recover_engine(
    root_dir: str,
    metrics: Optional[MetricsRegistry] = None,
    trace: bool = True,
    **engine_kwargs,
):
    """Recover and serve: returns ``(engine, RecoveryResult)``.

    The engine's inverted index is built over the snapshot state before
    the WAL suffix applies, so the replayed rows flow through the same
    incremental ``refresh()`` path live inserts use; the final
    ``_sync_version`` call patches the index/tuple-set substrates in
    place.  Search results afterwards are byte-identical to a fresh
    engine over the same logical contents (the PR 4 refresh-parity
    guarantee).
    """
    from repro.core.engine import KeywordSearchEngine

    metrics = metrics if metrics is not None else MetricsRegistry()
    store = SnapshotStore(
        os.path.join(root_dir, SNAPSHOT_SUBDIR), metrics=metrics
    )
    log = WriteAheadLog(os.path.join(root_dir, WAL_SUBDIR), metrics=metrics)
    engine_box: List[object] = []

    info = store.latest()
    if info is not None:
        db, _ = store.load(info)
        engine = KeywordSearchEngine(db, metrics=metrics, **engine_kwargs)
        engine.index  # build over the snapshot state, pre-replay
        engine_box.append(engine)

    def refresh_hook() -> None:
        if engine_box:
            engine_box[0]._sync_version()

    # recover() re-loads the snapshot into the same engine-held database
    # object when one exists: pass the engine's db through so replay
    # mutates the copy the engine indexes.
    result = recover(
        root_dir,
        metrics=metrics,
        trace=trace,
        wal=log,
        snapshots=_FixedDbStore(store, engine_box[0].db) if engine_box else store,
        refresh_hook=refresh_hook,
    )
    log.close()
    if not engine_box:
        engine = KeywordSearchEngine(result.db, metrics=metrics, **engine_kwargs)
        engine.index
        engine._sync_version()
    else:
        engine = engine_box[0]
    return engine, result


class _FixedDbStore:
    """Snapshot-store facade that serves one pre-loaded database.

    :func:`recover_engine` loads the snapshot *before* constructing the
    engine (the index must see the pre-replay state); this adapter lets
    :func:`recover` replay onto that same object instead of loading a
    second copy.
    """

    def __init__(self, store: SnapshotStore, db: Database):
        self._store = store
        self._db = db

    def latest(self):
        return self._store.latest()

    def load(self, info):
        return self._db, info.lsn
