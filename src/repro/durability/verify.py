"""``fsck``: cross-check the engine's derived state against the store.

Recovery claims exactness; ``fsck`` is the audit that backs the claim.
It walks four invariants and reports every violation (an empty report
is the pass condition the chaos tests gate on):

1. **Postings <-> tuple store.**  Every inverted-index posting points at
   a live row whose tokenized text actually contains the token, and —
   the reverse direction — every token of every text row appears in the
   index's matching set for that tuple.  Document counts and per-token
   document frequencies must agree with the matching sets.
2. **Cache version stamps.**  The substrate cache and the engine's
   served-version watermark must equal ``Database.data_version`` (a
   stale stamp means a cache could serve pre-mutation results).
3. **FK integrity** via :meth:`Database.validate` — the
   previously-unused integrity scan, now load-bearing.
4. **Shard ownership** against a :class:`ShardSet`: homes must match the
   partitioner's assignment, be mutually disjoint, and cover every
   tuple; every shard-held row must exist in the source database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.index.inverted import InvertedIndex
from repro.index.text import tokenize
from repro.relational.database import Database, TupleId


@dataclass
class FsckReport:
    """Outcome of one verification pass."""

    problems: List[str] = field(default_factory=list)
    #: How many items each check examined (visibility that fsck ran).
    checked: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.problems

    def add(self, problem: str) -> None:
        self.problems.append(problem)

    def summary(self) -> str:
        coverage = ", ".join(
            f"{name}={count}" for name, count in sorted(self.checked.items())
        )
        status = "ok" if self.ok else f"{len(self.problems)} problem(s)"
        return f"fsck {status} ({coverage})"


def _check_index(db: Database, index: InvertedIndex, report: FsckReport) -> None:
    """Postings vs tuple store, both directions, plus df/doc-count."""
    postings_seen = 0
    for token in index.vocabulary:
        matching = index.matching_tuples_view(token)
        if index.document_frequency(token) != len(set(matching)):
            report.add(
                f"index: df({token!r})={index.document_frequency(token)} != "
                f"{len(set(matching))} distinct matching tuples"
            )
        for posting in index.postings(token):
            postings_seen += 1
            tid = posting.tid
            if tid.table not in db.tables:
                report.add(f"index: posting {token!r}->{tid} names unknown table")
                continue
            table = db.table(tid.table)
            if not 0 <= tid.rowid < len(table):
                report.add(f"index: posting {token!r}->{tid} past end of table")
                continue
            row = table.row(tid.rowid)
            value = row.get(posting.column)
            tokens = set(tokenize(str(value))) if value is not None else set()
            if token not in tokens:
                report.add(
                    f"index: posting {token!r}->{tid}.{posting.column} "
                    "not present in stored text"
                )
    report.checked["postings"] = postings_seen

    rows_checked = 0
    for table in db.tables.values():
        text_cols = table.schema.text_columns
        if not text_cols:
            continue
        for row in table.rows():
            rows_checked += 1
            tid = TupleId(table.name, row.rowid)
            for token in set(tokenize(row.text(text_cols))):
                if tid not in index.matching_tuples_view(token):
                    report.add(
                        f"store: {tid} contains {token!r} but is missing "
                        "from its posting list"
                    )
    report.checked["text_rows"] = rows_checked
    if index.document_count != rows_checked:
        report.add(
            f"index: document_count={index.document_count} != "
            f"{rows_checked} text rows in store"
        )


def _check_versions(engine, report: FsckReport) -> None:
    version = engine.db.data_version
    stamped = engine.substrates.stats()["version"]
    if stamped != version:
        report.add(
            f"cache: substrate version stamp {stamped} != data_version {version}"
        )
    served = getattr(engine, "_served_version", version)
    if served != version:
        report.add(
            f"cache: engine served version {served} != data_version {version}"
        )
    report.checked["version_stamps"] = 2


def _check_shards(db: Database, shards, report: FsckReport) -> None:
    """Shard ownership vs the partitioner assignment and the store."""
    tuples_checked = 0
    owned: Dict[TupleId, int] = {}
    for shard in shards.shards:
        for tid in shard.home:
            if tid in owned:
                report.add(
                    f"shards: {tid} home-owned by both shard {owned[tid]} "
                    f"and shard {shard.shard_id}"
                )
            owned[tid] = shard.shard_id
        for tid in set(shard.home) | set(shard.replicas):
            tuples_checked += 1
            if tid.table not in db.tables or not (
                0 <= tid.rowid < len(db.table(tid.table))
            ):
                report.add(
                    f"shards: shard {shard.shard_id} holds {tid} which is "
                    "not in the source database"
                )
    for tid in db.all_tuple_ids():
        home = shards.home(tid)
        if owned.get(tid) != home:
            report.add(
                f"shards: {tid} assigned home {home} but owned by "
                f"{owned.get(tid)}"
            )
    report.checked["shard_tuples"] = tuples_checked


def fsck(
    engine=None,
    *,
    db: Optional[Database] = None,
    index: Optional[InvertedIndex] = None,
    shards=None,
) -> FsckReport:
    """Verify derived state against the tuple store.

    Pass a :class:`KeywordSearchEngine` or
    :class:`~repro.sharding.coordinator.ShardedSearchEngine` (its
    database, index, cache stamps — and shard set, for the sharded
    engine — are all checked), or pass *db* / *index* / *shards*
    explicitly for lower-level audits.
    """
    report = FsckReport()
    if engine is not None:
        shards = shards if shards is not None else getattr(engine, "shards", None)
        # The sharded coordinator fronts an inner single-node engine.
        inner = getattr(engine, "engine", engine)
        db = inner.db
        index = inner.index
        _check_versions(inner, report)
    if db is None:
        raise ValueError("fsck needs an engine or a database")
    problems = db.validate()
    for problem in problems:
        report.add(f"fk: {problem}")
    report.checked["fk_rows"] = db.size()
    if index is not None:
        _check_index(db, index, report)
    if shards is not None:
        _check_shards(db, shards, report)
    return report
