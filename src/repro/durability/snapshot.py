"""Atomic point-in-time snapshots of a :class:`Database`.

A snapshot is two files in the snapshot directory:

``snapshot-<lsn>.json``
    the data file — schema plus every table's rows in rowid order
    (rowids are positional, so loading re-inserts in order and every
    :class:`~repro.relational.database.TupleId` survives byte-for-byte);
``manifest-<lsn>.json``
    the commit record — sha256 of the data file, per-table row counts
    and the WAL LSN the snapshot covers.

Both are written with the classic atomic pattern: write to a ``.tmp``
path, flush, ``os.fsync``, rename.  The **manifest rename is the commit
point** — a crash before it leaves an orphan data file that recovery
ignores (and the next snapshot cleans up); a crash after it leaves a
fully valid snapshot.  The ``snapshot.commit`` failpoint fires between
the data file landing and the manifest rename, which is exactly the
kill-mid-rename window the chaos tests exercise.

``load`` re-creates the database by rebuilding the schema and replaying
rows through :meth:`Table.apply`-equivalent inserts with FK checks off
(the snapshot was taken from a validated database; ``fsck`` re-checks
after recovery).  Retention keeps the newest *retain* committed
snapshots and unlinks the rest.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.relational.database import Database
from repro.relational.schema import Column, ForeignKey, Schema, TableSchema
from repro.resilience.failpoints import fail_point
from repro.storage.rowcodec import decode_table, encode_table

SNAPSHOT_FORMAT = 1

#: Row payload codecs: "json" spells rows out as JSON lists (the
#: original layout); "packed" stores each table column-major through
#: :mod:`repro.storage.rowcodec` (typed varints + zlib + base64), which
#: tracks the columnar backends' compact footprint instead of
#: re-JSONifying every value.  ``load`` auto-detects per table, so
#: snapshots of either codec (or mixed history in one directory)
#: always restore.
ROW_CODECS = ("json", "packed")


# ----------------------------------------------------------------------
# Schema <-> JSON
# ----------------------------------------------------------------------
def schema_to_dict(schema: Schema) -> Dict[str, object]:
    return {
        "tables": [
            {
                "name": tbl.name,
                "primary_key": tbl.primary_key,
                "columns": [
                    {
                        "name": c.name,
                        "dtype": c.dtype,
                        "nullable": c.nullable,
                        "text": c.text,
                    }
                    for c in tbl.columns
                ],
                "foreign_keys": [
                    {
                        "column": fk.column,
                        "ref_table": fk.ref_table,
                        "ref_column": fk.ref_column,
                    }
                    for fk in tbl.foreign_keys
                ],
            }
            for tbl in schema
        ]
    }


def schema_from_dict(data: Dict[str, object]) -> Schema:
    tables = []
    for tbl in data["tables"]:
        tables.append(
            TableSchema(
                tbl["name"],
                tuple(
                    Column(c["name"], c["dtype"], c["nullable"], c["text"])
                    for c in tbl["columns"]
                ),
                tbl["primary_key"],
                tuple(
                    ForeignKey(fk["column"], fk["ref_table"], fk["ref_column"])
                    for fk in tbl["foreign_keys"]
                ),
            )
        )
    return Schema(tables)


@dataclass(frozen=True)
class SnapshotInfo:
    """A committed snapshot's identity, as read from its manifest."""

    lsn: int
    data_path: str
    manifest_path: str
    sha256: str
    rows: int


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _atomic_write(path: str, data: bytes) -> None:
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.rename(tmp, path)


class SnapshotStore:
    """Write, list, validate and load snapshots in one directory."""

    def __init__(
        self,
        directory: str,
        retain: int = 3,
        metrics: Optional[MetricsRegistry] = None,
        row_codec: str = "json",
    ):
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        if row_codec not in ROW_CODECS:
            raise ValueError(
                f"unknown row_codec {row_codec!r} (choices: {ROW_CODECS})"
            )
        self.directory = directory
        self.retain = retain
        self.row_codec = row_codec
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def write(self, db: Database, lsn: int) -> SnapshotInfo:
        """Atomically snapshot *db* as covering WAL position *lsn*."""
        start_s = time.perf_counter()
        if self.row_codec == "packed":
            tables: Dict[str, object] = {
                name: {
                    "codec": "packed",
                    "rows": len(table),
                    "data": encode_table([row.values for row in table.rows()]),
                }
                for name, table in db.tables.items()
            }
        else:
            tables = {
                name: [list(row.values) for row in table.rows()]
                for name, table in db.tables.items()
            }
        payload = {
            "format": SNAPSHOT_FORMAT,
            "lsn": lsn,
            "schema": schema_to_dict(db.schema),
            "tables": tables,
        }
        data = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode(
            "utf-8"
        )
        data_path = os.path.join(self.directory, f"snapshot-{lsn:016d}.json")
        manifest_path = os.path.join(self.directory, f"manifest-{lsn:016d}.json")
        _atomic_write(data_path, data)
        sha = hashlib.sha256(data).hexdigest()
        manifest = {
            "format": SNAPSHOT_FORMAT,
            "lsn": lsn,
            "data_file": os.path.basename(data_path),
            "sha256": sha,
            "rows": db.size(),
            "tables": {name: len(table) for name, table in db.tables.items()},
        }
        manifest_bytes = json.dumps(
            manifest, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        # The commit point: a crash before the manifest rename leaves an
        # uncommitted (ignored) data file, a crash after it a valid
        # snapshot.  The failpoint sits exactly in that window.
        tmp = manifest_path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(manifest_bytes)
            handle.flush()
            os.fsync(handle.fileno())
        fail_point("snapshot.commit", key=lsn)
        os.rename(tmp, manifest_path)
        self.metrics.observe(
            "snapshot.build_ms", (time.perf_counter() - start_s) * 1000.0
        )
        self.metrics.inc("snapshot.commits")
        self._apply_retention()
        return SnapshotInfo(lsn, data_path, manifest_path, sha, manifest["rows"])

    def _apply_retention(self) -> None:
        committed = self._committed()
        for info in committed[: -self.retain]:
            # Manifest first: once it is gone the data file is a
            # harmless orphan even if we crash between the unlinks.
            for path in (info.manifest_path, info.data_path):
                try:
                    os.unlink(path)
                except OSError:
                    pass
        # Clean orphans: data/tmp files no committed manifest points at.
        keep = {
            os.path.basename(info.data_path) for info in committed[-self.retain:]
        }
        for name in os.listdir(self.directory):
            path = os.path.join(self.directory, name)
            if name.endswith(".tmp"):
                os.unlink(path)
            elif name.startswith("snapshot-") and name not in keep:
                os.unlink(path)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _committed(self) -> List[SnapshotInfo]:
        """All committed snapshots, oldest first (no checksum validation)."""
        infos = []
        for name in sorted(os.listdir(self.directory)):
            if not (name.startswith("manifest-") and name.endswith(".json")):
                continue
            manifest_path = os.path.join(self.directory, name)
            try:
                with open(manifest_path, "r", encoding="utf-8") as handle:
                    manifest = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            infos.append(
                SnapshotInfo(
                    int(manifest["lsn"]),
                    os.path.join(self.directory, manifest["data_file"]),
                    manifest_path,
                    manifest["sha256"],
                    int(manifest["rows"]),
                )
            )
        infos.sort(key=lambda info: info.lsn)
        return infos

    def list(self) -> List[SnapshotInfo]:
        return self._committed()

    def validate(self, info: SnapshotInfo) -> bool:
        """True if the snapshot's data file matches its manifest checksum."""
        try:
            return _sha256_file(info.data_path) == info.sha256
        except OSError:
            return False

    def latest(self) -> Optional[SnapshotInfo]:
        """Newest snapshot that passes checksum validation.

        Corrupt or half-written snapshots are skipped, falling back to
        the next-older committed snapshot (recovery then replays a
        longer WAL suffix instead of failing).
        """
        for info in reversed(self._committed()):
            if self.validate(info):
                return info
            self.metrics.inc("snapshot.invalid_skipped")
        return None

    def load(self, info: SnapshotInfo) -> Tuple[Database, int]:
        """Rebuild the database a snapshot captured; returns (db, lsn).

        Rows are re-inserted per table in rowid order with FK checks
        off, so rowids — and therefore every TupleId in search results
        — are identical to the snapshotted database's.
        """
        with open(info.data_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("format") != SNAPSHOT_FORMAT:
            raise ValueError(
                f"unsupported snapshot format {payload.get('format')!r}"
            )
        schema = schema_from_dict(payload["schema"])
        db = Database(schema)
        columns = {
            tbl.name: tbl.column_names for tbl in schema
        }
        for name in db.tables:
            stored = payload["tables"].get(name, ())
            if isinstance(stored, dict):  # packed codec (auto-detected)
                rows = decode_table(stored["data"])
                if len(rows) != int(stored.get("rows", len(rows))):
                    raise ValueError(
                        f"packed table {name!r} row count mismatch"
                    )
            else:
                rows = stored
            for values in rows:
                db.insert(
                    name,
                    check_fk=False,
                    **dict(zip(columns[name], values)),
                )
        return db, int(payload["lsn"])

    def __repr__(self) -> str:
        committed = self._committed()
        newest = committed[-1].lsn if committed else None
        return (
            f"SnapshotStore({self.directory!r}, {len(committed)} committed, "
            f"newest lsn={newest})"
        )
