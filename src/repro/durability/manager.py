"""`DurableEngine`: log-before-apply mutations over a serving engine.

Wraps either a :class:`KeywordSearchEngine` or a
:class:`~repro.sharding.coordinator.ShardedSearchEngine` and a
durability root directory (``<root>/wal`` + ``<root>/snapshots``)::

    engine = DurableEngine(KeywordSearchEngine(db), "/var/lib/repro")
    engine.insert("author", aid=7, name="ada lovelace")   # durable
    engine.snapshot()                                     # checkpoint
    ...
    engine, result = DurableEngine.recover("/var/lib/repro")

Mutations follow the WAL discipline:

1. **validate** — :meth:`Database.check_insert` runs every column, PK
   and FK check *without* applying, so the log never records an insert
   that cannot replay (replay runs with FK checks off);
2. **log** — the mutation is appended (and, per the fsync policy,
   made durable) to the WAL;
3. **apply** — the row is stored and the serving engine's incremental
   maintenance runs: ``_sync_version`` patches the single engine's
   substrates in place, while the sharded coordinator's ``refresh()``
   routes the new row to its home shard and boundary replicas.

A fresh directory over a non-empty database bootstraps itself: the
schema is logged as the WAL's first record and an initial snapshot
captures the pre-existing rows, so recovery never depends on state
that predates the log.

``snapshot()`` checkpoints at the current last LSN and prunes WAL
segments the snapshot fully covers; ``fsck()`` runs the
:mod:`repro.durability.verify` audit over the wrapped engine.

Mutations and snapshots are serialized by one re-entrant lock.
Without it a snapshot racing an insert can capture the new *row* while
stamping a covered LSN *below* the insert's WAL record — recovery then
replays the record on top of the snapshotted row and dies on a
duplicate primary key.  The lock makes every snapshot a consistent
cut: rows and covered LSN always agree.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.durability.recovery import (
    RecoveryResult,
    SNAPSHOT_SUBDIR,
    WAL_SUBDIR,
    recover_engine,
)
from repro.durability.snapshot import SnapshotInfo, SnapshotStore, schema_to_dict
from repro.durability.verify import FsckReport, fsck
from repro.durability.wal import WriteAheadLog
from repro.obs.metrics import MetricsRegistry
from repro.relational.database import TupleId


class DurableEngine:
    """Write-ahead-logged mutations + snapshots for a serving engine."""

    def __init__(
        self,
        engine,
        root_dir: str,
        fsync: str = "always",
        fsync_interval: int = 64,
        segment_max_bytes: int = 1 << 20,
        retain_snapshots: int = 3,
        bootstrap_snapshot: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.engine = engine
        self.db = engine.db
        self.root_dir = root_dir
        #: Serializes mutations against snapshots (see module docstring).
        #: Re-entrant so bootstrap (``__init__`` -> ``snapshot``) and
        #: callers holding it for compound operations still work.
        self.mutation_lock = threading.RLock()
        self.metrics = (
            metrics
            if metrics is not None
            else getattr(engine, "metrics", None) or MetricsRegistry()
        )
        fresh = not os.path.isdir(os.path.join(root_dir, WAL_SUBDIR))
        self.wal = WriteAheadLog(
            os.path.join(root_dir, WAL_SUBDIR),
            fsync=fsync,
            fsync_interval=fsync_interval,
            segment_max_bytes=segment_max_bytes,
            metrics=self.metrics,
        )
        # Compact-substrate engines get the packed row codec so snapshot
        # size tracks the columnar footprint instead of re-JSONifying
        # every row; load() auto-detects, so mixed histories restore.
        backend_name = getattr(engine, "backend_name", "dict")
        self.snapshots = SnapshotStore(
            os.path.join(root_dir, SNAPSHOT_SUBDIR),
            retain=retain_snapshots,
            metrics=self.metrics,
            row_codec="packed" if backend_name in ("columnar", "disk") else "json",
        )
        if fresh and self.wal.last_lsn == 0:
            # First open: anchor the log with the schema so recovery
            # with no snapshot still knows the world's shape, then
            # checkpoint any rows that predate the log.
            self.wal.append(
                {"op": "bootstrap", "schema": schema_to_dict(self.db.schema)}
            )
            if bootstrap_snapshot and self.db.size():
                self.snapshot()

    # ------------------------------------------------------------------
    # Durable mutation path (validate -> log -> apply -> refresh)
    # ------------------------------------------------------------------
    def insert(self, table: str, **values: object) -> TupleId:
        """Durably insert one row; acknowledged means recoverable."""
        with self.mutation_lock:
            self.db.check_insert(table, values)
            self.wal.append({"op": "insert", "table": table, "values": values})
            tid = self.db.insert(table, check_fk=False, **values)
            self._refresh()
            return tid

    def insert_many(
        self, table: str, records: Iterable[Dict[str, object]]
    ) -> List[TupleId]:
        """Durable atomic batch: one WAL record, one fsync, one refresh."""
        batch = [dict(record) for record in records]
        with self.mutation_lock:
            # Atomic pre-validation mirrors Database.insert_many, including
            # FK references to rows earlier in the same batch.
            tbl = self.db.table(table)
            pending: set = set()
            for values in batch:
                record = tbl.prepare(values, pending_pks=pending)
                self.db._check_fks(table, values, pending_self_pks=pending)
                pending.add(record[tbl.pk_index])
            self.wal.append(
                {"op": "insert_many", "table": table, "records": batch}
            )
            tids = self.db.insert_many(table, batch, check_fk=False)
            self._refresh()
            return tids

    def _refresh(self) -> None:
        """Run the engine's incremental maintenance for the new rows."""
        refresh = getattr(self.engine, "refresh", None)
        if refresh is not None:
            # Sharded coordinator: route the rows to their home shards
            # (plus boundary replicas) and drop stale result caches.
            refresh()
        else:
            self.engine._sync_version()

    # ------------------------------------------------------------------
    # Serving passthrough
    # ------------------------------------------------------------------
    def search(self, *args, **kwargs):
        return self.engine.search(*args, **kwargs)

    def search_structured(self, *args, **kwargs):
        return self.engine.search_structured(*args, **kwargs)

    def search_many(self, *args, **kwargs):
        return self.engine.search_many(*args, **kwargs)

    # ------------------------------------------------------------------
    # Checkpointing / verification
    # ------------------------------------------------------------------
    def snapshot(self) -> SnapshotInfo:
        """Checkpoint the database at the current WAL position.

        The WAL is fsynced first so the snapshot's covered LSN is
        durable, then segments the snapshot fully covers are pruned.
        Holds the mutation lock for the whole cut so the row iteration
        and the covered LSN describe the same instant.
        """
        with self.mutation_lock:
            self.wal.sync()
            info = self.snapshots.write(self.db, self.wal.last_lsn)
            self.wal.prune(info.lsn)
            return info

    def fsck(self) -> FsckReport:
        """Audit derived state (index, caches, FKs, shard ownership)."""
        return fsck(self.engine)

    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "DurableEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        root_dir: str,
        fsync: str = "always",
        retain_snapshots: int = 3,
        metrics: Optional[MetricsRegistry] = None,
        trace: bool = True,
        shards: int = 1,
        partitioner: str = "hash",
        **engine_kwargs,
    ) -> Tuple["DurableEngine", RecoveryResult]:
        """Rebuild engine + durability layer after a crash.

        Loads the newest valid snapshot, replays the WAL suffix through
        the incremental refresh path and re-opens the log for new
        appends (truncating any torn tail).  With ``shards > 1`` the
        recovered database is re-partitioned into a
        :class:`~repro.sharding.coordinator.ShardedSearchEngine`.
        """
        metrics = metrics if metrics is not None else MetricsRegistry()
        engine, result = recover_engine(
            root_dir, metrics=metrics, trace=trace, **engine_kwargs
        )
        if shards > 1:
            from repro.sharding import ShardedSearchEngine

            engine = ShardedSearchEngine(
                engine.db,
                n_shards=shards,
                partitioner=partitioner,
                metrics=metrics,
                backend=engine_kwargs.get("backend", "dict"),
                backend_options=engine_kwargs.get("backend_options"),
            )
        durable = cls(
            engine,
            root_dir,
            fsync=fsync,
            retain_snapshots=retain_snapshots,
            bootstrap_snapshot=False,
            metrics=metrics,
        )
        return durable, result
