"""SPARK2 partition-graph pruning (Luo et al., TKDE; slide 135).

The *partition graph* captures how every CN can be obtained by joining
two smaller CNs (and possibly free tuple sets).  Its payoff: if a
sub-CN evaluates to an empty result, every CN containing it is empty
too and can be pruned without being evaluated — "allow pruning if one
sub-CN produces empty result".

``PartitionGraph`` indexes the connected sub-CNs of each CN by
canonical code; ``evaluate_with_pruning`` processes CNs smallest-first,
records empty canonical codes, and skips any CN containing a known
empty sub-CN, counting how many evaluations the pruning saved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.relational.executor import JoinedRow, JoinStats
from repro.schema_search.candidate_networks import CandidateNetwork
from repro.schema_search.evaluate import evaluate_cn
from repro.schema_search.tuple_sets import TupleSets


def connected_subnetworks(
    cn: CandidateNetwork, max_size: Optional[int] = None
) -> List[CandidateNetwork]:
    """All connected sub-CNs of *cn* (including itself).

    Enumerated by expanding connected node subsets; CN sizes are small
    (<= 7), so the subset count stays manageable.
    """
    adj = cn.adjacency()
    n = len(cn.nodes)
    limit = max_size if max_size is not None else n
    found: Dict[frozenset, None] = {}
    frontier: List[frozenset] = [frozenset([i]) for i in range(n)]
    for subset in frontier:
        found.setdefault(subset)
    while frontier:
        nxt = []
        for subset in frontier:
            if len(subset) >= limit:
                continue
            for node in subset:
                for nbr, __ in adj[node]:
                    if nbr in subset:
                        continue
                    grown = subset | {nbr}
                    if grown not in found:
                        found[grown] = None
                        nxt.append(grown)
        frontier = nxt
    out = []
    for subset in found:
        index_map = {old: new for new, old in enumerate(sorted(subset))}
        nodes = [cn.nodes[i] for i in sorted(subset)]
        edges = [
            (index_map[a], index_map[b], edge)
            for a, b, edge in cn.edges
            if a in subset and b in subset
        ]
        out.append(CandidateNetwork(nodes, edges))
    return out


class PartitionGraph:
    """Sub-CN containment index over a CN collection."""

    def __init__(self, cns: Sequence[CandidateNetwork]):
        self.cns = list(cns)
        # canonical code of sub-CN -> indices of CNs containing it
        self._containment: Dict[str, Set[int]] = {}
        self._sub_codes: List[Set[str]] = []
        for idx, cn in enumerate(self.cns):
            codes = {
                sub.canonical_code() for sub in connected_subnetworks(cn)
            }
            self._sub_codes.append(codes)
            for code in codes:
                self._containment.setdefault(code, set()).add(idx)

    def containing(self, code: str) -> Set[int]:
        return set(self._containment.get(code, ()))

    def sub_codes(self, cn_index: int) -> Set[str]:
        return set(self._sub_codes[cn_index])

    def shared_subexpressions(self) -> Dict[str, int]:
        """Sub-CN code -> number of CNs sharing it (the slide-135 graph)."""
        return {
            code: len(owners)
            for code, owners in self._containment.items()
            if len(owners) > 1
        }


@dataclass
class PruningOutcome:
    results: List[Tuple[CandidateNetwork, JoinedRow]]
    evaluated: int
    pruned: int
    stats: JoinStats


def evaluate_with_pruning(
    cns: Sequence[CandidateNetwork],
    tuple_sets: TupleSets,
) -> PruningOutcome:
    """Evaluate CNs smallest-first, pruning supersets of empty sub-CNs."""
    order = sorted(range(len(cns)), key=lambda i: (cns[i].size, cns[i].label()))
    graph = PartitionGraph(cns)
    empty_codes: Set[str] = set()
    stats = JoinStats()
    results: List[Tuple[CandidateNetwork, JoinedRow]] = []
    evaluated = 0
    pruned = 0
    for idx in order:
        cn = cns[idx]
        if graph.sub_codes(idx) & empty_codes:
            pruned += 1
            continue
        evaluated += 1
        produced = list(evaluate_cn(cn, tuple_sets, stats=stats))
        if produced:
            results.extend((cn, row) for row in produced)
        else:
            empty_codes.add(cn.canonical_code())
    return PruningOutcome(results, evaluated, pruned, stats)


def evaluate_without_pruning(
    cns: Sequence[CandidateNetwork],
    tuple_sets: TupleSets,
) -> PruningOutcome:
    """Baseline: evaluate every CN."""
    stats = JoinStats()
    results: List[Tuple[CandidateNetwork, JoinedRow]] = []
    for cn in cns:
        results.extend(
            (cn, row) for row in evaluate_cn(cn, tuple_sets, stats=stats)
        )
    return PruningOutcome(results, len(cns), 0, stats)
