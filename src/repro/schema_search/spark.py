"""SPARK top-k under a non-monotonic score (Luo et al., SIGMOD 07).

Slide 117: with the virtual-document score, per-tuple orderings no
longer give a monotonic result order, so DISCOVER2-style pipelines are
unsound.  SPARK instead enumerates *combinations* of tuples from the
CN's non-free tuple sets in descending order of a monotonic **upper
bound** (`uscore`, built from per-tuple watf scores), verifies each
combination by joining it through the free nodes, and stops when the
k-th verified score dominates every remaining bound.

* ``skyline_sweep`` — a priority queue over index vectors; only the
  dominance skyline of the combination lattice is ever resident.
* ``block_pipeline`` — partitions each sorted list into blocks, pops
  whole block-combinations by block-level bound, and sweeps inside a
  block only when its bound still matters — fewer queue operations and
  fewer verifications when scores are skewed.
* ``naive_enumerate`` — verify every combination (the baseline).

All three return identical top-k score multisets (tested); the
benchmark (E3) reports combinations verified and join probes.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.index.inverted import InvertedIndex
from repro.relational.database import TupleId
from repro.relational.executor import JoinedRow
from repro.relational.table import Row
from repro.schema_search.candidate_networks import CandidateNetwork
from repro.schema_search.scoring import spark_score, tuple_score
from repro.schema_search.tuple_sets import TupleSets

EPS = 1e-9


@dataclass
class SparkStats:
    combinations_verified: int = 0
    join_probes: int = 0
    queue_pops: int = 0

    def merge(self, other: "SparkStats") -> None:
        self.combinations_verified += other.combinations_verified
        self.join_probes += other.join_probes
        self.queue_pops += other.queue_pops


class _CNCombinations:
    """Combination space of one CN's non-free tuple sets."""

    def __init__(
        self,
        cn: CandidateNetwork,
        tuple_sets: TupleSets,
        index: InvertedIndex,
        keywords: Sequence[str],
    ):
        self.cn = cn
        self.tuple_sets = tuple_sets
        self.index = index
        self.keywords = list(keywords)
        self.norm = 1.0 / (1.0 + math.log(cn.size))
        self._adj = cn.adjacency()
        self.non_free = [i for i, n in enumerate(cn.nodes) if not n.is_free]
        self.free = [i for i, n in enumerate(cn.nodes) if n.is_free]
        self.lists: List[List[Tuple[float, TupleId]]] = []
        for i in self.non_free:
            tids = tuple_sets.tuple_ids(cn.nodes[i].key)
            scored = [(tuple_score(index, t, self.keywords), t) for t in tids]
            scored.sort(key=lambda pair: (-pair[0], pair[1]))
            self.lists.append(scored)
        self._free_maps: Dict[Tuple[int, str], Dict[object, List[Row]]] = {}
        for node_idx in self.free:
            rows = tuple_sets.rows(cn.nodes[node_idx].key)
            columns = set()
            for nbr, edge in self._adj[node_idx]:
                __, col = edge.join_columns(cn.nodes[nbr].table)
                columns.add(col)
            for column in columns:
                mapping: Dict[object, List[Row]] = {}
                for row in rows:
                    value = row[column]
                    if value is not None:
                        mapping.setdefault(value, []).append(row)
                self._free_maps[(node_idx, column)] = mapping

    # ------------------------------------------------------------------
    def uscore(self, vector: Tuple[int, ...]) -> float:
        """Monotonic upper bound of combinations at/under *vector*."""
        total = 0.0
        for list_idx, pos in enumerate(vector):
            if pos >= len(self.lists[list_idx]):
                return float("-inf")
            total += self.lists[list_idx][pos][0]
        return total * self.norm

    def empty(self) -> bool:
        return any(not lst for lst in self.lists)

    # ------------------------------------------------------------------
    def verify(
        self, vector: Tuple[int, ...], stats: SparkStats
    ) -> List[Tuple[float, JoinedRow]]:
        """Join-check the combination; return completed scored results."""
        stats.combinations_verified += 1
        fixed: Dict[int, Row] = {}
        for list_idx, pos in enumerate(vector):
            __, tid = self.lists[list_idx][pos]
            fixed[self.non_free[list_idx]] = self.tuple_sets.db.row(tid)
        assignments = self._complete(self.non_free[0], fixed, -1, stats)
        out = []
        for assignment in assignments:
            ordered = tuple(assignment[i] for i in range(self.cn.size))
            if len({(r.table.name, r.rowid) for r in ordered}) < len(ordered):
                continue
            aliases = tuple(f"n{i}" for i in range(self.cn.size))
            joined = JoinedRow(aliases, ordered)
            out.append((spark_score(self.index, joined, self.keywords), joined))
        return out

    def _complete(
        self,
        node_idx: int,
        fixed: Dict[int, Row],
        parent_idx: int,
        stats: SparkStats,
    ) -> List[Dict[int, Row]]:
        """Enumerate assignments for the subtree rooted at node_idx."""
        row = fixed.get(node_idx)
        if row is None:
            raise AssertionError("root of completion must be fixed")
        per_child: List[List[Dict[int, Row]]] = []
        for nbr, edge in self._adj[node_idx]:
            if nbr == parent_idx:
                continue
            left_col, right_col = edge.join_columns(self.cn.nodes[node_idx].table)
            stats.join_probes += 1
            value = row[left_col]
            if value is None:
                return []
            if nbr in fixed:
                if fixed[nbr][right_col] != value:
                    return []
                candidates = [fixed[nbr]]
            else:
                candidates = self._free_maps[(nbr, right_col)].get(value, [])
            sub: List[Dict[int, Row]] = []
            for cand in candidates:
                branch = dict(fixed)
                branch[nbr] = cand
                sub.extend(self._complete(nbr, branch, node_idx, stats))
            if not sub:
                return []
            per_child.append(sub)
        combos: List[Dict[int, Row]] = [{**fixed, node_idx: row}]
        for sub in per_child:
            merged = []
            for combo in combos:
                for branch in sub:
                    merged.append({**combo, **branch})
            combos = merged
        return combos


def _merge_topk(
    heap_items: List[Tuple[float, int, JoinedRow]], k: int
) -> List[Tuple[float, JoinedRow]]:
    heap_items.sort(key=lambda item: (-item[0], item[1]))
    return [(score, joined) for score, _, joined in heap_items[:k]]


def naive_enumerate(
    cns: Sequence[CandidateNetwork],
    tuple_sets: TupleSets,
    index: InvertedIndex,
    keywords: Sequence[str],
    k: int = 10,
    stats: Optional[SparkStats] = None,
) -> List[Tuple[float, JoinedRow]]:
    """Verify every combination of every CN (the E3 baseline)."""
    stats = stats if stats is not None else SparkStats()
    counter = itertools.count()
    collected: List[Tuple[float, int, JoinedRow]] = []
    for cn in cns:
        space = _CNCombinations(cn, tuple_sets, index, keywords)
        if space.empty():
            continue
        ranges = [range(len(lst)) for lst in space.lists]
        for vector in itertools.product(*ranges):
            for score, joined in space.verify(tuple(vector), stats):
                collected.append((score, next(counter), joined))
    return _merge_topk(collected, k)


def skyline_sweep(
    cns: Sequence[CandidateNetwork],
    tuple_sets: TupleSets,
    index: InvertedIndex,
    keywords: Sequence[str],
    k: int = 10,
    stats: Optional[SparkStats] = None,
) -> List[Tuple[float, JoinedRow]]:
    """Dominance-skyline enumeration in descending uscore order."""
    stats = stats if stats is not None else SparkStats()
    counter = itertools.count()
    collected: List[Tuple[float, int, JoinedRow]] = []
    kth = float("-inf")

    spaces = [
        _CNCombinations(cn, tuple_sets, index, keywords) for cn in cns
    ]
    spaces = [s for s in spaces if not s.empty()]
    # Global priority queue over (cn space, vector).
    pq: List[Tuple[float, int, int, Tuple[int, ...]]] = []
    seen: List[Set[Tuple[int, ...]]] = [set() for _ in spaces]
    for si, space in enumerate(spaces):
        start = tuple([0] * len(space.lists))
        seen[si].add(start)
        heapq.heappush(pq, (-space.uscore(start), next(counter), si, start))
    while pq:
        neg_bound, _, si, vector = heapq.heappop(pq)
        stats.queue_pops += 1
        bound = -neg_bound
        if len(collected) >= k and bound <= kth + EPS:
            break
        space = spaces[si]
        for item in space.verify(vector, stats):
            collected.append((item[0], next(counter), item[1]))
        if len(collected) >= k:
            kth = sorted((c[0] for c in collected), reverse=True)[k - 1]
        # Successors: advance one coordinate.
        for dim in range(len(vector)):
            succ = vector[:dim] + (vector[dim] + 1,) + vector[dim + 1 :]
            if succ[dim] >= len(space.lists[dim]) or succ in seen[si]:
                continue
            seen[si].add(succ)
            heapq.heappush(pq, (-space.uscore(succ), next(counter), si, succ))
    return _merge_topk(collected, k)


def block_pipeline(
    cns: Sequence[CandidateNetwork],
    tuple_sets: TupleSets,
    index: InvertedIndex,
    keywords: Sequence[str],
    k: int = 10,
    block_size: int = 4,
    stats: Optional[SparkStats] = None,
) -> List[Tuple[float, JoinedRow]]:
    """Block-at-a-time enumeration with block-level bounds."""
    stats = stats if stats is not None else SparkStats()
    counter = itertools.count()
    collected: List[Tuple[float, int, JoinedRow]] = []
    kth = float("-inf")

    spaces = [
        _CNCombinations(cn, tuple_sets, index, keywords) for cn in cns
    ]
    spaces = [s for s in spaces if not s.empty()]
    pq: List[Tuple[float, int, int, Tuple[int, ...]]] = []
    for si, space in enumerate(spaces):
        n_blocks = [
            (len(lst) + block_size - 1) // block_size for lst in space.lists
        ]
        for block_vec in itertools.product(*(range(nb) for nb in n_blocks)):
            # Block bound: uscore of the block's best corner.
            corner = tuple(b * block_size for b in block_vec)
            bound = space.uscore(corner)
            heapq.heappush(pq, (-bound, next(counter), si, block_vec))
    while pq:
        neg_bound, _, si, block_vec = heapq.heappop(pq)
        stats.queue_pops += 1
        bound = -neg_bound
        if len(collected) >= k and bound <= kth + EPS:
            break
        space = spaces[si]
        ranges = []
        for dim, block in enumerate(block_vec):
            lo = block * block_size
            hi = min(lo + block_size, len(space.lists[dim]))
            ranges.append(range(lo, hi))
        for vector in itertools.product(*ranges):
            for score, joined in space.verify(tuple(vector), stats):
                collected.append((score, next(counter), joined))
        if len(collected) >= k:
            kth = sorted((c[0] for c in collected), reverse=True)[k - 1]
    return _merge_topk(collected, k)
