"""Query tuple sets (DISCOVER, Hristidis & Papakonstantinou VLDB 02).

For query Q, each relation R is partitioned by the *exact* subset of
query keywords a tuple contains: ``R^K = { t in R : tokens(t) cap Q = K }``.
The exact-partition semantics guarantees that results produced by
different candidate networks are disjoint — the property DISCOVER's
duplicate-free enumeration relies on.  ``R^{}`` (the free tuple set) is
the whole relation, used for pure join nodes.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.index.inverted import InvertedIndex
from repro.relational.database import Database, TupleId
from repro.relational.table import Row


@dataclass(frozen=True)
class TupleSetKey:
    """Identity of a tuple set: relation + exact keyword subset."""

    table: str
    keywords: FrozenSet[str]

    @property
    def is_free(self) -> bool:
        return not self.keywords

    def label(self) -> str:
        if self.is_free:
            return self.table
        return f"{self.table}^{{{','.join(sorted(self.keywords))}}}"


class TupleSets:
    """All non-empty tuple sets of a query over a database."""

    def __init__(self, db: Database, index: InvertedIndex, keywords: Sequence[str]):
        self.db = db
        self.index = index
        self.keywords: Tuple[str, ...] = tuple(k.lower() for k in keywords)
        self._sets: Dict[TupleSetKey, List[TupleId]] = {}
        # Rowids matching >= 1 keyword, as an int bitset per table (bit
        # ``rowid`` set).  Rowids are dense 0-based insertion indexes, so
        # one arbitrary-precision int per table replaces a Set[int] at a
        # fraction of the memory, and free-set sizing is a popcount.
        self._matched_by_table: Dict[str, int] = {}
        # Rows classified so far per table (append-only data model);
        # refresh() patches membership for everything past this mark.
        self._row_counts: Dict[str, int] = {
            name: len(table) for name, table in db.tables.items()
        }
        self._build()

    def _build(self) -> None:
        query = set(self.keywords)
        # Tuples matching at least one keyword, with their exact subset.
        # The zero-copy posting view keeps this one pass over the
        # (already deduplicated) per-keyword tuple lists.
        by_tuple: Dict[TupleId, Set[str]] = {}
        for keyword in query:
            for tid in self.index.matching_tuples_view(keyword):
                by_tuple.setdefault(tid, set()).add(keyword)
        matched = self._matched_by_table
        for tid, subset in by_tuple.items():
            key = TupleSetKey(tid.table, frozenset(subset))
            self._sets.setdefault(key, []).append(tid)
            matched[tid.table] = matched.get(tid.table, 0) | (1 << tid.rowid)
        for tids in self._sets.values():
            tids.sort()

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def refresh(self) -> List[TupleSetKey]:
        """Patch membership for rows inserted since construction.

        Requires the inverted index to have been refreshed first (the
        classification reads ``index.contains_token``).  Each new row is
        placed into its exact-subset tuple set (order-preserving
        ``bisect.insort`` keeps parity with a from-scratch build); free
        sets need no patching because they are computed from table
        length minus the matched rowids recorded here.  Returns the
        tuple-set keys that newly came into existence — a non-empty
        return means the CN space may have changed; an empty one means
        every memoised CN list is still exact.
        """
        query = set(self.keywords)
        created: List[TupleSetKey] = []
        for name, table in self.db.tables.items():
            start = self._row_counts.get(name, 0)
            if len(table) <= start:
                continue
            for rowid in range(start, len(table)):
                tid = TupleId(name, rowid)
                subset = frozenset(
                    k for k in query if self.index.contains_token(tid, k)
                )
                if not subset:
                    continue
                key = TupleSetKey(name, subset)
                members = self._sets.get(key)
                if members is None:
                    members = self._sets[key] = []
                    created.append(key)
                bisect.insort(members, tid)
                self._matched_by_table[name] = (
                    self._matched_by_table.get(name, 0) | (1 << rowid)
                )
            self._row_counts[name] = len(table)
        return created

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def non_free_keys(self) -> List[TupleSetKey]:
        """All non-empty, non-free tuple-set identities, sorted by label."""
        return sorted(self._sets, key=lambda k: k.label())

    def keys_for_table(self, table: str) -> List[TupleSetKey]:
        return [k for k in self.non_free_keys() if k.table == table]

    def tuple_ids(self, key: TupleSetKey) -> List[TupleId]:
        """Members of a tuple set.

        The free set ``R^{}`` holds the tuples of R containing *no*
        query keyword — the complement of all non-free sets.  This is
        what makes results of different CNs pairwise disjoint (DISCOVER's
        exact-partition guarantee).
        """
        if key.is_free:
            matched = self._matched_by_table.get(key.table, 0)
            return [
                TupleId(key.table, rowid)
                for rowid in range(len(self.db.table(key.table)))
                if not (matched >> rowid) & 1
            ]
        return list(self._sets.get(key, ()))

    def rows(self, key: TupleSetKey) -> List[Row]:
        return [self.db.row(tid) for tid in self.tuple_ids(key)]

    def size(self, key: TupleSetKey) -> int:
        if key.is_free:
            matched = self._matched_by_table.get(key.table, 0)
            # bin().count is the 3.9-safe popcount (int.bit_count is 3.10+).
            return len(self.db.table(key.table)) - bin(matched).count("1")
        return len(self._sets.get(key, ()))

    def keyword_subsets(self, table: str) -> List[FrozenSet[str]]:
        """Non-empty exact keyword subsets available in *table*."""
        return [k.keywords for k in self.keys_for_table(table)]

    def covered_keywords(self) -> Set[str]:
        """Query keywords that match at least one tuple anywhere."""
        out: Set[str] = set()
        for key in self._sets:
            out |= key.keywords
        return out

    def __repr__(self) -> str:
        return (
            f"TupleSets(Q={list(self.keywords)}, "
            f"{len(self._sets)} non-free sets)"
        )
