"""Operator mesh for keyword search over relational streams
(Markowetz et al., SIGMOD 07; slide 134).

Setting: tuples *arrive over time* and no CN can be pruned — every CN
stays live, so the paper clusters the CNs' left-deep plans by common
prefixes into a mesh of shared operators.

This module implements the streaming core and the sharing accounting:

* :class:`OperatorMesh` registers every CN's plan prefix chain under
  canonical sub-CN codes — ``operator_count`` vs ``total_plan_steps``
  quantifies the structural sharing the mesh exploits (the slide-134
  "cluster these CNs to build the mesh");
* ``feed`` performs *incremental* evaluation: each arriving tuple only
  joins against previously arrived tuples, producing exactly the new
  complete results it enables (verified against batch CN evaluation in
  the tests), with join probes counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.index.text import tokenize
from repro.relational.table import Row
from repro.schema_search.candidate_networks import CandidateNetwork
from repro.schema_search.plans import bfs_join_order, prefix_codes
from repro.schema_search.tuple_sets import TupleSetKey


def _matches_tuple_set(row: Row, key: TupleSetKey, query: Sequence[str]) -> bool:
    """Streaming membership test for a tuple set (exact partition)."""
    if row.table.name != key.table:
        return False
    tokens = set(tokenize(row.text()))
    contained = frozenset(k for k in query if k in tokens)
    return contained == key.keywords


class OperatorMesh:
    """Shared streaming evaluation of many CNs."""

    def __init__(self, cns: Sequence[CandidateNetwork], query: Sequence[str]):
        self.cns = list(cns)
        self.query = [q.lower() for q in query]
        self.probe_count = 0
        self._arrived: Dict[str, List[Row]] = {}
        # Structural sharing: distinct prefix operators across all plans.
        self._operator_codes: Set[str] = set()
        self._plan_lengths: List[int] = []
        for cn in self.cns:
            chain = self._prefix_codes(cn)
            self._plan_lengths.append(len(chain))
            self._operator_codes.update(chain)
        # Adjacency cache per CN for incremental evaluation.
        self._adj = [cn.adjacency() for cn in self.cns]

    @staticmethod
    def _prefix_codes(cn: CandidateNetwork) -> List[str]:
        """Canonical code of each plan prefix (BFS order, as streamed)."""
        return prefix_codes(cn, bfs_join_order(cn))

    # ------------------------------------------------------------------
    # Sharing metrics (slide 134's point)
    # ------------------------------------------------------------------
    @property
    def operator_count(self) -> int:
        """Distinct operators in the mesh."""
        return len(self._operator_codes)

    def total_plan_steps(self) -> int:
        """Operators if every CN ran its own unshared plan."""
        return sum(self._plan_lengths)

    def sharing_ratio(self) -> float:
        total = self.total_plan_steps()
        return self.operator_count / total if total else 1.0

    # ------------------------------------------------------------------
    # Incremental streaming evaluation
    # ------------------------------------------------------------------
    def feed(self, row: Row) -> List[Tuple[int, Tuple[Row, ...]]]:
        """Process one arriving tuple.

        Returns the *new* complete results (cn index, rows by CN node
        position) that this arrival enables: assignments where the new
        tuple occupies at least one position and all other positions are
        filled from earlier arrivals.
        """
        self._arrived.setdefault(row.table.name, []).append(row)
        produced: List[Tuple[int, Tuple[Row, ...]]] = []
        for cn_index, cn in enumerate(self.cns):
            for position, node in enumerate(cn.nodes):
                if not _matches_tuple_set(row, node.key, self.query):
                    continue
                for assignment in self._complete(cn_index, {position: row}):
                    ordered = tuple(assignment[i] for i in range(cn.size))
                    seen = {(r.table.name, r.rowid) for r in ordered}
                    if len(seen) < len(ordered):
                        continue
                    # Keep only assignments where `row` is the *latest*
                    # arrival (avoids duplicates across positions when
                    # the same tuple could fill two positions).
                    produced.append((cn_index, ordered))
        return produced

    def _complete(
        self, cn_index: int, partial: Dict[int, Row]
    ) -> List[Dict[int, Row]]:
        cn = self.cns[cn_index]
        adj = self._adj[cn_index]
        n = cn.size
        if len(partial) == n:
            return [dict(partial)]
        # Next unassigned position adjacent to an assigned one.
        next_pos = None
        join_edge = None
        anchor = None
        for pos in partial:
            for nbr, edge in adj[pos]:
                if nbr not in partial:
                    next_pos, join_edge, anchor = nbr, edge, pos
                    break
            if next_pos is not None:
                break
        if next_pos is None:
            return []
        key = cn.nodes[next_pos].key
        anchor_row = partial[anchor]
        left_col, right_col = join_edge.join_columns(
            cn.nodes[anchor].table
        )
        value = anchor_row[left_col]
        out: List[Dict[int, Row]] = []
        if value is None:
            return []
        for candidate in self._arrived.get(key.table, ()):
            self.probe_count += 1
            if candidate[right_col] != value:
                continue
            if not _matches_tuple_set(candidate, key, self.query):
                continue
            # A candidate equal to an already-fed later row would double
            # count; the arrival list only holds fed tuples, so this is
            # exactly "join against the past".
            partial[next_pos] = candidate
            # Verify any other edges touching next_pos.
            if self._consistent(cn_index, partial):
                out.extend(self._complete(cn_index, partial))
            del partial[next_pos]
        return out

    def _consistent(self, cn_index: int, partial: Dict[int, Row]) -> bool:
        cn = self.cns[cn_index]
        for a, b, edge in cn.edges:
            if a in partial and b in partial:
                left_col, right_col = edge.join_columns(cn.nodes[a].table)
                if partial[a][left_col] != partial[b][right_col]:
                    return False
        return True
