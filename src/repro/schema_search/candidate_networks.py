"""Candidate network enumeration (slides 28, 115).

A candidate network (CN) is a tree whose nodes are tuple sets (non-free
``R^K`` or free ``R``) and whose edges are schema-graph join edges; it
is *valid* when the union of its keyword sets equals the query, every
leaf is non-free, and it is not degenerate (no node joins two neighbours
through the same foreign-key column of its own — such joins force both
neighbours to bind to the same tuple, duplicating a smaller CN).

Enumeration is breadth-first over partial trees with canonical-code
deduplication (Hristidis+ VLDB 02, duplicate-free per Markowetz+
SIGMOD 07): each partial tree is canonicalised as an unrooted labelled
tree (minimum rooted AHU code over its centroids), so isomorphic
partials are generated once.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.relational.schema_graph import SchemaEdge, SchemaGraph
from repro.resilience.budget import QueryBudget
from repro.resilience.errors import BudgetExceededError
from repro.schema_search.tuple_sets import TupleSetKey, TupleSets


@dataclass(frozen=True)
class CNNode:
    """One CN node: a tuple set occurrence."""

    key: TupleSetKey

    @property
    def table(self) -> str:
        return self.key.table

    @property
    def keywords(self) -> FrozenSet[str]:
        return self.key.keywords

    @property
    def is_free(self) -> bool:
        return self.key.is_free

    def label(self) -> str:
        return self.key.label()


class CandidateNetwork:
    """An (immutable once built) CN tree.

    ``nodes[i]`` is the i-th node; ``edges`` holds ``(a, b, schema_edge)``
    index pairs.  Node 0 is the construction root but the tree is
    semantically unrooted; equality and hashing use the canonical code.
    """

    def __init__(
        self,
        nodes: Sequence[CNNode],
        edges: Sequence[Tuple[int, int, SchemaEdge]],
    ):
        self.nodes: Tuple[CNNode, ...] = tuple(nodes)
        self.edges: Tuple[Tuple[int, int, SchemaEdge], ...] = tuple(edges)
        self._canonical: Optional[str] = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.nodes)

    def adjacency(self) -> Dict[int, List[Tuple[int, SchemaEdge]]]:
        adj: Dict[int, List[Tuple[int, SchemaEdge]]] = {
            i: [] for i in range(len(self.nodes))
        }
        for a, b, edge in self.edges:
            adj[a].append((b, edge))
            adj[b].append((a, edge))
        return adj

    def covered_keywords(self) -> FrozenSet[str]:
        out: Set[str] = set()
        for node in self.nodes:
            out |= node.keywords
        return frozenset(out)

    def leaves(self) -> List[int]:
        adj = self.adjacency()
        if len(self.nodes) == 1:
            return [0]
        return [i for i, nbrs in adj.items() if len(nbrs) == 1]

    def is_valid(self, query: Sequence[str]) -> bool:
        if self.covered_keywords() != frozenset(k.lower() for k in query):
            return False
        return all(not self.nodes[i].is_free for i in self.leaves())

    def label(self) -> str:
        """Readable linear label (slide-28 style for path CNs)."""
        adj = self.adjacency()
        if len(self.nodes) == 1:
            return self.nodes[0].label()
        # For path-shaped CNs, print the actual path; otherwise list nodes.
        leaves = self.leaves()
        if len(leaves) == 2 and all(len(v) <= 2 for v in adj.values()):
            order = [leaves[0]]
            prev = None
            while len(order) < len(self.nodes):
                current = order[-1]
                for nbr, _ in adj[current]:
                    if nbr != prev:
                        prev = current
                        order.append(nbr)
                        break
            return " - ".join(self.nodes[i].label() for i in order)
        return " + ".join(sorted(n.label() for n in self.nodes))

    # ------------------------------------------------------------------
    # Canonicalisation (unrooted AHU over centroids)
    # ------------------------------------------------------------------
    def canonical_code(self) -> str:
        if self._canonical is None:
            self._canonical = self._compute_canonical()
        return self._canonical

    def _edge_label(self, edge: SchemaEdge, child_table_is_fk_owner: bool) -> str:
        direction = "v" if child_table_is_fk_owner else "^"
        return f"{edge.child}.{edge.fk.column}{direction}"

    def _rooted_code(self, root: int, adj) -> str:
        def code(node: int, parent: int) -> str:
            children = []
            for nbr, edge in adj[node]:
                if nbr == parent:
                    continue
                owner_is_child = self.nodes[nbr].table == edge.child and (
                    self.nodes[node].table == edge.parent
                )
                # When both endpoints are the same table (self-joins via
                # e.g. cite), disambiguate by which index owns the FK: the
                # edge stores child/parent tables, so compare via position
                # in the original edge tuple.
                children.append(
                    self._edge_label(edge, owner_is_child) + code(nbr, node)
                )
            children.sort()
            return f"({self.nodes[node].label()}|{''.join(children)})"

        return code(root, -1)

    def _centroids(self, adj) -> List[int]:
        n = len(self.nodes)
        if n == 1:
            return [0]
        degree = {i: len(adj[i]) for i in range(n)}
        leaves = deque(i for i in range(n) if degree[i] <= 1)
        removed = 0
        layer: List[int] = list(leaves)
        while removed + len(layer) < n:
            removed += len(layer)
            nxt: List[int] = []
            for leaf in layer:
                degree[leaf] = 0
                for nbr, _ in adj[leaf]:
                    if degree[nbr] > 0:
                        degree[nbr] -= 1
                        if degree[nbr] == 1:
                            nxt.append(nbr)
            layer = nxt
        return layer

    def _compute_canonical(self) -> str:
        adj = self.adjacency()
        return min(self._rooted_code(c, adj) for c in self._centroids(adj))

    # ------------------------------------------------------------------
    # Degeneracy check (the same-FK duplication rule)
    # ------------------------------------------------------------------
    def has_degenerate_join(self) -> bool:
        """True if some node joins two neighbours via the same FK column.

        A node n that is the FK owner on two edges with the same column
        forces both neighbours to bind to the same tuple (n.fk = a.pk and
        n.fk = b.pk implies a = b), so the CN only yields duplicates of a
        smaller CN.
        """
        used: Dict[Tuple[int, str], int] = {}
        for a, b, edge in self.edges:
            for owner_idx, other_idx in ((a, b), (b, a)):
                node = self.nodes[owner_idx]
                other = self.nodes[other_idx]
                if node.table == edge.child and other.table == edge.parent:
                    key = (owner_idx, edge.fk.column)
                    used[key] = used.get(key, 0) + 1
                    if used[key] > 1:
                        return True
                    break
        return False

    # ------------------------------------------------------------------
    # Extension (used by the generator)
    # ------------------------------------------------------------------
    def extend(
        self, at: int, edge: SchemaEdge, new_key: TupleSetKey
    ) -> "CandidateNetwork":
        nodes = self.nodes + (CNNode(new_key),)
        edges = self.edges + ((at, len(self.nodes), edge),)
        return CandidateNetwork(nodes, edges)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CandidateNetwork)
            and self.canonical_code() == other.canonical_code()
        )

    def __hash__(self) -> int:
        return hash(self.canonical_code())

    def __repr__(self) -> str:
        return f"CN({self.label()})"


def generate_candidate_networks(
    schema_graph: SchemaGraph,
    tuple_sets: TupleSets,
    max_size: int = 5,
    max_networks: Optional[int] = None,
    budget: Optional[QueryBudget] = None,
) -> List[CandidateNetwork]:
    """Breadth-first, duplicate-free CN enumeration.

    Returns valid CNs ordered by (size, label).  ``max_networks`` caps
    the output (enumeration order makes the cap deterministic).  An
    exhausted *budget* truncates enumeration the same way — the CNs
    found so far are returned and the budget records why.
    """
    query = list(tuple_sets.keywords)
    if not query:
        return []
    if tuple_sets.covered_keywords() != set(query):
        # Some keyword matches nothing: AND semantics yields no CNs.
        return []

    seen: Set[str] = set()
    results: List[CandidateNetwork] = []
    queue: deque = deque()

    for key in tuple_sets.non_free_keys():
        cn = CandidateNetwork([CNNode(key)], [])
        code = cn.canonical_code()
        if code not in seen:
            seen.add(code)
            queue.append(cn)

    try:
        while queue:
            cn = queue.popleft()
            if budget is not None:
                budget.tick_cns()
            if cn.is_valid(query):
                results.append(cn)
                if max_networks is not None and len(results) >= max_networks:
                    break
            if cn.size >= max_size:
                continue
            for i, node in enumerate(cn.nodes):
                for nbr_table, edge in schema_graph.neighbors(node.table):
                    # Candidate keyword sets for the new node: free, or any
                    # non-empty exact subset available in the target table.
                    options: List[TupleSetKey] = [TupleSetKey(nbr_table, frozenset())]
                    options.extend(
                        TupleSetKey(nbr_table, subset)
                        for subset in tuple_sets.keyword_subsets(nbr_table)
                    )
                    for new_key in options:
                        extended = cn.extend(i, edge, new_key)
                        if extended.has_degenerate_join():
                            continue
                        code = extended.canonical_code()
                        if code in seen:
                            continue
                        seen.add(code)
                        queue.append(extended)
    except BudgetExceededError:
        pass  # partial enumeration; caller sees budget.exhausted

    results.sort(key=lambda c: (c.size, c.label()))
    return results
