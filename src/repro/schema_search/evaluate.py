"""CN evaluation: turning a candidate network into joined results.

A CN evaluates to its *minimal total joining networks of tuples*
(DISCOVER): assignments of one tuple per CN node such that every edge's
join predicate holds and no tuple occurs twice (a repeated tuple means
the result collapses into a smaller CN's result).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.relational.database import TupleId
from repro.relational.executor import JoinedRow, JoinStats, hash_join
from repro.relational.table import Row
from repro.resilience.budget import QueryBudget
from repro.resilience.errors import BudgetExceededError
from repro.schema_search.candidate_networks import CandidateNetwork
from repro.schema_search.tuple_sets import TupleSets


def _join_order(cn: CandidateNetwork) -> List[Tuple[int, Optional[int]]]:
    """BFS traversal: (node index, parent index or None for the root)."""
    adj = cn.adjacency()
    order: List[Tuple[int, Optional[int]]] = [(0, None)]
    visited = {0}
    frontier = [0]
    while frontier:
        nxt = []
        for node in frontier:
            for nbr, _ in adj[node]:
                if nbr not in visited:
                    visited.add(nbr)
                    order.append((nbr, node))
                    nxt.append(nbr)
        frontier = nxt
    return order


def _alias(i: int) -> str:
    return f"n{i}"


def evaluate_cn(
    cn: CandidateNetwork,
    tuple_sets: TupleSets,
    stats: Optional[JoinStats] = None,
    require_distinct: bool = True,
    budget: Optional[QueryBudget] = None,
) -> Iterator[JoinedRow]:
    """Stream the joining networks of tuples for *cn*.

    Joins are executed left-deep in BFS order with hash joins; the
    optional ``stats`` accumulates tuples read / joins executed (these
    counters are the cost proxy the E2/E3 benchmarks report).  Each
    emitted result charges *budget* one scored candidate; consumers
    that want partial-on-exhaustion semantics should use
    :func:`cn_results` / :func:`all_results`, which catch the raise.
    """
    adj = cn.adjacency()
    order = _join_order(cn)
    root_idx, _ = order[0]
    base_rows = tuple_sets.rows(cn.nodes[root_idx].key)
    if stats is not None:
        stats.tuples_read += len(base_rows)
    current: Iterator[JoinedRow] = (
        JoinedRow((_alias(root_idx),), (row,)) for row in base_rows
    )
    for node_idx, parent_idx in order[1:]:
        edge = next(e for nbr, e in adj[parent_idx] if nbr == node_idx)
        parent_table = cn.nodes[parent_idx].table
        left_col, right_col = edge.join_columns(parent_table)
        right_rows = tuple_sets.rows(cn.nodes[node_idx].key)
        current = hash_join(
            current,
            _alias(parent_idx),
            left_col,
            right_rows,
            _alias(node_idx),
            right_col,
            stats=stats,
        )
    for joined in current:
        if require_distinct and _has_repeated_tuple(joined):
            continue
        if budget is not None:
            budget.tick_candidates()
        yield joined


def _has_repeated_tuple(joined: JoinedRow) -> bool:
    seen: Set[Tuple[str, int]] = set()
    for row in joined.rows:
        key = (row.table.name, row.rowid)
        if key in seen:
            return True
        seen.add(key)
    return False


def cn_results(
    cn: CandidateNetwork,
    tuple_sets: TupleSets,
    stats: Optional[JoinStats] = None,
    budget: Optional[QueryBudget] = None,
) -> List[JoinedRow]:
    """Materialised results of one CN (partial if the budget runs out)."""
    out: List[JoinedRow] = []
    try:
        for joined in evaluate_cn(cn, tuple_sets, stats=stats, budget=budget):
            out.append(joined)
    except BudgetExceededError:
        pass
    return out


def result_tuple_ids(joined: JoinedRow) -> List[TupleId]:
    return [TupleId(row.table.name, row.rowid) for row in joined.rows]


def all_results(
    cns: Sequence[CandidateNetwork],
    tuple_sets: TupleSets,
    stats: Optional[JoinStats] = None,
    budget: Optional[QueryBudget] = None,
) -> List[Tuple[CandidateNetwork, JoinedRow]]:
    """Evaluate every CN; returns (cn, result) pairs (partial on budget)."""
    out: List[Tuple[CandidateNetwork, JoinedRow]] = []
    try:
        for cn in cns:
            for joined in evaluate_cn(cn, tuple_sets, stats=stats, budget=budget):
                out.append((cn, joined))
    except BudgetExceededError:
        pass
    return out
