"""CN evaluation: turning a candidate network into joined results.

A CN evaluates to its *minimal total joining networks of tuples*
(DISCOVER): assignments of one tuple per CN node such that every edge's
join predicate holds and no tuple occurs twice (a repeated tuple means
the result collapses into a smaller CN's result).

Two executors share the same semantics:

* :func:`evaluate_cn` — standalone evaluation of one CN.  The join
  order is cardinality-ordered (smallest tuple set first, see
  :func:`~repro.schema_search.plans.cardinality_join_order`) and the
  tuple sets are semi-join pre-filtered (a full reducer pass: leaf to
  root, then root to leaves) before any hash join runs, so tuples that
  cannot participate in a complete joining network never enter the
  pipeline.
* :class:`SharedCNEvaluator` — operator-level shared evaluation across
  the CNs of one query (slides 129-134).  Every materialised join
  prefix is stored once in a per-query subexpression cache keyed by its
  canonical sub-tree code; a later CN whose plan reaches an isomorphic
  partial is seeded from the widest cached intermediate instead of
  recomputing the joins (``JoinStats.reuse_hits`` / ``joins_saved``).
  Shared intermediates are computed *context-free* — no semi-join
  filtering against nodes outside the prefix — because a filtered
  intermediate would be wrong for the other CNs that reuse it.

Both emit results with aliases ``n0..n{size-1}`` in CN node-index
order regardless of the internal join order, so downstream consumers
(scoring, the operator mesh parity tests, result signatures) see a
stable shape.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.relational.database import TupleId
from repro.relational.executor import JoinedRow, JoinStats, hash_join
from repro.relational.table import Row
from repro.resilience.budget import QueryBudget
from repro.resilience.errors import BudgetExceededError, SearchExecutionError
from repro.schema_search.candidate_networks import CandidateNetwork
from repro.schema_search.plans import (
    JoinStep,
    cardinality_join_order,
    prefix_codes,
    prefix_identity,
)
from repro.schema_search.tuple_sets import TupleSets


def _alias(i: int) -> str:
    return f"n{i}"


def _node_order_aliases(n: int) -> Tuple[str, ...]:
    return tuple(f"n{i}" for i in range(n))


def _permutation(
    src: Tuple[str, ...], dst: Tuple[str, ...]
) -> Optional[Tuple[int, ...]]:
    """Index permutation mapping *src* alias order to *dst* (None = same).

    Every row of one join pipeline carries the same alias tuple, so the
    permutation is computed once per batch instead of per row (the
    per-row ``tuple.index`` lookups used to dominate the profile).
    """
    if src == dst:
        return None
    return tuple(src.index(a) for a in dst)


def _semijoin_reduce(
    cn: CandidateNetwork,
    steps: Sequence[JoinStep],
    tuple_sets: TupleSets,
    stats: Optional[JoinStats],
) -> Dict[int, List[Row]]:
    """Full semi-join reduction of the CN's tuple sets.

    Two passes over the join tree (children before parents, then
    parents before children) drop every tuple that cannot appear in any
    complete joining network — sound because removing a non-joining
    tuple never removes a result.  Null join keys are dropped like the
    hash join drops them (SQL semantics).  Runs only in the standalone
    path: a shared intermediate must stay context-free.
    """
    rows: Dict[int, List[Row]] = {
        step.node: tuple_sets.rows(cn.nodes[step.node].key) for step in steps
    }
    pruned = 0

    # Every row of one node's list comes from the same table, so the
    # column-name -> position lookup is resolved once per list and the
    # hot loops index straight into ``row.values`` (the per-row
    # ``Row.__getitem__`` dict probes used to dominate this reducer).
    def _values(node_rows: List[Row], column: str) -> Set[object]:
        if not node_rows:
            return set()
        idx = node_rows[0].table.column_index(column)
        out = {row.values[idx] for row in node_rows}
        out.discard(None)
        return out

    def _filter(node_rows: List[Row], column: str, allowed: Set[object]) -> List[Row]:
        if not node_rows:
            return node_rows
        idx = node_rows[0].table.column_index(column)
        return [row for row in node_rows if row.values[idx] in allowed]

    # Children before parents: each step's children steps come later in
    # the plan, so reversed order reduces a node only after all of its
    # subtrees have reduced it from below.
    for step in reversed(steps[1:]):
        parent_col, child_col = step.edge.join_columns(
            cn.nodes[step.parent].table
        )
        child_values = _values(rows[step.node], child_col)
        kept = _filter(rows[step.parent], parent_col, child_values)
        pruned += len(rows[step.parent]) - len(kept)
        rows[step.parent] = kept
    # Parents before children: push the fully reduced root back down.
    for step in steps[1:]:
        parent_col, child_col = step.edge.join_columns(
            cn.nodes[step.parent].table
        )
        parent_values = _values(rows[step.parent], parent_col)
        kept = _filter(rows[step.node], child_col, parent_values)
        pruned += len(rows[step.node]) - len(kept)
        rows[step.node] = kept
    if stats is not None:
        stats.semijoin_pruned += pruned
    return rows


def evaluate_cn(
    cn: CandidateNetwork,
    tuple_sets: TupleSets,
    stats: Optional[JoinStats] = None,
    require_distinct: bool = True,
    budget: Optional[QueryBudget] = None,
    semijoin: bool = True,
) -> Iterator[JoinedRow]:
    """Stream the joining networks of tuples for *cn*.

    Joins are executed left-deep in cardinality order with hash joins
    over semi-join-reduced tuple sets; the optional ``stats``
    accumulates tuples read / joins executed (these counters are the
    cost proxy the E2/E3 benchmarks report).  Each emitted result
    charges *budget* one scored candidate; consumers that want
    partial-on-exhaustion semantics should use :func:`cn_results` /
    :func:`all_results`, which catch the raise.  A malformed CN (wrong
    edge count, bad endpoints, disconnected) raises
    :class:`~repro.resilience.errors.SearchExecutionError` immediately.
    """
    steps = cardinality_join_order(cn, tuple_sets)
    if semijoin and len(steps) > 1:
        rows_by_node = _semijoin_reduce(cn, steps, tuple_sets, stats)
    else:
        rows_by_node = {
            step.node: tuple_sets.rows(cn.nodes[step.node].key)
            for step in steps
        }
    return _run_steps(cn, steps, rows_by_node, stats, require_distinct, budget)


def _run_steps(
    cn: CandidateNetwork,
    steps: Sequence[JoinStep],
    rows_by_node: Dict[int, List[Row]],
    stats: Optional[JoinStats],
    require_distinct: bool,
    budget: Optional[QueryBudget],
) -> Iterator[JoinedRow]:
    root = steps[0].node
    base_rows = rows_by_node[root]
    if stats is not None:
        stats.tuples_read += len(base_rows)
    current: Iterator[JoinedRow] = (
        JoinedRow((_alias(root),), (row,)) for row in base_rows
    )
    for step in steps[1:]:
        parent_col, child_col = step.edge.join_columns(
            cn.nodes[step.parent].table
        )
        current = hash_join(
            current,
            _alias(step.parent),
            parent_col,
            rows_by_node[step.node],
            _alias(step.node),
            child_col,
            stats=stats,
        )
    aliases = _node_order_aliases(cn.size)
    # Alias order after the chain is exactly the plan's step order.
    perm = _permutation(tuple(_alias(s.node) for s in steps), aliases)
    for joined in current:
        rows = joined.rows if perm is None else tuple(joined.rows[p] for p in perm)
        # Rows hash by (table, rowid), so a plain set spots repeats.
        if require_distinct and len(set(rows)) < len(rows):
            continue
        if budget is not None:
            budget.tick_candidates()
        yield joined if perm is None else JoinedRow(aliases, rows)


class SharedCNEvaluator:
    """Shared evaluation of many CNs with a subexpression cache.

    One instance serves one query (one :class:`TupleSets`): every join
    prefix it materialises is stored under the prefix's canonical code
    (:func:`~repro.schema_search.plans.prefix_identity`) as plain row
    tuples in canonical node order.  Evaluating a CN first probes the
    cache from the widest plan prefix down; a hit seeds the pipeline at
    that depth, skipping the joins below it.  The cache stores the rows
    position-indexed by the canonical traversal order, so a hit from an
    *isomorphic* prefix of a different CN maps cleanly onto this CN's
    node indices.

    Not thread-safe: parallel evaluation gives each worker its own
    evaluator (see :func:`~repro.schema_search.topk.topk_shared`).
    """

    def __init__(
        self,
        tuple_sets: TupleSets,
        stats: Optional[JoinStats] = None,
        require_distinct: bool = True,
        budget: Optional[QueryBudget] = None,
    ):
        self.tuple_sets = tuple_sets
        self.stats = stats if stats is not None else JoinStats()
        self.require_distinct = require_distinct
        self.budget = budget
        self._subexpressions: Dict[str, List[Tuple[Row, ...]]] = {}
        # When plan() has seen the CN list, only codes appearing in >1
        # plan are worth storing; None = store everything (safe default
        # for callers that feed CNs one at a time).
        self._shared_codes: Optional[Set[str]] = None

    @property
    def subexpression_count(self) -> int:
        return len(self._subexpressions)

    def plan(self, cns: Sequence[CandidateNetwork]) -> None:
        """Restrict the cache to prefixes shared by the coming CN list.

        Counts every plan-prefix code across *cns* so that
        :meth:`_evaluate` skips the (copy + store) cost for prefixes no
        other CN will ever reuse — the bulk of the evaluator's overhead
        on workloads with little sharing.  Malformed CNs are skipped
        here; they still raise when actually evaluated.
        """
        counts: Dict[str, int] = {}
        for cn in cns:
            try:
                steps = cardinality_join_order(cn, self.tuple_sets)
            except SearchExecutionError:
                continue
            for code in prefix_codes(cn, steps):
                counts[code] = counts.get(code, 0) + 1
        self._shared_codes = {code for code, n in counts.items() if n > 1}

    def evaluate(self, cn: CandidateNetwork) -> Iterator[JoinedRow]:
        """Results of *cn*, reusing/extending the subexpression cache.

        Validates the CN (raising ``SearchExecutionError`` when
        malformed) before any join work starts.
        """
        steps = cardinality_join_order(cn, self.tuple_sets)
        return self._evaluate(cn, steps)

    def _wants(self, code: str) -> bool:
        """Is *code* worth materialising into the subexpression cache?"""
        if code in self._subexpressions:
            return False
        return self._shared_codes is None or code in self._shared_codes

    def _evaluate(
        self, cn: CandidateNetwork, steps: Sequence[JoinStep]
    ) -> Iterator[JoinedRow]:
        stats = self.stats
        n = len(steps)
        identities = [
            prefix_identity(cn, steps[: length + 1]) for length in range(n)
        ]
        current: Iterator[JoinedRow]
        src_aliases: Tuple[str, ...]
        start = 0
        for length in range(n, 0, -1):
            code, order = identities[length - 1]
            cached = self._subexpressions.get(code)
            if cached is not None:
                src_aliases = tuple(_alias(i) for i in order)
                current = iter(
                    [JoinedRow(src_aliases, rows) for rows in cached]
                )
                stats.reuse_hits += 1
                stats.joins_saved += length - 1
                start = length
                break
        if start == 0:
            root = steps[0].node
            base_rows = self.tuple_sets.rows(cn.nodes[root].key)
            stats.tuples_read += len(base_rows)
            base_aliases = (_alias(root),)
            src_aliases = base_aliases
            if self._wants(identities[0][0]):
                seeds = [JoinedRow(base_aliases, (row,)) for row in base_rows]
                self._store(identities[0], seeds)
                current = iter(seeds)
            else:
                # Bind base_aliases, not src_aliases: the genexpr is
                # consumed lazily, after src_aliases has grown.
                current = (
                    JoinedRow(base_aliases, (row,)) for row in base_rows
                )
            start = 1
        for length in range(start, n):
            step = steps[length]
            parent_col, child_col = step.edge.join_columns(
                cn.nodes[step.parent].table
            )
            current = hash_join(
                current,
                _alias(step.parent),
                parent_col,
                self.tuple_sets.rows(cn.nodes[step.node].key),
                _alias(step.node),
                child_col,
                stats=stats,
            )
            src_aliases = src_aliases + (_alias(step.node),)
            if self.budget is not None:
                self.budget.tick_nodes()
            # Materialise only prefixes another plan will reuse; the
            # rest stream through lazily like the standalone executor.
            if self._wants(identities[length][0]):
                materialised = list(current)
                self._store(identities[length], materialised)
                current = iter(materialised)
        aliases = _node_order_aliases(cn.size)
        perm = _permutation(src_aliases, aliases)
        for joined in current:
            rows = (
                joined.rows if perm is None else tuple(joined.rows[p] for p in perm)
            )
            if self.require_distinct and len(set(rows)) < len(rows):
                continue
            if self.budget is not None:
                self.budget.tick_candidates()
            yield joined if perm is None else JoinedRow(aliases, rows)

    def _store(
        self, identity: Tuple[str, Tuple[int, ...]], rows: List[JoinedRow]
    ) -> None:
        code, order = identity
        if code in self._subexpressions:
            return
        if self._shared_codes is not None and code not in self._shared_codes:
            return  # no other plan reaches this prefix; don't pay the copy
        aliases = tuple(_alias(i) for i in order)
        if not rows:
            stored: List[Tuple[Row, ...]] = []
        else:
            perm = _permutation(rows[0].aliases, aliases)
            stored = (
                [joined.rows for joined in rows]  # zero-copy: tuples are shared
                if perm is None
                else [tuple(joined.rows[p] for p in perm) for joined in rows]
            )
        self._subexpressions[code] = stored
        self.stats.subexpressions_materialized += 1


def cn_results(
    cn: CandidateNetwork,
    tuple_sets: TupleSets,
    stats: Optional[JoinStats] = None,
    budget: Optional[QueryBudget] = None,
) -> List[JoinedRow]:
    """Materialised results of one CN (partial if the budget runs out)."""
    out: List[JoinedRow] = []
    try:
        for joined in evaluate_cn(cn, tuple_sets, stats=stats, budget=budget):
            out.append(joined)
    except BudgetExceededError:
        pass
    return out


def result_tuple_ids(joined: JoinedRow) -> List[TupleId]:
    return [TupleId(row.table.name, row.rowid) for row in joined.rows]


def all_results(
    cns: Sequence[CandidateNetwork],
    tuple_sets: TupleSets,
    stats: Optional[JoinStats] = None,
    budget: Optional[QueryBudget] = None,
) -> List[Tuple[CandidateNetwork, JoinedRow]]:
    """Evaluate every CN standalone; (cn, result) pairs (partial on budget)."""
    out: List[Tuple[CandidateNetwork, JoinedRow]] = []
    try:
        for cn in cns:
            for joined in evaluate_cn(cn, tuple_sets, stats=stats, budget=budget):
                out.append((cn, joined))
    except BudgetExceededError:
        pass
    return out


def all_results_shared(
    cns: Sequence[CandidateNetwork],
    tuple_sets: TupleSets,
    stats: Optional[JoinStats] = None,
    budget: Optional[QueryBudget] = None,
) -> List[Tuple[CandidateNetwork, JoinedRow]]:
    """Shared-execution counterpart of :func:`all_results`.

    Same results (up to order within a CN), fewer joins: one
    :class:`SharedCNEvaluator` carries materialised prefixes across the
    whole CN list.
    """
    evaluator = SharedCNEvaluator(tuple_sets, stats=stats, budget=budget)
    evaluator.plan(cns)
    out: List[Tuple[CandidateNetwork, JoinedRow]] = []
    try:
        for cn in cns:
            for joined in evaluator.evaluate(cn):
                out.append((cn, joined))
    except BudgetExceededError:
        pass
    return out
