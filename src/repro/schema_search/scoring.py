"""Result scoring for relational keyword search.

Two scoring regimes the tutorial contrasts (slides 116-117):

* a **monotonic** score — the sum of per-tuple TF·IDF contributions,
  mildly normalised by CN size.  Monotonicity (a result improves when
  any constituent tuple's score improves) is the precondition of the
  Naive/Sparse/Pipeline top-k strategies of DISCOVER2;

* the **SPARK** score (Luo et al., SIGMOD 07) — treats the whole joined
  tree as one *virtual document* (so term frequencies aggregate before
  the log-saturation), multiplied by a completeness factor and a size
  penalty.  This is non-monotonic: two mediocre tuples matching
  different keywords can beat one strong tuple matching one keyword —
  which is exactly why SPARK needs skyline-sweep / block-pipeline
  (:mod:`repro.schema_search.spark`).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

from repro.index.inverted import InvertedIndex
from repro.relational.database import TupleId
from repro.relational.executor import JoinedRow


def tuple_score(
    index: InvertedIndex, tid: TupleId, keywords: Sequence[str]
) -> float:
    """Per-tuple TF·IDF: sum over keywords of ln(1 + tf) * idf."""
    total = 0.0
    for keyword in keywords:
        tf = index.term_frequency(tid, keyword)
        if tf:
            total += math.log1p(tf) * index.idf(keyword)
    return total


def monotonic_result_score(
    index: InvertedIndex, joined: JoinedRow, keywords: Sequence[str]
) -> float:
    """Sum of tuple scores, normalised by result size (monotonic)."""
    total = 0.0
    for row in joined.rows:
        total += tuple_score(index, TupleId(row.table.name, row.rowid), keywords)
    return total / (1.0 + math.log(len(joined.rows)))


def virtual_document_tf(
    index: InvertedIndex, joined: JoinedRow, keyword: str
) -> int:
    """Aggregated term frequency of *keyword* over the joined tree."""
    return sum(
        index.term_frequency(TupleId(row.table.name, row.rowid), keyword)
        for row in joined.rows
    )


def spark_score(
    index: InvertedIndex,
    joined: JoinedRow,
    keywords: Sequence[str],
    completeness_power: float = 2.0,
) -> float:
    """SPARK's three-factor score: score_a * score_b * score_c.

    * score_a — TF·IDF of the virtual document,
    * score_b — completeness: (matched keyword fraction) ** p,
    * score_c — size penalty 1 / (1 + ln(size)).
    """
    matched = 0
    score_a = 0.0
    for keyword in keywords:
        tf = virtual_document_tf(index, joined, keyword)
        if tf:
            matched += 1
            score_a += math.log1p(tf) * index.idf(keyword)
    if matched == 0:
        return 0.0
    score_b = (matched / len(keywords)) ** completeness_power
    score_c = 1.0 / (1.0 + math.log(len(joined.rows)))
    return score_a * score_b * score_c


def spark_upper_bound(
    index: InvertedIndex,
    tuple_scores: Sequence[float],
    size: int,
) -> float:
    """Monotonic upper bound on the SPARK score of a combination.

    Uses the sub-additivity of ln(1 + x): the virtual-document factor is
    bounded by the sum of per-tuple factors; completeness <= 1.
    """
    score_c = 1.0 / (1.0 + math.log(size))
    return sum(tuple_scores) * score_c
