"""Top-k query processing strategies (DISCOVER2, Hristidis+ VLDB 03).

Slide 116 contrasts four strategies under a monotonic scoring function;
all four return the same top-k but touch very different amounts of data:

* **Naive** — evaluate every CN fully, sort, cut at k;
* **Sparse** — evaluate CNs in descending score-bound order, skipping
  any CN whose bound cannot beat the current k-th score;
* **Single pipeline** — additionally stop *inside* a CN once the bound
  of its unseen results drops below the k-th score;
* **Global pipeline** — interleave all CNs, always advancing the one
  with the highest remaining bound by one slice.

The execution slice is one *anchor tuple*: each CN executor orders the
tuples of its largest non-free node by descending TF·IDF score and, per
slice, joins one anchor tuple through the rest of the network with
index-nested-loop lookups (hash maps per node, built on first use and
charged to the statistics).
"""

from __future__ import annotations

import heapq
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.index.inverted import InvertedIndex
from repro.obs.trace import span as trace_span
from repro.relational.database import TupleId
from repro.relational.executor import JoinedRow, JoinStats
from repro.relational.table import Row
from repro.resilience.budget import QueryBudget
from repro.resilience.errors import BudgetExceededError
from repro.schema_search.candidate_networks import CandidateNetwork
from repro.schema_search.evaluate import SharedCNEvaluator
from repro.schema_search.scoring import monotonic_result_score, tuple_score
from repro.schema_search.tuple_sets import TupleSets

EPS = 1e-9


@dataclass
class TopKResult:
    """Outcome of one strategy run."""

    results: List[Tuple[float, str, JoinedRow]]
    stats: JoinStats
    cns_executed: int = 0
    batches: int = 0

    def scores(self) -> List[float]:
        return [round(score, 9) for score, _, _ in self.results]


def _build_cn_maps(
    cn: CandidateNetwork,
    adj,
    anchor: int,
    tuple_sets: TupleSets,
    stats: JoinStats,
) -> Dict[Tuple[int, str], Dict[object, List[Row]]]:
    """Per-node hash maps for index-nested-loop lookups off the anchor."""
    maps: Dict[Tuple[int, str], Dict[object, List[Row]]] = {}
    for node_idx, node in enumerate(cn.nodes):
        if node_idx == anchor:
            continue
        rows = tuple_sets.rows(node.key)
        stats.tuples_read += len(rows)
        columns = set()
        for nbr, edge in adj[node_idx]:
            __, right_col = edge.join_columns(cn.nodes[nbr].table)
            columns.add(right_col)
        for column in columns:
            mapping: Dict[object, List[Row]] = {}
            for row in rows:
                value = row[column]
                if value is not None:
                    mapping.setdefault(value, []).append(row)
            maps[(node_idx, column)] = mapping
    return maps


class CNExecutorPlan:
    """Query-level shared state of one CN's executors.

    The anchor choice, per-node score bounds, the scored anchor queue
    and the join hash maps depend only on (CN, tuple sets, keywords) —
    not on which executor advances them.  A sharded scatter builds this
    once at the coordinator and hands it to one :class:`CNExecutor` per
    shard, each holding only its own cursor over a home-filtered slice
    of the anchor queue; the maps materialise once, on first demand,
    and are probed read-only afterwards (safe across threads).
    """

    __slots__ = (
        "cn",
        "norm",
        "node_max",
        "anchor",
        "anchor_queue",
        "rest_max",
        "_maps",
        "_maps_lock",
    )

    def __init__(
        self,
        cn: CandidateNetwork,
        tuple_sets: TupleSets,
        index: InvertedIndex,
        keywords: Sequence[str],
    ):
        keywords = list(keywords)
        self.cn = cn
        self.norm = 1.0 / (1.0 + math.log(cn.size))
        # Per-node max tuple score (free nodes contribute 0).
        self.node_max: List[float] = []
        for node in cn.nodes:
            if node.is_free:
                self.node_max.append(0.0)
            else:
                tids = tuple_sets.tuple_ids(node.key)
                self.node_max.append(
                    max(
                        (tuple_score(index, t, keywords) for t in tids),
                        default=0.0,
                    )
                )
        # Anchor: the non-free node with the most tuples (finest slicing).
        non_free = [i for i, n in enumerate(cn.nodes) if not n.is_free]
        self.anchor = max(non_free, key=lambda i: tuple_sets.size(cn.nodes[i].key))
        anchor_tids = tuple_sets.tuple_ids(cn.nodes[self.anchor].key)
        scored = [(tuple_score(index, t, keywords), t) for t in anchor_tids]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        self.anchor_queue: List[Tuple[float, TupleId]] = scored
        self.rest_max = sum(
            s for i, s in enumerate(self.node_max) if i != self.anchor
        )
        self._maps: Optional[Dict[Tuple[int, str], Dict[object, List[Row]]]] = None
        self._maps_lock = threading.Lock()

    def maps(
        self, adj, tuple_sets: TupleSets, stats: JoinStats
    ) -> Dict[Tuple[int, str], Dict[object, List[Row]]]:
        """Build-once join maps; the building executor pays the stats."""
        with self._maps_lock:
            if self._maps is None:
                self._maps = _build_cn_maps(
                    self.cn, adj, self.anchor, tuple_sets, stats
                )
            return self._maps


class CNExecutor:
    """Sliced evaluation of one CN in descending score-bound order.

    ``shared`` reuses a prebuilt :class:`CNExecutorPlan` (anchor choice,
    bounds, scored queue, join maps) instead of recomputing them;
    ``anchor_filter`` restricts evaluation to the anchor tuples it
    accepts.  Both default off, leaving the single-engine path exactly
    as before; together they give a sharded scatter per-shard executors
    whose union of produced results equals (order aside) what one
    unfiltered executor produces — same join code, same rows, same
    float summation order.
    """

    def __init__(
        self,
        cn: CandidateNetwork,
        tuple_sets: TupleSets,
        index: InvertedIndex,
        keywords: Sequence[str],
        anchor_filter: Optional[Callable[[TupleId], bool]] = None,
        shared: Optional[CNExecutorPlan] = None,
    ):
        self.cn = cn
        self.tuple_sets = tuple_sets
        self.index = index
        self.keywords = list(keywords)
        self._adj = cn.adjacency()
        self._shared = shared
        if shared is None:
            self._norm = 1.0 / (1.0 + math.log(cn.size))
            # Per-node max tuple score (free nodes contribute 0).
            self._node_max: List[float] = []
            for node in cn.nodes:
                if node.is_free:
                    self._node_max.append(0.0)
                else:
                    tids = tuple_sets.tuple_ids(node.key)
                    self._node_max.append(
                        max(
                            (tuple_score(index, t, self.keywords) for t in tids),
                            default=0.0,
                        )
                    )
            # Anchor: the non-free node with the most tuples (finest slicing).
            non_free = [i for i, n in enumerate(cn.nodes) if not n.is_free]
            self.anchor = max(
                non_free, key=lambda i: tuple_sets.size(cn.nodes[i].key)
            )
            anchor_tids = tuple_sets.tuple_ids(cn.nodes[self.anchor].key)
            scored = [
                (tuple_score(index, t, self.keywords), t) for t in anchor_tids
            ]
            scored.sort(key=lambda pair: (-pair[0], pair[1]))
            self._rest_max = sum(
                s for i, s in enumerate(self._node_max) if i != self.anchor
            )
        else:
            self._norm = shared.norm
            self._node_max = shared.node_max
            self.anchor = shared.anchor
            self._rest_max = shared.rest_max
            scored = shared.anchor_queue
        if anchor_filter is not None:
            scored = [pair for pair in scored if anchor_filter(pair[1])]
        self._anchor_queue: List[Tuple[float, TupleId]] = scored
        self._cursor = 0
        self._maps: Optional[Dict[Tuple[int, str], Dict[object, List[Row]]]] = None

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def exhausted(self) -> bool:
        return self._cursor >= len(self._anchor_queue)

    def remaining(self) -> int:
        """Anchor tuples not yet evaluated (prunable work)."""
        return len(self._anchor_queue) - self._cursor

    def bound(self) -> float:
        """Upper bound on the score of any not-yet-produced result."""
        if self.exhausted():
            return float("-inf")
        anchor_score = self._anchor_queue[self._cursor][0]
        return (anchor_score + self._rest_max) * self._norm

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _build_maps(self, stats: JoinStats) -> None:
        if self._shared is not None:
            self._maps = self._shared.maps(self._adj, self.tuple_sets, stats)
            return
        self._maps = _build_cn_maps(
            self.cn, self._adj, self.anchor, self.tuple_sets, stats
        )

    def _assignments(
        self, node_idx: int, row: Row, parent_idx: int, stats: JoinStats
    ) -> List[Dict[int, Row]]:
        per_child: List[List[Dict[int, Row]]] = []
        for nbr, edge in self._adj[node_idx]:
            if nbr == parent_idx:
                continue
            left_col, right_col = edge.join_columns(self.cn.nodes[node_idx].table)
            stats.joins_executed += 1
            value = row[left_col]
            matches = (
                self._maps[(nbr, right_col)].get(value, [])  # type: ignore[index]
                if value is not None
                else []
            )
            stats.tuples_read += len(matches)
            sub: List[Dict[int, Row]] = []
            for match in matches:
                sub.extend(self._assignments(nbr, match, node_idx, stats))
            if not sub:
                return []
            per_child.append(sub)
        combos: List[Dict[int, Row]] = [{node_idx: row}]
        for sub in per_child:
            combos = [{**c, **s} for c in combos for s in sub]
        return combos

    def next_batch(self, stats: JoinStats) -> List[Tuple[float, JoinedRow]]:
        """Produce all results anchored at the next anchor tuple."""
        if self.exhausted():
            return []
        if self._maps is None:
            self._build_maps(stats)
        _, anchor_tid = self._anchor_queue[self._cursor]
        self._cursor += 1
        anchor_row = self.tuple_sets.db.row(anchor_tid)
        stats.tuples_read += 1
        out: List[Tuple[float, JoinedRow]] = []
        for assignment in self._assignments(self.anchor, anchor_row, -1, stats):
            ordered = tuple(assignment[i] for i in range(self.cn.size))
            if len({(r.table.name, r.rowid) for r in ordered}) < len(ordered):
                continue  # repeated tuple -> collapses into a smaller CN
            aliases = tuple(f"n{i}" for i in range(self.cn.size))
            joined = JoinedRow(aliases, ordered)
            score = monotonic_result_score(self.index, joined, self.keywords)
            out.append((score, joined))
        stats.tuples_emitted += len(out)
        return out

    def run_all(self, stats: JoinStats) -> List[Tuple[float, JoinedRow]]:
        out: List[Tuple[float, JoinedRow]] = []
        while not self.exhausted():
            out.extend(self.next_batch(stats))
        return out


class _RevKey:
    """Content tie-break key with reversed comparison.

    Inside the min-heap the *worst* entry sits at the top; among equal
    scores that should be the entry with the lexicographically largest
    content key, so that the retained top-k (and hence the final result
    list) does not depend on offer order — workers may deliver results
    in any interleaving.
    """

    __slots__ = ("key",)

    def __init__(self, key: Tuple):
        self.key = key

    def __lt__(self, other: "_RevKey") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _RevKey) and other.key == self.key


class _TopKHeap:
    """Fixed-capacity min-heap over (score, content tiebreak, payload).

    Retention follows the exact total order *(score desc, content key
    asc)* where the content key is ``(CN label, tuple ids)``: the heap
    always holds the k largest offered entries under that order, so the
    final top-k is a pure function of the offered multiset — no matter
    the order entries arrive in (deterministic across repeated, batched,
    parallel and sharded runs).  Comparisons are exact, never
    epsilon-fuzzy: near-equal scores (e.g. permutations of one answer
    summed in different orders) would make fuzzy tie classes
    non-transitive and the outcome arrival-order-dependent.  Exactness
    also makes :meth:`kth_score` monotone non-decreasing, which the
    sharded scatter path relies on for upper-bound pruning.
    """

    def __init__(self, k: int):
        self.k = k
        self._heap: List[Tuple[float, _RevKey, str, JoinedRow]] = []

    def offer(self, score: float, label: str, joined: JoinedRow) -> None:
        key = (label, joined.tuple_ids())
        entry = (score, _RevKey(key), label, joined)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
        else:
            kth_score, kth_rev = self._heap[0][0], self._heap[0][1]
            if score > kth_score or (score == kth_score and key < kth_rev.key):
                heapq.heapreplace(self._heap, entry)

    def kth_score(self) -> float:
        if len(self._heap) < self.k:
            return float("-inf")
        return self._heap[0][0]

    def sorted_results(self) -> List[Tuple[float, str, JoinedRow]]:
        ordered = sorted(self._heap, key=lambda e: (-e[0], e[1].key))
        return [(score, label, joined) for score, _, label, joined in ordered]


def _executors(
    cns: Sequence[CandidateNetwork],
    tuple_sets: TupleSets,
    index: InvertedIndex,
    keywords: Sequence[str],
) -> List[CNExecutor]:
    return [CNExecutor(cn, tuple_sets, index, keywords) for cn in cns]


def topk_naive(
    cns: Sequence[CandidateNetwork],
    tuple_sets: TupleSets,
    index: InvertedIndex,
    keywords: Sequence[str],
    k: int = 10,
) -> TopKResult:
    """Evaluate everything, then cut."""
    stats = JoinStats()
    heap = _TopKHeap(k)
    batches = 0
    for executor in _executors(cns, tuple_sets, index, keywords):
        while not executor.exhausted():
            for score, joined in executor.next_batch(stats):
                heap.offer(score, executor.cn.label(), joined)
            batches += 1
    return TopKResult(heap.sorted_results(), stats, cns_executed=len(cns), batches=batches)


def topk_sparse(
    cns: Sequence[CandidateNetwork],
    tuple_sets: TupleSets,
    index: InvertedIndex,
    keywords: Sequence[str],
    k: int = 10,
) -> TopKResult:
    """Skip whole CNs whose bound cannot reach the current k-th score."""
    stats = JoinStats()
    heap = _TopKHeap(k)
    executors = _executors(cns, tuple_sets, index, keywords)
    executors.sort(key=lambda e: -e.bound())
    executed = 0
    batches = 0
    for executor in executors:
        if executor.bound() <= heap.kth_score() + EPS:
            continue
        executed += 1
        while not executor.exhausted():
            for score, joined in executor.next_batch(stats):
                heap.offer(score, executor.cn.label(), joined)
            batches += 1
    return TopKResult(heap.sorted_results(), stats, cns_executed=executed, batches=batches)


def topk_single_pipeline(
    cns: Sequence[CandidateNetwork],
    tuple_sets: TupleSets,
    index: InvertedIndex,
    keywords: Sequence[str],
    k: int = 10,
) -> TopKResult:
    """Sparse + early stop inside each CN when its own bound falls."""
    stats = JoinStats()
    heap = _TopKHeap(k)
    executors = _executors(cns, tuple_sets, index, keywords)
    executors.sort(key=lambda e: -e.bound())
    executed = 0
    batches = 0
    for executor in executors:
        if executor.bound() <= heap.kth_score() + EPS:
            continue
        executed += 1
        while not executor.exhausted() and executor.bound() > heap.kth_score() + EPS:
            for score, joined in executor.next_batch(stats):
                heap.offer(score, executor.cn.label(), joined)
            batches += 1
    return TopKResult(heap.sorted_results(), stats, cns_executed=executed, batches=batches)


def topk_global_pipeline(
    cns: Sequence[CandidateNetwork],
    tuple_sets: TupleSets,
    index: InvertedIndex,
    keywords: Sequence[str],
    k: int = 10,
    budget: Optional[QueryBudget] = None,
    tracer=None,
) -> TopKResult:
    """Always advance the CN with the highest remaining bound.

    Each produced result charges *budget* one scored candidate, each
    batch one node expansion; on exhaustion the current heap contents
    are returned (a valid but possibly incomplete top-k — the budget's
    ``exhausted`` flag says so).

    With *tracer* set, the bound computation gets a ``plan`` span and
    the interleaved execution an ``evaluate`` span; time spent offering
    results to the heap accumulates into a ``topk`` child span (it
    overlaps ``evaluate`` — the pipeline interleaves them by design).
    Tracing never changes the evaluation order, so results are
    byte-identical with it on or off.
    """
    stats = JoinStats()
    heap = _TopKHeap(k)
    traced = tracer is not None
    with trace_span(tracer, "plan") as psp:
        executors = _executors(cns, tuple_sets, index, keywords)
        pq: List[Tuple[float, int, CNExecutor]] = []
        touched = set()
        for i, executor in enumerate(executors):
            if not executor.exhausted():
                heapq.heappush(pq, (-executor.bound(), i, executor))
        psp.add("cns", len(cns)).add("viable", len(pq))
    batches = 0
    offered = 0
    topk_s = 0.0
    with trace_span(tracer, "evaluate") as esp:
        try:
            while pq:
                neg_bound, i, executor = heapq.heappop(pq)
                if -neg_bound <= heap.kth_score() + EPS:
                    break
                touched.add(i)
                for score, joined in executor.next_batch(stats):
                    if budget is not None:
                        budget.tick_candidates()
                    if traced:
                        t0 = time.perf_counter()
                        heap.offer(score, executor.cn.label(), joined)
                        topk_s += time.perf_counter() - t0
                        offered += 1
                    else:
                        heap.offer(score, executor.cn.label(), joined)
                batches += 1
                if budget is not None:
                    budget.tick_nodes()
                if not executor.exhausted():
                    heapq.heappush(pq, (-executor.bound(), i, executor))
        except BudgetExceededError:
            pass  # return what the heap holds; caller sees budget.exhausted
        esp.add("batches", batches).add("cns_executed", len(touched))
        if traced:
            tracer.record("topk", topk_s, {"offers": offered})
    return TopKResult(
        heap.sorted_results(), stats, cns_executed=len(touched), batches=batches
    )


def topk_shared(
    cns: Sequence[CandidateNetwork],
    tuple_sets: TupleSets,
    index: InvertedIndex,
    keywords: Sequence[str],
    k: int = 10,
    budget: Optional[QueryBudget] = None,
    max_workers: int = 1,
    tracer=None,
) -> TopKResult:
    """Top-k over shared CN evaluation (slides 129-134).

    Evaluates the query's CNs through a
    :class:`~repro.schema_search.evaluate.SharedCNEvaluator`, so join
    prefixes common to several CNs are materialised once and reused;
    the stats report ``reuse_hits`` / ``joins_saved``.

    With ``max_workers > 1`` and no budget, the CNs are partitioned
    into independent shared-plan groups by the sharing-aware placement
    policy (:func:`~repro.schema_search.parallel.shared_plan_groups`)
    and each group runs on its own worker with its own evaluator; the
    per-group results are merged deterministically, and the heap's
    content tie-breaking makes the final top-k independent of worker
    scheduling.  Budgeted queries always run sequentially — a
    :class:`QueryBudget` is not shared across threads — charging one
    node expansion per join and one candidate per emitted result, and
    return the partial heap on exhaustion like the global pipeline.

    With *tracer* set, planning and evaluation get ``plan`` /
    ``evaluate`` spans, and the per-result scoring and heap-offer time
    accumulate into ``score`` / ``topk`` child spans (these overlap
    ``evaluate`` — the loop interleaves the three stages by design).
    Tracing never reorders evaluation, so results are byte-identical
    with it on or off.
    """
    stats = JoinStats()
    heap = _TopKHeap(k)
    if not cns:
        return TopKResult([], stats)
    keywords = list(keywords)
    traced = tracer is not None
    run_parallel = max_workers > 1 and budget is None and len(cns) > 1
    if not run_parallel:
        with trace_span(tracer, "plan") as psp:
            evaluator = SharedCNEvaluator(tuple_sets, stats=stats, budget=budget)
            evaluator.plan(cns)
            psp.add("cns", len(cns))
        executed = 0
        scored_n = 0
        score_s = 0.0
        topk_s = 0.0
        with trace_span(tracer, "evaluate") as esp:
            try:
                for cn in cns:
                    label = cn.label()
                    for joined in evaluator.evaluate(cn):
                        if traced:
                            t0 = time.perf_counter()
                            score = monotonic_result_score(index, joined, keywords)
                            t1 = time.perf_counter()
                            heap.offer(score, label, joined)
                            topk_s += time.perf_counter() - t1
                            score_s += t1 - t0
                            scored_n += 1
                        else:
                            heap.offer(
                                monotonic_result_score(index, joined, keywords),
                                label,
                                joined,
                            )
                    executed += 1
            except BudgetExceededError:
                pass  # partial top-k; caller sees budget.exhausted
            esp.add("cns_executed", executed)
            if traced:
                tracer.record("score", score_s, {"results": scored_n})
                tracer.record("topk", topk_s, {"offers": scored_n})
        return TopKResult(
            heap.sorted_results(), stats, cns_executed=executed, batches=1
        )

    from repro.schema_search.parallel import shared_plan_groups

    with trace_span(tracer, "plan") as psp:
        groups = shared_plan_groups(cns, tuple_sets, max_workers)
        psp.add("cns", len(cns)).add("groups", len(groups))

    def run_group(cn_indices: List[int]):
        group_stats = JoinStats()
        evaluator = SharedCNEvaluator(tuple_sets, stats=group_stats)
        evaluator.plan([cns[i] for i in cn_indices])
        scored: List[Tuple[float, str, JoinedRow]] = []
        for i in cn_indices:
            cn = cns[i]
            label = cn.label()
            for joined in evaluator.evaluate(cn):
                scored.append(
                    (monotonic_result_score(index, joined, keywords), label, joined)
                )
        return group_stats, scored

    with trace_span(tracer, "evaluate") as esp:
        with ThreadPoolExecutor(max_workers=min(max_workers, len(groups))) as pool:
            outcomes = list(pool.map(run_group, groups))
        esp.add("groups", len(groups)).add("cns_executed", len(cns))
    with trace_span(tracer, "topk") as tsp:
        offers = 0
        for group_stats, scored in outcomes:
            stats.merge(group_stats)
            for score, label, joined in scored:
                heap.offer(score, label, joined)
                offers += 1
        tsp.add("offers", offers)
    return TopKResult(
        heap.sorted_results(), stats, cns_executed=len(cns), batches=len(groups)
    )
