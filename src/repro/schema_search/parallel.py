"""Shared execution and parallel CN partitioning (Qin et al., VLDB 10).

Slides 129-133: a keyword query explodes into many CNs that overlap
substantially.  The *shared execution graph* has one node per distinct
partial join expression (identified by its canonical sub-CN code) with
an estimated cost; a CN's plan is the chain of partials produced by its
join order.  Partitioning CNs across cores then matters:

* ``partition_round_robin`` — slide 131's strawman,
* ``partition_greedy`` — "assign the largest job to the core with the
  lightest load" (sharing-blind LPT),
* ``partition_sharing_aware`` — "assign the largest job to the core
  with the lightest *resulting* load", updating the incremental cost of
  remaining jobs as shared partials get placed (slide 132).

``simulate_makespan`` replaces the paper's multi-core wall-clock: a
core's load is the summed cost of the *distinct* partials it must
compute (a shared partial placed on a core is computed once).  The
substitution preserves the ranking of the policies, which is the claim
E12 reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.schema_search.candidate_networks import CandidateNetwork
from repro.schema_search.plans import cardinality_join_order, prefix_codes
from repro.schema_search.tuple_sets import TupleSets


@dataclass(frozen=True)
class PlanStep:
    """One partial join expression in a CN's plan."""

    code: str
    cost: float


class SharedExecutionGraph:
    """Distinct partial expressions across a set of CNs, with costs."""

    def __init__(self, cns: Sequence[CandidateNetwork], tuple_sets: TupleSets):
        self.cns = list(cns)
        self.tuple_sets = tuple_sets
        self._plans: List[List[PlanStep]] = [self._plan(cn) for cn in self.cns]
        self._node_cost: Dict[str, float] = {}
        for plan in self._plans:
            for step in plan:
                self._node_cost[step.code] = step.cost

    def _plan(self, cn: CandidateNetwork) -> List[PlanStep]:
        """Left-deep plan: canonical partial-tree codes with costs.

        Uses the same cardinality join order the shared executor runs
        (:func:`~repro.schema_search.plans.cardinality_join_order`), so
        the cost model prices the plans that actually execute.
        """
        steps = cardinality_join_order(cn, self.tuple_sets)
        codes = prefix_codes(cn, steps)
        return [
            PlanStep(code, self._step_cost(cn, step.node))
            for code, step in zip(codes, steps)
        ]

    def _step_cost(self, cn: CandidateNetwork, node_idx: int) -> float:
        """Cost of scanning/joining in one node: its tuple-set size."""
        return float(max(1, self.tuple_sets.size(cn.nodes[node_idx].key)))

    # ------------------------------------------------------------------
    @property
    def plans(self) -> List[List[PlanStep]]:
        return [list(p) for p in self._plans]

    def standalone_cost(self, cn_index: int) -> float:
        return sum(step.cost for step in self._plans[cn_index])

    def node_count(self) -> int:
        return len(self._node_cost)

    def total_shared_cost(self) -> float:
        """Cost of evaluating every distinct partial exactly once."""
        return sum(self._node_cost.values())

    def total_unshared_cost(self) -> float:
        """Cost with no sharing at all (every CN evaluated standalone)."""
        return sum(self.standalone_cost(i) for i in range(len(self.cns)))

    def incremental_cost(self, cn_index: int, have: Set[str]) -> float:
        """Cost of plan *cn_index* given the partials in *have* exist."""
        return sum(
            step.cost for step in self._plans[cn_index] if step.code not in have
        )

    def codes(self, cn_index: int) -> Set[str]:
        return {step.code for step in self._plans[cn_index]}


Assignment = List[List[int]]  # per core: list of CN indices


def simulate_makespan(graph: SharedExecutionGraph, assignment: Assignment) -> float:
    """Max over cores of the summed cost of its distinct partials."""
    makespan = 0.0
    for core in assignment:
        have: Set[str] = set()
        load = 0.0
        for cn_index in core:
            load += graph.incremental_cost(cn_index, have)
            have |= graph.codes(cn_index)
        makespan = max(makespan, load)
    return makespan


def partition_round_robin(graph: SharedExecutionGraph, cores: int) -> Assignment:
    assignment: Assignment = [[] for _ in range(cores)]
    for i in range(len(graph.cns)):
        assignment[i % cores].append(i)
    return assignment


def partition_greedy(graph: SharedExecutionGraph, cores: int) -> Assignment:
    """LPT on standalone costs, blind to sharing (slide 131)."""
    assignment: Assignment = [[] for _ in range(cores)]
    loads = [0.0] * cores
    order = sorted(
        range(len(graph.cns)),
        key=lambda i: -graph.standalone_cost(i),
    )
    for cn_index in order:
        core = min(range(cores), key=lambda c: loads[c])
        assignment[core].append(cn_index)
        loads[core] += graph.standalone_cost(cn_index)
    return assignment


def partition_sharing_aware(graph: SharedExecutionGraph, cores: int) -> Assignment:
    """Greedy on *resulting* loads with shared partials counted once."""
    assignment: Assignment = [[] for _ in range(cores)]
    loads = [0.0] * cores
    have: List[Set[str]] = [set() for _ in range(cores)]
    remaining = sorted(
        range(len(graph.cns)),
        key=lambda i: -graph.standalone_cost(i),
    )
    for cn_index in remaining:
        best_core = 0
        best_resulting = float("inf")
        for core in range(cores):
            resulting = loads[core] + graph.incremental_cost(cn_index, have[core])
            if resulting < best_resulting:
                best_resulting = resulting
                best_core = core
        assignment[best_core].append(cn_index)
        loads[best_core] = best_resulting
        have[best_core] |= graph.codes(cn_index)
    return assignment


def shared_plan_groups(
    cns: Sequence[CandidateNetwork], tuple_sets: TupleSets, cores: int
) -> List[List[int]]:
    """Partition CN indices into at most *cores* shared-plan groups.

    Sharing-aware placement (slide 132) keeps CNs with common partials
    on the same core, so each group's
    :class:`~repro.schema_search.evaluate.SharedCNEvaluator` sees the
    reuse the cost model predicted.  Groups are sorted (and each group's
    indices sorted) so the grouping — and therefore the merged result
    stream — is deterministic for a given CN list.
    """
    if not cns:
        return []
    graph = SharedExecutionGraph(cns, tuple_sets)
    assignment = partition_sharing_aware(graph, max(1, min(cores, len(cns))))
    groups = [sorted(core) for core in assignment if core]
    groups.sort()
    return groups
