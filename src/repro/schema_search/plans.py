"""Join-order planning and shared-subexpression identities for CNs.

One place for the logic that was previously duplicated (and subtly
fragile) across ``evaluate.py``, ``mesh.py`` and ``parallel.py``:

* :func:`bfs_join_order` / :func:`cardinality_join_order` produce a
  left-deep join order for a CN as a list of :class:`JoinStep`; each
  step carries the schema edge that connects the new node to the
  partial result, so executors never have to re-discover edges (the
  old ``next(e for nbr, e in adj[parent] ...)`` pattern could raise a
  bare ``StopIteration``).  Both validate the CN and raise
  :class:`~repro.resilience.errors.SearchExecutionError` for malformed
  input — non-tree edge counts, bad endpoints, disconnected nodes —
  instead of silently dropping nodes.
* :func:`cardinality_join_order` is the execution-time planner: it
  starts at the smallest tuple set and greedily attaches the smallest
  adjacent one (deterministic label/index tie-breaks), so the driving
  side of every hash join stays as small as possible.
* :func:`prefix_identity` canonicalises the partial tree covered by a
  step prefix — the same unrooted-AHU-over-centroids code that
  :meth:`CandidateNetwork.canonical_code` computes — and additionally
  returns the CN's node indices in canonical traversal order.  The code
  identifies a shared subexpression across CNs; the order lets a
  materialised intermediate stored under that code be re-read into any
  other CN whose partial is isomorphic (see
  :class:`~repro.schema_search.evaluate.SharedCNEvaluator`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.relational.schema_graph import SchemaEdge
from repro.resilience.errors import SearchExecutionError
from repro.schema_search.candidate_networks import CandidateNetwork
from repro.schema_search.tuple_sets import TupleSets


@dataclass(frozen=True)
class JoinStep:
    """One left-deep step: join *node* to the partial result via *edge*.

    The first step of a plan has ``parent is None`` and ``edge is None``
    (it seeds the pipeline with the node's tuple set).
    """

    node: int
    parent: Optional[int] = None
    edge: Optional[SchemaEdge] = None


def _validate(cn: CandidateNetwork) -> None:
    if cn.size == 0:
        raise SearchExecutionError("malformed candidate network: no nodes")
    if len(cn.edges) != cn.size - 1:
        raise SearchExecutionError(
            f"malformed candidate network over {[n.label() for n in cn.nodes]}: "
            f"{len(cn.edges)} edges for {cn.size} nodes (a CN must be a tree)"
        )
    for a, b, _ in cn.edges:
        if a == b or not (0 <= a < cn.size) or not (0 <= b < cn.size):
            raise SearchExecutionError(
                f"malformed candidate network over "
                f"{[n.label() for n in cn.nodes]}: edge ({a}, {b}) has "
                f"invalid endpoints"
            )


def _disconnected(cn: CandidateNetwork, reached: int) -> SearchExecutionError:
    return SearchExecutionError(
        f"malformed candidate network over {[n.label() for n in cn.nodes]}: "
        f"disconnected (only {reached} of {cn.size} nodes reachable)"
    )


def bfs_join_order(cn: CandidateNetwork) -> List[JoinStep]:
    """BFS-from-node-0 join order (the historical plan shape)."""
    _validate(cn)
    adj = cn.adjacency()
    steps = [JoinStep(0)]
    visited = {0}
    frontier = [0]
    while frontier:
        nxt = []
        for node in frontier:
            for nbr, edge in adj[node]:
                if nbr not in visited:
                    visited.add(nbr)
                    steps.append(JoinStep(nbr, node, edge))
                    nxt.append(nbr)
        frontier = nxt
    if len(steps) < cn.size:
        raise _disconnected(cn, len(steps))
    return steps


def cardinality_join_order(
    cn: CandidateNetwork, tuple_sets: TupleSets
) -> List[JoinStep]:
    """Cardinality-ordered left-deep plan: smallest tuple set first.

    Starts at the node with the fewest tuples and repeatedly attaches
    the smallest tuple set adjacent to the tree built so far, so every
    hash join keeps its probe side small.  Ties break on node label and
    then index, making the plan (and thus result order and prefix
    identities) deterministic for a given CN and tuple sets.
    """
    _validate(cn)

    def rank(i: int) -> Tuple[int, str, int]:
        return (tuple_sets.size(cn.nodes[i].key), cn.nodes[i].label(), i)

    if cn.size == 1:
        return [JoinStep(0)]
    adj = cn.adjacency()
    start = min(range(cn.size), key=rank)
    steps = [JoinStep(start)]
    included = {start}
    while len(included) < cn.size:
        best: Optional[Tuple[Tuple[int, str, int], int, int, SchemaEdge]] = None
        for node in included:
            for nbr, edge in adj[node]:
                if nbr in included:
                    continue
                candidate = (rank(nbr), nbr, node, edge)
                if best is None or candidate[:3] < best[:3]:
                    best = candidate
        if best is None:
            raise _disconnected(cn, len(included))
        _, nbr, node, edge = best
        included.add(nbr)
        steps.append(JoinStep(nbr, node, edge))
    return steps


def _prefix_centroids(
    included: FrozenSet[int], adj: Dict[int, List[Tuple[int, SchemaEdge]]]
) -> List[int]:
    """Centroid(s) of the sub-tree induced by *included* (1 or 2 nodes)."""
    if len(included) == 1:
        return list(included)
    degree = {
        i: sum(1 for nbr, _ in adj[i] if nbr in included) for i in included
    }
    layer = sorted(i for i in included if degree[i] <= 1)
    removed = 0
    while removed + len(layer) < len(included):
        removed += len(layer)
        nxt = []
        for leaf in layer:
            degree[leaf] = 0
            for nbr, _ in adj[leaf]:
                if nbr in included and degree[nbr] > 0:
                    degree[nbr] -= 1
                    if degree[nbr] == 1:
                        nxt.append(nbr)
        layer = sorted(nxt)
    return layer


def prefix_identity(
    cn: CandidateNetwork, steps: Sequence[JoinStep]
) -> Tuple[str, Tuple[int, ...]]:
    """Canonical identity of the partial tree covered by *steps*.

    Returns ``(code, order)``.  *code* is the canonical unrooted AHU
    code of the induced sub-tree — the same string for isomorphic
    partials of different CNs, and identical to
    :meth:`CandidateNetwork.canonical_code` when *steps* covers the
    whole CN.  *order* lists this CN's node indices in the canonical
    traversal order, so rows of a shared intermediate (stored
    column-per-canonical-position) can be mapped onto any CN sharing
    the code.  Isomorphic-sibling ambiguity is harmless: swapping equal
    subtrees permutes an assignment set that is symmetric under the
    swap.
    """
    included = frozenset(step.node for step in steps)
    adj = cn.adjacency()
    nodes = cn.nodes

    def rooted(node: int, parent: int) -> Tuple[str, List[int]]:
        children = []
        for nbr, edge in adj[node]:
            if nbr == parent or nbr not in included:
                continue
            owner_is_child = nodes[nbr].table == edge.child and (
                nodes[node].table == edge.parent
            )
            direction = "v" if owner_is_child else "^"
            sub_code, sub_order = rooted(nbr, node)
            children.append(
                (f"{edge.child}.{edge.fk.column}{direction}{sub_code}", sub_order)
            )
        children.sort(key=lambda child: child[0])
        order = [node]
        for _, sub_order in children:
            order.extend(sub_order)
        code = f"({nodes[node].label()}|{''.join(c for c, _ in children)})"
        return code, order

    best: Optional[Tuple[str, List[int]]] = None
    for root in _prefix_centroids(included, adj):
        code, order = rooted(root, -1)
        if best is None or code < best[0]:
            best = (code, order)
    assert best is not None
    return best[0], tuple(best[1])


def prefix_codes(
    cn: CandidateNetwork, steps: Sequence[JoinStep]
) -> List[str]:
    """Canonical code of every plan prefix (length 1..len(steps))."""
    return [
        prefix_identity(cn, steps[: length + 1])[0]
        for length in range(len(steps))
    ]
