"""Schema-based keyword search — the DISCOVER family (slides 28, 44, 115-135).

Pipeline: keyword query -> tuple sets (exact keyword-subset partition)
-> candidate network (CN) enumeration over the schema graph -> CN
evaluation by joins -> (top-k) results, optionally under SPARK's
non-monotonic relevance scoring, with shared/parallel execution across
CNs.
"""

from repro.schema_search.tuple_sets import TupleSets, TupleSetKey
from repro.schema_search.candidate_networks import (
    CandidateNetwork,
    CNNode,
    generate_candidate_networks,
)
from repro.schema_search.evaluate import evaluate_cn, cn_results
from repro.schema_search.scoring import (
    tuple_score,
    monotonic_result_score,
    spark_score,
)
from repro.schema_search.topk import (
    TopKResult,
    topk_naive,
    topk_sparse,
    topk_single_pipeline,
    topk_global_pipeline,
)
from repro.schema_search.spark import skyline_sweep, block_pipeline
from repro.schema_search.spark2 import (
    PartitionGraph,
    connected_subnetworks,
    evaluate_with_pruning,
    evaluate_without_pruning,
)
from repro.schema_search.mesh import OperatorMesh
from repro.schema_search.parallel import (
    SharedExecutionGraph,
    partition_round_robin,
    partition_greedy,
    partition_sharing_aware,
    simulate_makespan,
)

__all__ = [
    "TupleSets",
    "TupleSetKey",
    "CandidateNetwork",
    "CNNode",
    "generate_candidate_networks",
    "evaluate_cn",
    "cn_results",
    "tuple_score",
    "monotonic_result_score",
    "spark_score",
    "TopKResult",
    "topk_naive",
    "topk_sparse",
    "topk_single_pipeline",
    "topk_global_pipeline",
    "skyline_sweep",
    "block_pipeline",
    "PartitionGraph",
    "connected_subnetworks",
    "evaluate_with_pruning",
    "evaluate_without_pruning",
    "OperatorMesh",
    "SharedExecutionGraph",
    "partition_round_robin",
    "partition_greedy",
    "partition_sharing_aware",
    "simulate_makespan",
]
