"""XML keyword search engine facade.

Pipeline over one XML document: clean -> ?LCA search (SLCA / ELCA /
multiway) -> XRank-style ranking -> analysis (snippets, return-node
inference, type clustering, describable clustering).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from functools import cached_property
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.clustering import rank_clusters, xbridge_clusters
from repro.analysis.snippets import SnippetItem, generate_snippet
from repro.core.query import Query
from repro.core.results import ResultSet, XmlResult
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.trace import Tracer, span as trace_span
from repro.resilience.budget import QueryBudget, make_budget
from repro.resilience.errors import QueryParseError
from repro.xml_search.describable import describable_clusters
from repro.xml_search.elca import elca_candidates_verify
from repro.xml_search.slca import slca_indexed_lookup_eager, slca_multiway
from repro.xml_search.xrank import xrank_scores
from repro.xml_search.xreal import XReal
from repro.xml_search.xseek import XSeek
from repro.xmltree.index import XmlKeywordIndex
from repro.xmltree.node import Dewey, XmlNode


class XmlSearchEngine:
    """End-to-end keyword search over one XML document."""

    def __init__(
        self,
        root: XmlNode,
        match_tags: bool = True,
        trace: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.root = root
        self.match_tags = match_tags
        #: When True, every :meth:`search` builds a span tree and
        #: attaches it as ``result.trace`` (per-call ``trace=`` wins).
        self.trace_enabled = trace
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._profiler: Optional[Profiler] = None

    @contextmanager
    def profiled(self) -> Iterator[Profiler]:
        """Trace every query in the block; yields the :class:`Profiler`."""
        profiler = Profiler()
        prev_enabled, prev_profiler = self.trace_enabled, self._profiler
        self.trace_enabled = True
        self._profiler = profiler
        try:
            yield profiler
        finally:
            self.trace_enabled = prev_enabled
            self._profiler = prev_profiler

    @cached_property
    def index(self) -> XmlKeywordIndex:
        return XmlKeywordIndex(self.root, match_tags=self.match_tags)

    @cached_property
    def xseek(self) -> XSeek:
        return XSeek(self.root)

    @cached_property
    def xreal(self) -> XReal:
        return XReal(self.root)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        text: str,
        k: Optional[int] = None,
        semantics: str = "slca",
        budget: Optional[QueryBudget] = None,
        timeout_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
        trace: Optional[bool] = None,
    ) -> ResultSet:
        """Ranked ?LCA search; ``semantics`` in slca | elca | multiway.

        An exhausted budget (``timeout_ms`` / ``max_expansions``) stops
        the anchor scan early; the SLCAs/ELCAs found so far come back
        ranked, with the result set marked ``degraded``.

        ``trace=True`` (or ``XmlSearchEngine(trace=True)``) attaches a
        span tree (``search -> parse -> substrate_build -> evaluate ->
        score -> topk``) as ``result.trace``; tracing never changes the
        evaluation order, so results are byte-identical with it on or
        off.
        """
        algorithms = {
            "slca": slca_indexed_lookup_eager,
            "multiway": slca_multiway,
            "elca": elca_candidates_verify,
        }
        if semantics not in algorithms:
            raise QueryParseError(
                f"unknown semantics {semantics!r} "
                f"(choices: {', '.join(algorithms)})"
            )
        if budget is None:
            budget = make_budget(timeout_ms, max_expansions)
        tracing = self.trace_enabled if trace is None else trace
        tracer = Tracer() if tracing else None
        self.metrics.inc("query.count")
        start_s = time.perf_counter()
        with trace_span(tracer, "search") as root_span:
            root_span.tag("semantics", semantics)
            out = self._run_search(text, k, semantics, budget, algorithms, tracer)
        self.metrics.observe(
            "query.latency_ms", (time.perf_counter() - start_s) * 1000.0
        )
        if out.degraded:
            self.metrics.inc("query.degraded")
        if budget is not None and budget.exhausted:
            self.metrics.inc("budget.exhausted")
        if tracer is not None:
            finished = tracer.finish()
            out.trace = finished
            profiler = self._profiler
            if profiler is not None:
                profiler.record(finished)
        return out

    def _run_search(
        self,
        text: str,
        k: Optional[int],
        semantics: str,
        budget: Optional[QueryBudget],
        algorithms: Dict,
        tracer: Optional[Tracer],
    ) -> ResultSet:
        with trace_span(tracer, "parse") as psp:
            query = Query.parse(text)
            psp.add("keywords", len(query.keywords))
        if not query.keywords:
            return ResultSet(method=semantics)
        with trace_span(tracer, "substrate_build") as ssp:
            lists = self.index.match_lists(list(query.keywords))
            ssp.add("match_lists", len(lists))
            ssp.add("matches", sum(len(lst) for lst in lists))
        if any(not lst for lst in lists):
            return ResultSet(method=semantics)
        with trace_span(tracer, "evaluate") as esp:
            roots = algorithms[semantics](
                lists,
                budget=budget,
                span=esp if tracer is not None else None,
            )
            esp.add("roots", len(roots))
        with trace_span(tracer, "score") as csp:
            scores = xrank_scores(self.index, roots, list(query.keywords))
            csp.add("scored", len(scores))
        with trace_span(tracer, "topk") as tsp:
            results = []
            for dewey in roots:
                node = self.root.node_at(dewey)
                if node is None:
                    continue
                results.append(
                    XmlResult(
                        score=scores.get(dewey, 0.0),
                        root=dewey,
                        node=node,
                        semantics=semantics,
                    )
                )
            results.sort(key=lambda r: (-r.score, r.root))
            tsp.add("results", len(results))
        exhausted = budget is not None and budget.exhausted
        return ResultSet(
            results[:k] if k is not None else results,
            method=semantics,
            degraded=exhausted,
            degraded_reason=budget.reason if exhausted else None,
        )

    # ------------------------------------------------------------------
    # Structure inference
    # ------------------------------------------------------------------
    def infer_return_type(self, text: str, k: int = 3) -> List[Tuple[str, float]]:
        """XReal search-for node types for a query (slides 37-38)."""
        query = Query.parse(text)
        return self.xreal.infer_return_type(list(query.keywords))[:k]

    def return_nodes(self, result: XmlResult, text: str) -> List[XmlNode]:
        """XSeek return-node inference for one result (slide 51)."""
        query = Query.parse(text)
        return self.xseek.return_nodes(result.node, list(query.keywords))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def snippet(
        self, result: XmlResult, text: str, max_items: int = 4
    ) -> List[SnippetItem]:
        query = Query.parse(text)
        return generate_snippet(result.node, list(query.keywords), max_items)

    def cluster_by_type(
        self, results: Sequence[XmlResult], text: str
    ) -> List[Tuple[str, float, List[XmlResult]]]:
        """XBridge type clusters, ranked (slides 156-157)."""
        query = Query.parse(text)
        by_root = {r.root: r for r in results}
        clusters = xbridge_clusters(self.root, [r.root for r in results])
        ranked = rank_clusters(self.index, clusters, list(query.keywords))
        return [
            (path, score, [by_root[d] for d in clusters[path]])
            for path, score in ranked
        ]

    def cluster_by_role(
        self, results: Sequence[XmlResult], text: str
    ) -> Dict[str, List[XmlResult]]:
        """Describable clusters by keyword roles (slides 161-162)."""
        query = Query.parse(text)
        by_node = {id(r.node): r for r in results}
        clusters = describable_clusters(
            [r.node for r in results], list(query.keywords)
        )
        return {
            description: [by_node[id(n)] for n in members]
            for description, members in clusters.items()
        }
