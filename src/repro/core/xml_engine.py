"""XML keyword search engine facade.

Pipeline over one XML document: clean -> ?LCA search (SLCA / ELCA /
multiway) -> XRank-style ranking -> analysis (snippets, return-node
inference, type clustering, describable clustering).
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.clustering import rank_clusters, xbridge_clusters
from repro.analysis.snippets import SnippetItem, generate_snippet
from repro.core.query import Query
from repro.core.results import ResultSet, XmlResult
from repro.resilience.budget import QueryBudget, make_budget
from repro.resilience.errors import QueryParseError
from repro.xml_search.describable import describable_clusters
from repro.xml_search.elca import elca_candidates_verify
from repro.xml_search.slca import slca_indexed_lookup_eager, slca_multiway
from repro.xml_search.xrank import xrank_scores
from repro.xml_search.xreal import XReal
from repro.xml_search.xseek import XSeek
from repro.xmltree.index import XmlKeywordIndex
from repro.xmltree.node import Dewey, XmlNode


class XmlSearchEngine:
    """End-to-end keyword search over one XML document."""

    def __init__(self, root: XmlNode, match_tags: bool = True):
        self.root = root
        self.match_tags = match_tags

    @cached_property
    def index(self) -> XmlKeywordIndex:
        return XmlKeywordIndex(self.root, match_tags=self.match_tags)

    @cached_property
    def xseek(self) -> XSeek:
        return XSeek(self.root)

    @cached_property
    def xreal(self) -> XReal:
        return XReal(self.root)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        text: str,
        k: Optional[int] = None,
        semantics: str = "slca",
        budget: Optional[QueryBudget] = None,
        timeout_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
    ) -> ResultSet:
        """Ranked ?LCA search; ``semantics`` in slca | elca | multiway.

        An exhausted budget (``timeout_ms`` / ``max_expansions``) stops
        the anchor scan early; the SLCAs/ELCAs found so far come back
        ranked, with the result set marked ``degraded``.
        """
        algorithms = {
            "slca": slca_indexed_lookup_eager,
            "multiway": slca_multiway,
            "elca": elca_candidates_verify,
        }
        if semantics not in algorithms:
            raise QueryParseError(
                f"unknown semantics {semantics!r} "
                f"(choices: {', '.join(algorithms)})"
            )
        if budget is None:
            budget = make_budget(timeout_ms, max_expansions)
        query = Query.parse(text)
        if not query.keywords:
            return ResultSet(method=semantics)
        lists = self.index.match_lists(list(query.keywords))
        if any(not lst for lst in lists):
            return ResultSet(method=semantics)
        roots = algorithms[semantics](lists, budget=budget)
        scores = xrank_scores(self.index, roots, list(query.keywords))
        results = []
        for dewey in roots:
            node = self.root.node_at(dewey)
            if node is None:
                continue
            results.append(
                XmlResult(
                    score=scores.get(dewey, 0.0),
                    root=dewey,
                    node=node,
                    semantics=semantics,
                )
            )
        results.sort(key=lambda r: (-r.score, r.root))
        exhausted = budget is not None and budget.exhausted
        return ResultSet(
            results[:k] if k is not None else results,
            method=semantics,
            degraded=exhausted,
            degraded_reason=budget.reason if exhausted else None,
        )

    # ------------------------------------------------------------------
    # Structure inference
    # ------------------------------------------------------------------
    def infer_return_type(self, text: str, k: int = 3) -> List[Tuple[str, float]]:
        """XReal search-for node types for a query (slides 37-38)."""
        query = Query.parse(text)
        return self.xreal.infer_return_type(list(query.keywords))[:k]

    def return_nodes(self, result: XmlResult, text: str) -> List[XmlNode]:
        """XSeek return-node inference for one result (slide 51)."""
        query = Query.parse(text)
        return self.xseek.return_nodes(result.node, list(query.keywords))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def snippet(
        self, result: XmlResult, text: str, max_items: int = 4
    ) -> List[SnippetItem]:
        query = Query.parse(text)
        return generate_snippet(result.node, list(query.keywords), max_items)

    def cluster_by_type(
        self, results: Sequence[XmlResult], text: str
    ) -> List[Tuple[str, float, List[XmlResult]]]:
        """XBridge type clusters, ranked (slides 156-157)."""
        query = Query.parse(text)
        by_root = {r.root: r for r in results}
        clusters = xbridge_clusters(self.root, [r.root for r in results])
        ranked = rank_clusters(self.index, clusters, list(query.keywords))
        return [
            (path, score, [by_root[d] for d in clusters[path]])
            for path, score in ranked
        ]

    def cluster_by_role(
        self, results: Sequence[XmlResult], text: str
    ) -> Dict[str, List[XmlResult]]:
        """Describable clusters by keyword roles (slides 161-162)."""
        query = Query.parse(text)
        by_node = {id(r.node): r for r in results}
        clusters = describable_clusters(
            [r.node for r in results], list(query.keywords)
        )
        return {
            description: [by_node[id(n)] for n in members]
            for description, members in clusters.items()
        }
