"""Unifying facade.

:class:`KeywordSearchEngine` (relational) and :class:`XmlSearchEngine`
(XML) wire the substrates and algorithms into the pipeline the tutorial
describes end to end: clean the query, search (schema-based, graph-based
or ?LCA), rank, and analyse (snippets, clusters, facets, clouds).
"""

from repro.core.query import Query
from repro.core.results import SearchResult, XmlResult
from repro.core.engine import KeywordSearchEngine
from repro.core.xml_engine import XmlSearchEngine

__all__ = [
    "Query",
    "SearchResult",
    "XmlResult",
    "KeywordSearchEngine",
    "XmlSearchEngine",
]
