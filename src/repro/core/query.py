"""The query object shared by both engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.index.text import tokenize


@dataclass(frozen=True)
class Query:
    """A keyword query: raw user input plus the cleaned keyword list."""

    raw: str
    keywords: Tuple[str, ...]
    cleaned_from: Optional[Tuple[str, ...]] = None

    @classmethod
    def parse(cls, text: str) -> "Query":
        return cls(raw=text, keywords=tuple(tokenize(text)))

    def with_keywords(self, keywords: Sequence[str]) -> "Query":
        """A cleaned/rewritten variant remembering its origin."""
        return Query(
            raw=self.raw,
            keywords=tuple(k.lower() for k in keywords),
            cleaned_from=self.keywords,
        )

    @property
    def was_cleaned(self) -> bool:
        return self.cleaned_from is not None and self.cleaned_from != self.keywords

    def __len__(self) -> int:
        return len(self.keywords)

    def __str__(self) -> str:
        return " ".join(self.keywords)
