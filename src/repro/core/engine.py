"""Relational keyword search engine facade.

Wires the full tutorial pipeline over one database:

    query text -> clean (noisy channel + segmentation)
               -> search (schema-based CN top-k | graph-based BANKS |
                          distinct-root over distance index)
               -> analyse (data cloud, co-occurring terms, facets,
                           differentiation, form suggestions)

Substructures (indexes, graphs, tuple sets) are built lazily and cached.
The serving path layers three caches on top (see :mod:`repro.perf`):
an LRU cache over final results keyed by (normalized query, method, k),
a :class:`~repro.perf.substrates.SubstrateCache` memoising tuple sets /
candidate networks / keyword groups / the form pipeline, and a
:class:`~repro.perf.batch.BatchSearchExecutor` behind
:meth:`KeywordSearchEngine.search_many`.  All caches invalidate when
:attr:`Database.data_version` moves, so mutations are always visible.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from functools import cached_property
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.ambiguity.autocomplete import Tastier
from repro.ambiguity.cleaning import CleaningResult, QueryCleaner
from repro.analysis.clouds import data_cloud, frequent_cooccurring_terms
from repro.analysis.differentiation import (
    FeatureSet,
    select_features_greedy,
)
from repro.core.query import Query
from repro.core.results import ResultSet, SearchResult
from repro.forms.matching import rank_forms
from repro.graph.data_graph import DataGraph, build_data_graph
from repro.graph_search.banks import banks_backward, banks_bidirectional
from repro.graph_search.steiner import group_steiner_dp
from repro.index.distance import KeywordDistanceIndex
from repro.index.inverted import InvertedIndex
from repro.index.text import tokenize
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.trace import Tracer, span as trace_span
from repro.perf.batch import BatchSearchExecutor
from repro.perf.lru import LRUCache
from repro.perf.substrates import SubstrateCache
from repro.query.parser import StructuredQuery, parse_query
from repro.relational.database import Database, TupleId
from repro.relational.schema_graph import SchemaGraph
from repro.resilience.budget import QueryBudget, make_budget
from repro.resilience.circuit import CircuitBreaker
from repro.resilience.degradation import KNOWN_METHODS, fallback_chain
from repro.resilience.errors import (
    BudgetExceededError,
    QueryParseError,
    ReproError,
    SubstrateBuildError,
)
from repro.resilience.failpoints import fail_point
from repro.schema_search.candidate_networks import generate_candidate_networks
from repro.schema_search.topk import topk_global_pipeline, topk_shared
from repro.storage import BACKEND_NAMES

#: cached_property-backed structures derived from database *contents*
#: (the schema graph only depends on the schema, which is immutable).
_DATA_DERIVED = ("index", "data_graph", "cleaner", "distance_index", "tastier")


class KeywordSearchEngine:
    """End-to-end keyword search over a relational database."""

    def __init__(
        self,
        db: Database,
        max_cn_size: int = 4,
        clean_queries: bool = True,
        result_cache_size: int = 512,
        enable_caches: bool = True,
        cn_execution: str = "shared",
        cn_workers: int = 1,
        incremental_updates: bool = True,
        trace: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        backend: str = "dict",
        backend_options: Optional[Dict[str, object]] = None,
    ):
        if cn_execution not in ("shared", "pipeline"):
            raise QueryParseError(
                f"unknown cn_execution {cn_execution!r} "
                "(choices: shared, pipeline)"
            )
        if backend not in BACKEND_NAMES:
            raise QueryParseError(
                f"unknown storage backend {backend!r} "
                f"(choices: {', '.join(BACKEND_NAMES)})"
            )
        self.db = db
        #: Storage backend name for the inverted index ("dict",
        #: "columnar", "disk") plus backend-specific options (e.g.
        #: ``{"path": ..., "cache_pages": ...}`` for "disk").
        self.backend_name = backend
        self.backend_options = dict(backend_options) if backend_options else None
        self.max_cn_size = max_cn_size
        self.clean_queries = clean_queries
        self.enable_caches = enable_caches
        #: ``"shared"`` evaluates a query's CNs through a
        #: :class:`~repro.schema_search.evaluate.SharedCNEvaluator`
        #: (operator-level join sharing); ``"pipeline"`` keeps the
        #: bound-driven global pipeline.
        self.cn_execution = cn_execution
        #: Worker pool width for shared CN evaluation; 1 (the default)
        #: stays sequential, which maximises sharing and avoids nested
        #: pools under :meth:`search_many`.
        self.cn_workers = max(1, int(cn_workers))
        self.incremental_updates = incremental_updates
        self.substrates = SubstrateCache(
            db,
            lambda: self.index,
            lambda: self.schema_graph,
            incremental=incremental_updates,
        )
        self._result_cache = LRUCache(result_cache_size)
        self._refine_cache = LRUCache(max(64, result_cache_size // 4))
        self._forms_cache = LRUCache(64)
        # text -> canonical StructuredQuery; cleaning depends on the
        # index vocabulary, so this drops whenever data_version moves.
        self._parse_cache = LRUCache(1024)
        #: Optional Keyword++ model consulted by the ``expand=kpp``
        #: response-pipeline knob (see :mod:`repro.query.pipeline`).
        self.keyword_model = None
        self._served_version = db.data_version
        self._sharing_lock = threading.Lock()
        self._sharing: Dict[str, int] = {
            "queries": 0,
            "joins_executed": 0,
            "joins_saved": 0,
            "reuse_hits": 0,
            "subexpressions_materialized": 0,
            "semijoin_pruned": 0,
        }
        # Shared by every batch executor created against this engine, so
        # repeated substrate-build failures keep tripping it across
        # batches (see repro.resilience.circuit).
        self.circuit_breaker = CircuitBreaker(
            on_transition=self._on_breaker_transition
        )
        #: When True, every :meth:`search` builds a span tree and
        #: attaches it as ``result.trace`` (per-call ``trace=`` wins).
        self.trace_enabled = trace
        #: Named counters / gauges / histograms for this engine; pass
        #: ``metrics=get_global_registry()`` to aggregate process-wide.
        #: A private registry is the default so tests and concurrent
        #: engines stay isolated.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.substrates.metrics = self.metrics
        self._profiler: Optional[Profiler] = None
        self._wire_metrics()

    # ------------------------------------------------------------------
    # Lazily built shared structures
    # ------------------------------------------------------------------
    @cached_property
    def index(self) -> InvertedIndex:
        try:
            fail_point("engine.index_build")
            return InvertedIndex(
                self.db,
                backend=self.backend_name,
                backend_options=self.backend_options,
            )
        except ReproError:
            raise
        except Exception as exc:
            raise SubstrateBuildError("index", exc) from exc

    @cached_property
    def schema_graph(self) -> SchemaGraph:
        return SchemaGraph(self.db.schema)

    @cached_property
    def data_graph(self) -> DataGraph:
        try:
            fail_point("engine.data_graph_build")
            return build_data_graph(self.db)
        except ReproError:
            raise
        except Exception as exc:
            raise SubstrateBuildError("data_graph", exc) from exc

    @cached_property
    def cleaner(self) -> QueryCleaner:
        return QueryCleaner(self.index)

    @cached_property
    def distance_index(self) -> KeywordDistanceIndex:
        return KeywordDistanceIndex(self.data_graph, self.index)

    @cached_property
    def tastier(self) -> Tastier:
        return Tastier(self.data_graph, self.index)

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def _sync_version(self) -> None:
        """Reconcile derived structures with a mutated database.

        With ``incremental_updates`` on, the substrate cache patches
        the warm inverted index and memoised tuple sets in place
        (insert-only data model), so only the graph-derived structures
        — which hold per-tuple nodes — and the query-result caches are
        dropped; they rebuild lazily.  If the delta could not be
        applied (or incremental updates are off), everything drops as
        before.
        """
        version = self.db.data_version
        if version == self._served_version:
            return
        self._served_version = version
        if self.incremental_updates:
            self.substrates.check_version()
            if self.substrates.last_delta_applied:
                for attr in ("data_graph", "cleaner", "distance_index", "tastier"):
                    self.__dict__.pop(attr, None)
                self._result_cache.clear()
                self._refine_cache.clear()
                self._forms_cache.clear()
                self._parse_cache.clear()
                return
        self.invalidate_caches()

    def invalidate_caches(self) -> None:
        """Explicitly drop all derived structures and query caches."""
        stale_index = self.__dict__.get("index")
        for attr in _DATA_DERIVED:
            self.__dict__.pop(attr, None)
        if stale_index is not None:
            # Release backend resources (ephemeral disk segments, mmaps).
            stale_index.close()
        self.substrates.clear()
        self._result_cache.clear()
        self._refine_cache.clear()
        self._forms_cache.clear()
        self._parse_cache.clear()

    def cache_stats(self) -> Dict[str, object]:
        """Hit/miss/eviction counters for dashboards and benchmarks.

        Superseded by :meth:`MetricsRegistry.snapshot` (``self.metrics``),
        which folds these counters in as named metrics alongside query
        counters and latency histograms; kept as a thin compatibility
        shim over the same live counters.
        """
        with self._sharing_lock:
            sharing = dict(self._sharing)
        return {
            "results": self._result_cache.stats.as_dict(),
            "refine": self._refine_cache.stats.as_dict(),
            "forms": self._forms_cache.stats.as_dict(),
            "substrates": self.substrates.stats(),
            "sharing": sharing,
        }

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _wire_metrics(self) -> None:
        """Surface component counters as callback gauges.

        Callback gauges read the live legacy counters at snapshot time,
        so the LRU / substrate / sharing / breaker bookkeeping appears
        in ``metrics.snapshot()`` without double-writing every
        increment.
        """
        reg = self.metrics
        caches = (
            ("results", self._result_cache),
            ("refine", self._refine_cache),
            ("forms", self._forms_cache),
        )
        for label, cache in caches:
            for field in ("hits", "misses", "evictions", "invalidations", "coalesced"):
                reg.register_gauge(
                    f"cache.{label}.{field}",
                    lambda c=cache, f=field: getattr(c.stats, f),
                )
        for field in self._sharing:
            reg.register_gauge(
                f"sharing.{field}",
                lambda f=field: self._sharing[f],
            )
        reg.register_gauge(
            "substrates.builds",
            lambda: sum(self.substrates.builds.values()),
        )
        reg.register_gauge(
            "substrates.invalidations", lambda: self.substrates.invalidations
        )
        reg.register_gauge(
            "substrates.patches_applied",
            lambda: self.substrates.patches["applied"],
        )
        reg.register_gauge("substrates.bytes", lambda: self.substrates.memo_bytes())
        # Built-index residency; reads 0 until the lazy index exists so
        # polling metrics never forces a substrate build.
        reg.register_gauge(
            "storage.resident_bytes",
            lambda: (
                self.__dict__["index"].resident_bytes()
                if "index" in self.__dict__
                else 0
            ),
        )
        reg.register_gauge("circuit.state", lambda: self.circuit_breaker.state)
        reg.register_gauge("circuit.opens", lambda: self.circuit_breaker.opens)
        reg.register_gauge(
            "circuit.time_in_state_s",
            lambda: round(self.circuit_breaker.time_in_state_s(), 3),
        )

    def _on_breaker_transition(self, old_state: str, new_state: str) -> None:
        self.metrics.inc(f"circuit.transitions.{new_state}")

    @contextmanager
    def profiled(self) -> Iterator[Profiler]:
        """Trace every query in the block; yields the :class:`Profiler`.

        ::

            with engine.profiled() as prof:
                engine.search("widom xml")
                engine.search("john sigmod")
            print(prof.summary())   # per-stage wall-clock totals

        Tracing reverts to the constructor setting when the block
        exits.  Batch workers record into the same profiler (it is
        lock-protected).
        """
        profiler = Profiler()
        prev_enabled, prev_profiler = self.trace_enabled, self._profiler
        self.trace_enabled = True
        self._profiler = profiler
        try:
            yield profiler
        finally:
            self.trace_enabled = prev_enabled
            self._profiler = prev_profiler

    def _record_sharing(self, stats) -> None:
        """Fold one schema search's JoinStats into the sharing totals."""
        with self._sharing_lock:
            totals = self._sharing
            totals["queries"] += 1
            totals["joins_executed"] += stats.joins_executed
            totals["joins_saved"] += stats.joins_saved
            totals["reuse_hits"] += stats.reuse_hits
            totals["subexpressions_materialized"] += stats.subexpressions_materialized
            totals["semijoin_pruned"] += stats.semijoin_pruned

    def _query_key(self, query, method: str, k: int) -> Tuple:
        """Cache key: canonical StructuredQuery identity + method + k.

        *query* may be raw text or an already-parsed
        :class:`StructuredQuery`.  Keying on the post-parse,
        post-clean canonical form (not the raw token stream) means two
        texts that clean to the same query share one LRU entry, while
        structurally different queries that happen to tokenize
        identically (``author:smith`` vs ``author smith``) get
        distinct keys.
        """
        if isinstance(query, str):
            query = self._parse_canonical(query)
        return (query.cache_key(), method, k)

    # ------------------------------------------------------------------
    # Query handling
    # ------------------------------------------------------------------
    def parse(self, text: str, tracer: Optional[Tracer] = None) -> Query:
        """Parse and (optionally) clean a raw query string."""
        with trace_span(tracer, "parse") as psp:
            query = Query.parse(text)
            psp.add("keywords", len(query.keywords))
            if not self.clean_queries or not query.keywords:
                return query
            with trace_span(tracer, "clean") as csp:
                cleaning: CleaningResult = self.cleaner.clean(list(query.keywords))
                cleaned = cleaning.cleaned_tokens()
                changed = bool(cleaned) and cleaned != list(query.keywords)
                csp.tag("changed", changed)
            if changed:
                return query.with_keywords(cleaned)
            return query

    def _parse_canonical(self, text: str) -> StructuredQuery:
        """Parse DSL text into the canonical :class:`StructuredQuery`.

        Bare keyword queries go through the same cleaning the legacy
        :meth:`parse` applies, so the canonical form (and therefore the
        result-cache key) is clean-invariant.  Memoised per text; the
        memo drops with the other caches whenever the database version
        moves, because cleaning reads the index vocabulary.
        """
        cached = self._parse_cache.get(text) if self.enable_caches else None
        if cached is not None:
            return cached
        query = parse_query(text)
        if self.clean_queries and query.groups and query.is_bare:
            tokens = query.bare_keywords()
            cleaning: CleaningResult = self.cleaner.clean(list(tokens))
            cleaned = cleaning.cleaned_tokens()
            if cleaned and cleaned != tokens:
                query = query.with_bare_keywords(cleaned)
        if self.enable_caches:
            self._parse_cache.put(text, query)
        return query

    def suggest(self, prefix: str, limit: int = 8) -> List[str]:
        """Type-ahead keyword completions."""
        return self.tastier.complete_keyword(prefix, limit=limit)

    def suggest_answers(
        self,
        prefixes: Sequence[str],
        k: int = 10,
        budget: Optional[QueryBudget] = None,
        timeout_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
    ):
        """Budgeted TASTIER type-ahead answers (prefix keyword search).

        Threads an optional :class:`QueryBudget` through
        :meth:`Tastier.search`; on exhaustion the best partial
        :class:`~repro.ambiguity.autocomplete.TastierResult` comes back
        with ``degraded`` set instead of scanning the rest of the
        vocabulary range.
        """
        self._sync_version()
        if budget is None:
            budget = make_budget(timeout_ms, max_expansions)
        return self.tastier.search(list(prefixes), k=k, budget=budget)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        text: str,
        k: int = 10,
        method: str = "schema",
        use_cache: bool = True,
        budget: Optional[QueryBudget] = None,
        timeout_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
        fallback: bool = False,
        trace: Optional[bool] = None,
    ) -> ResultSet:
        """Top-k search.

        ``method`` selects the algorithm family the tutorial contrasts:
        ``"schema"`` (CN enumeration + global-pipeline top-k),
        ``"banks"`` (backward expansion), ``"banks2"`` (frontier
        prioritised), ``"steiner"`` (exact group Steiner tree, top-1),
        ``"distinct_root"`` (index-assisted distinct-root semantics),
        ``"ease"`` (r-radius Steiner subgraphs), ``"index_only"``
        (single-tuple TF·IDF scoring straight off the inverted index).

        ``use_cache=False`` bypasses the result LRU (substrate memos
        still apply); results are identical either way.

        Resilience knobs: a :class:`QueryBudget` (or the ``timeout_ms``
        / ``max_expansions`` shorthands) bounds the query; exhaustion
        returns the best partial results with ``degraded`` set instead
        of raising.  ``fallback=True`` additionally descends the
        degradation ladder (e.g. steiner → banks → index_only) when a
        rung exhausts with nothing to show.  Budgeted or ladder queries
        bypass the result LRU so partial answers are never cached.

        ``trace=True`` (or ``KeywordSearchEngine(trace=True)``) attaches
        a span tree covering the pipeline stages as ``result.trace``;
        tracing never changes the evaluation order, so results are
        byte-identical with it on or off.

        *text* may use the fielded query DSL (``author:smith``,
        ``year:2008..2012``, ``AND``/``OR``/``NOT``, quoted phrases,
        ``term^2`` — see :mod:`repro.query.parser`); bare keyword
        queries take the legacy execution path byte-identically.
        """
        self._sync_version()
        if method not in KNOWN_METHODS:
            raise QueryParseError(
                f"unknown method {method!r} (choices: {', '.join(KNOWN_METHODS)})"
            )
        return self._search_impl(
            self._parse_canonical(text),
            k=k,
            method=method,
            use_cache=use_cache,
            budget=budget if budget is not None else make_budget(timeout_ms, max_expansions),
            fallback=fallback,
            trace=trace,
        )

    def search_structured(
        self,
        query: StructuredQuery,
        k: int = 10,
        method: str = "schema",
        use_cache: bool = True,
        budget: Optional[QueryBudget] = None,
        timeout_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
        fallback: bool = False,
        trace: Optional[bool] = None,
    ) -> ResultSet:
        """Top-k search from an already-parsed :class:`StructuredQuery`.

        Same contract as :meth:`search`; used by the response pipeline
        after expansion rewrites, where no DSL text exists for the
        rewritten query.  A bare *query* is byte-identical to
        ``search(query.raw, ...)``.
        """
        self._sync_version()
        if method not in KNOWN_METHODS:
            raise QueryParseError(
                f"unknown method {method!r} (choices: {', '.join(KNOWN_METHODS)})"
            )
        return self._search_impl(
            query,
            k=k,
            method=method,
            use_cache=use_cache,
            budget=budget if budget is not None else make_budget(timeout_ms, max_expansions),
            fallback=fallback,
            trace=trace,
        )

    def _search_impl(
        self,
        query: StructuredQuery,
        k: int,
        method: str,
        use_cache: bool,
        budget: Optional[QueryBudget],
        fallback: bool,
        trace: Optional[bool],
    ) -> ResultSet:
        tracing = self.trace_enabled if trace is None else trace
        tracer = Tracer() if tracing else None
        metrics = self.metrics
        metrics.inc("query.count")
        start_s = time.perf_counter()
        with trace_span(tracer, "search") as root:
            root.tag("method", method).tag("k", k)
            root.tag("query", query.canonical())
            if budget is not None or fallback:
                with trace_span(tracer, "cache_lookup") as csp:
                    csp.tag("outcome", "bypass")
                results = self._run_query(query, k, method, budget, fallback, tracer)
            elif not (use_cache and self.enable_caches):
                with trace_span(tracer, "cache_lookup") as csp:
                    csp.tag("outcome", "bypass")
                results = self._run_query(query, k, method, None, False, tracer)
            else:
                results = self._serve_cached(query, k, method, tracer)
        metrics.observe(
            "query.latency_ms", (time.perf_counter() - start_s) * 1000.0
        )
        if results.degraded:
            metrics.inc("query.degraded")
        if budget is not None and budget.exhausted:
            metrics.inc("budget.exhausted")
        if tracer is not None:
            finished = tracer.finish()
            results.trace = finished
            profiler = self._profiler
            if profiler is not None:
                profiler.record(finished)
        return results

    def _serve_cached(
        self, query: StructuredQuery, k: int, method: str, tracer: Optional[Tracer]
    ) -> ResultSet:
        """Result-LRU path with per-key single-flight misses.

        The first lookup counts a hit or miss as before.  On a miss the
        per-key lock serialises concurrent computations of the same
        query: one thread computes while the rest wait, re-check via the
        non-counting :meth:`LRUCache.peek`, and are served the freshly
        published entry (counted as ``coalesced`` — duplicate
        computations avoided).  The returned set is always a clone so
        callers can sort/slice without poisoning the cache; the clone
        carries its own trace (a cache hit's trace describes the
        lookup, tagged ``cache_hit=True``, never the original compute)
        while degradation metadata is preserved from the cached entry.
        """
        key = self._query_key(query, method, k)
        cache = self._result_cache
        lookup_span = trace_span(tracer, "cache_lookup")
        with lookup_span as csp:
            cached = cache.get(key)
            if cached is not None:
                csp.tag("outcome", "hit").tag("cache_hit", True)
        if cached is not None:
            self.metrics.inc("query.cache_hits")
            return cached.clone()
        with cache.key_lock(key):
            cached = cache.peek(key)
            if cached is not None:
                # A concurrent miss on the same key published while we
                # waited: serve it instead of recomputing.
                cache.stats.record_coalesced()
                self.metrics.inc("query.coalesced")
                lookup_span.tag("outcome", "coalesced").tag("cache_hit", True)
                return cached.clone()
            lookup_span.tag("outcome", "miss")
            computed_at = self.db.data_version
            results = self._run_query(query, k, method, None, False, tracer)
            # Chaos hook: delay between computing and publishing to the
            # LRU, to widen the race window against concurrent mutation.
            fail_point("cache.result_put", key=query.raw)
            if self.db.data_version == computed_at:
                # Version-guarded publish: results computed against a
                # since-mutated database are served but never cached, so
                # a slow compute can't pin a stale entry past
                # invalidation.
                cache.put(key, results)
        return results.clone()

    def _run_query(
        self,
        query: StructuredQuery,
        k: int,
        method: str,
        budget: Optional[QueryBudget],
        fallback: bool,
        tracer: Optional[Tracer] = None,
    ) -> ResultSet:
        """Execute a canonical query: legacy path for bare, else compiled.

        Bare queries re-enter the untouched pre-DSL machinery through
        the same :class:`Query` object the legacy parse would have
        produced, so their results stay byte-identical.
        """
        fail_point("engine.search", key=query.raw)
        # The canonical parse is memoised outside the trace; re-emit the
        # parse/clean stages so span coverage matches the legacy flow.
        with trace_span(tracer, "parse") as psp:
            psp.add("keywords", sum(len(g) for g in query.groups))
            psp.tag("bare", query.is_bare)
            if self.clean_queries and query.groups:
                with trace_span(tracer, "clean") as csp:
                    csp.tag("changed", query.cleaned_from is not None)
        if query.is_empty:
            return ResultSet(method=method)
        if query.is_bare:
            legacy = Query(
                raw=query.raw,
                keywords=tuple(query.bare_keywords()),
                cleaned_from=query.cleaned_from,
            )
            return self._run_ladder(legacy, k, method, budget, fallback, tracer)
        return self._run_structured(query, k, method, budget, fallback, tracer)

    def _run_structured(
        self,
        query: StructuredQuery,
        k: int,
        method: str,
        budget: Optional[QueryBudget],
        fallback: bool,
        tracer: Optional[Tracer] = None,
    ) -> ResultSet:
        """Compile the DSL constructs onto *method* and run the ladder."""
        from repro.query.compiler import compile_query, predicate_only_results

        with trace_span(tracer, "compile") as csp:
            compiled = compile_query(self, query)
            csp.add("branches", len(compiled.branches))
            csp.tag("filtered", compiled.row_filter is not None)
        if not compiled.branches:
            # Pure-structural query (predicates only): return the
            # satisfying rows directly, no keywords to join on.
            with trace_span(tracer, "evaluate"):
                return ResultSet(
                    predicate_only_results(self, compiled, k), method=method
                )
        return self._run_ladder(compiled, k, method, budget, fallback, tracer)

    def _run_search(
        self,
        text: str,
        k: int,
        method: str,
        budget: Optional[QueryBudget],
        fallback: bool,
        tracer: Optional[Tracer] = None,
    ) -> ResultSet:
        """One search from raw text (legacy entry, kept for callers).

        On the default path this never raises for budget exhaustion:
        the algorithms return partials and the budget's ``exhausted``
        flag marks the result set degraded.  Structural errors (e.g.
        too many groups for the exact Steiner DP) propagate unless
        ``fallback`` is on, in which case they demote to the next rung.
        """
        fail_point("engine.search", key=text)
        query = self.parse(text, tracer=tracer)
        if not query.keywords:
            return ResultSet(method=method)
        return self._run_ladder(query, k, method, budget, fallback, tracer)

    def _run_ladder(
        self,
        query,
        k: int,
        method: str,
        budget: Optional[QueryBudget],
        fallback: bool,
        tracer: Optional[Tracer] = None,
    ) -> ResultSet:
        """Walk the degradation ladder for a parsed (or compiled) query.

        *query* is either a legacy :class:`Query` (bare keywords,
        dispatched through the untouched per-method paths) or a
        :class:`~repro.query.compiler.CompiledQuery` (structured,
        dispatched through the branch executor).
        """
        chain = fallback_chain(method) if fallback else (method,)
        last_reason: Optional[str] = None
        for i, rung in enumerate(chain):
            if i > 0 and budget is not None:
                budget.renew()
            is_last = i == len(chain) - 1
            try:
                if isinstance(query, Query):
                    results = self._dispatch(query, k, rung, budget, tracer)
                else:
                    from repro.query.compiler import execute_structured

                    results = execute_structured(
                        self, query, k, rung, budget, tracer
                    )
            except BudgetExceededError as exc:
                # Exhaustion escaped an algorithm with no partial answer.
                last_reason = str(exc)
                if is_last:
                    break
                continue
            except QueryParseError:
                raise
            except ValueError as exc:
                # Structurally infeasible rung (e.g. steiner group cap).
                if not fallback:
                    raise
                last_reason = str(exc)
                if is_last:
                    break
                continue
            exhausted = budget is not None and budget.exhausted
            if results or not exhausted or is_last:
                fell_back = rung != method
                reason = (
                    budget.reason
                    if exhausted and budget is not None
                    else (last_reason if fell_back else None)
                )
                return ResultSet(
                    results,
                    method=rung,
                    degraded=exhausted or fell_back,
                    degraded_reason=reason,
                    fallback_from=method if fell_back else None,
                )
            # Exhausted with nothing to show: descend the ladder.
            last_reason = budget.reason if budget is not None else None
        return ResultSet(
            [],
            method=chain[-1],
            degraded=True,
            degraded_reason=last_reason or "budget exhausted",
            fallback_from=method if chain[-1] != method else None,
        )

    def _dispatch(
        self,
        query: Query,
        k: int,
        method: str,
        budget: Optional[QueryBudget],
        tracer: Optional[Tracer] = None,
    ) -> List[SearchResult]:
        fail_point("engine.method", key=method)
        if method == "schema":
            return self._search_schema(query, k, budget, tracer)
        if method in ("banks", "banks2"):
            return self._search_banks(
                query, k, bidirectional=method == "banks2", budget=budget,
                tracer=tracer,
            )
        if method == "steiner":
            return self._search_steiner(query, budget, tracer)
        if method == "distinct_root":
            return self._search_distinct_root(query, k, tracer)
        if method == "ease":
            return self._search_ease(query, k, budget, tracer)
        if method == "index_only":
            return self._search_index_only(query, k, budget, tracer)
        raise QueryParseError(f"unknown method {method!r}")

    def search_many(
        self,
        queries: Sequence,
        k: int = 10,
        method: str = "schema",
        max_workers: int = 8,
        timeout_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
        fallback: bool = False,
        raise_on_error: bool = False,
        detailed: bool = False,
    ):
        """Concurrent batch search (slides 129-133: shared execution).

        *queries* may mix plain strings, ``(text, method[, k])`` tuples
        and :class:`~repro.perf.batch.BatchQuery` objects.  Duplicate
        requests are computed once; results come back in request order
        and are identical to sequential :meth:`search` calls.

        Failures are isolated per query: an erroring query yields an
        empty :class:`ResultSet` with ``error`` set (or, with
        ``detailed=True``, a full
        :class:`~repro.perf.batch.BatchOutcome`) while its neighbours
        complete normally.  ``raise_on_error=True`` restores the old
        fail-the-batch behavior.
        """
        executor = BatchSearchExecutor(self, max_workers=max_workers)
        if detailed:
            return executor.run_outcomes(
                queries,
                k=k,
                method=method,
                timeout_ms=timeout_ms,
                max_expansions=max_expansions,
                fallback=fallback,
            )
        return executor.run(
            queries,
            k=k,
            method=method,
            timeout_ms=timeout_ms,
            max_expansions=max_expansions,
            fallback=fallback,
            raise_on_error=raise_on_error,
        )

    def _search_schema(
        self,
        query: Query,
        k: int,
        budget: Optional[QueryBudget] = None,
        tracer: Optional[Tracer] = None,
    ) -> List[SearchResult]:
        keywords = list(query.keywords)
        with trace_span(tracer, "substrate_build") as ssp:
            tuple_sets = self.substrates.tuple_sets(keywords)
            ssp.add("tuple_set_keys", len(tuple_sets.non_free_keys()))
        with trace_span(tracer, "cn_enumerate") as nsp:
            if budget is None:
                cns = self.substrates.candidate_networks(keywords, self.max_cn_size)
            else:
                # Budgeted enumeration may truncate; build outside the
                # memo so a partial CN list is never cached as if
                # complete.
                cns = generate_candidate_networks(
                    self.schema_graph,
                    tuple_sets,
                    max_size=self.max_cn_size,
                    budget=budget,
                )
            nsp.add("cns", len(cns))
        if not cns:
            return []
        if self.cn_execution == "shared":
            result = topk_shared(
                cns,
                tuple_sets,
                self.index,
                keywords,
                k=k,
                budget=budget,
                max_workers=self.cn_workers,
                tracer=tracer,
            )
        else:
            result = topk_global_pipeline(
                cns, tuple_sets, self.index, keywords, k=k, budget=budget,
                tracer=tracer,
            )
        self._record_sharing(result.stats)
        return [
            SearchResult(score=score, network=label, joined=joined)
            for score, label, joined in result.results
        ]

    def _search_index_only(
        self,
        query: Query,
        k: int,
        budget: Optional[QueryBudget] = None,
        tracer: Optional[Tracer] = None,
    ) -> List[SearchResult]:
        """Terminal ladder rung: score single tuples, no joins, no graph.

        Every tuple matching any keyword is scored with the same
        monotonic TF·IDF the CN pipeline uses; the top-k single-tuple
        answers come back.  Cheap enough to finish under any budget
        that permits k candidate scorings.
        """
        from repro.schema_search.scoring import tuple_score

        keywords = list(query.keywords)
        with trace_span(tracer, "substrate_build"):
            index = self.index
        scored: Dict[TupleId, float] = {}
        with trace_span(tracer, "evaluate") as esp:
            try:
                for keyword in keywords:
                    for tid in index.matching_tuples_view(keyword.lower()):
                        if tid in scored:
                            continue
                        if budget is not None:
                            budget.tick_candidates()
                        scored[tid] = tuple_score(index, tid, keywords)
            except BudgetExceededError:
                pass  # partial scoring; caller sees budget.exhausted
            esp.add("tuples_scored", len(scored))
        with trace_span(tracer, "topk") as tsp:
            top = sorted(scored.items(), key=lambda item: (-item[1], item[0]))[:k]
            out = []
            for tid, score in top:
                joined = self._tree_to_joined({tid})
                out.append(
                    SearchResult(
                        score=score,
                        network=f"index-only({tid.table})",
                        joined=joined,
                    )
                )
            tsp.add("results", len(out))
        return out

    def _groups(self, keywords: Sequence[str]) -> Optional[List[List[TupleId]]]:
        return self.substrates.keyword_groups(keywords)

    def _search_banks(
        self,
        query: Query,
        k: int,
        bidirectional: bool,
        budget: Optional[QueryBudget] = None,
        tracer: Optional[Tracer] = None,
    ) -> List[SearchResult]:
        with trace_span(tracer, "substrate_build") as ssp:
            groups = self._groups(query.keywords)
            ssp.add("keyword_groups", len(groups) if groups else 0)
        if groups is None:
            return []
        algo = banks_bidirectional if bidirectional else banks_backward
        with trace_span(tracer, "evaluate") as esp:
            result = algo(
                self.data_graph,
                groups,
                k=k,
                budget=budget,
                span=esp if tracer is not None else None,
            )
            esp.add("trees", len(result.trees))
        with trace_span(tracer, "score") as psp:
            out = []
            for tree in result.trees:
                joined = self._tree_to_joined(tree.nodes)
                out.append(
                    SearchResult(
                        score=1.0 / (1.0 + tree.weight),
                        network=f"banks-tree(root={tree.root})",
                        joined=joined,
                    )
                )
            psp.add("results", len(out))
        return out

    def _search_steiner(
        self,
        query: Query,
        budget: Optional[QueryBudget] = None,
        tracer: Optional[Tracer] = None,
    ) -> List[SearchResult]:
        with trace_span(tracer, "substrate_build") as ssp:
            groups = self._groups(query.keywords)
            ssp.add("keyword_groups", len(groups) if groups else 0)
        if groups is None:
            return []
        with trace_span(tracer, "evaluate") as esp:
            tree = group_steiner_dp(
                self.data_graph,
                groups,
                budget=budget,
                span=esp if tracer is not None else None,
            )
            esp.add("trees", 0 if tree is None else 1)
        if tree is None:
            return []
        with trace_span(tracer, "score"):
            joined = self._tree_to_joined(tree.nodes)
            out = [
                SearchResult(
                    score=1.0 / (1.0 + tree.weight),
                    network=f"steiner(weight={tree.weight:.1f})",
                    joined=joined,
                )
            ]
        return out

    def _search_distinct_root(
        self, query: Query, k: int, tracer: Optional[Tracer] = None
    ) -> List[SearchResult]:
        from repro.graph_search.semantics import distinct_root_results

        with trace_span(tracer, "substrate_build") as ssp:
            groups = self._groups(query.keywords)
            ssp.add("keyword_groups", len(groups) if groups else 0)
            if groups is not None:
                dmax = self.distance_index.max_distance
        if groups is None:
            return []
        with trace_span(tracer, "evaluate") as esp:
            answers = distinct_root_results(
                self.data_graph, groups, dmax=dmax, k=k
            )
            esp.add("answers", len(answers))
        with trace_span(tracer, "score") as psp:
            out = []
            for answer in answers:
                nodes = {answer.root, *(m for m in answer.matches if m is not None)}
                out.append(
                    SearchResult(
                        score=1.0 / (1.0 + answer.cost),
                        network=f"distinct-root(root={answer.root})",
                        joined=self._tree_to_joined(nodes),
                    )
                )
            psp.add("results", len(out))
        return out

    def _search_ease(
        self,
        query: Query,
        k: int,
        budget: Optional[QueryBudget] = None,
        tracer: Optional[Tracer] = None,
    ) -> List[SearchResult]:
        from repro.graph_search.ease import r_radius_steiner_graphs

        with trace_span(tracer, "substrate_build") as ssp:
            groups = self._groups(query.keywords)
            ssp.add("keyword_groups", len(groups) if groups else 0)
        if groups is None:
            return []
        with trace_span(tracer, "evaluate") as esp:
            answers = r_radius_steiner_graphs(
                self.data_graph, groups, r=2, k=k, budget=budget
            )
            esp.add("answers", len(answers))
        with trace_span(tracer, "score") as psp:
            out = [
                SearchResult(
                    score=1.0 / answer.size(),
                    network=f"ease(center={answer.center})",
                    joined=self._tree_to_joined(answer.nodes),
                )
                for answer in answers
            ]
            psp.add("results", len(out))
        return out

    def _tree_to_joined(self, nodes) -> "JoinedRow":
        from repro.relational.executor import JoinedRow

        ordered = sorted(nodes)
        rows = tuple(self.db.row(tid) for tid in ordered)
        aliases = tuple(f"n{i}" for i in range(len(rows)))
        return JoinedRow(aliases, rows)

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def refine_terms(
        self,
        text: str,
        k: int = 8,
        mode: str = "cooccurrence",
        use_cache: bool = True,
    ) -> List[Tuple[str, float]]:
        """Suggested refinement terms for a query (slides 76-78)."""
        self._sync_version()
        if use_cache and self.enable_caches:
            key = (tuple(tokenize(text)), k, mode)
            cached = self._refine_cache.get_or_compute(
                key, lambda: self._refine_terms_uncached(text, k, mode)
            )
            return list(cached)
        return self._refine_terms_uncached(text, k, mode)

    def _refine_terms_uncached(
        self, text: str, k: int, mode: str
    ) -> List[Tuple[str, float]]:
        query = self.parse(text)
        if mode == "cooccurrence":
            return [
                (t, float(c))
                for t, c in frequent_cooccurring_terms(
                    self.index, list(query.keywords), k=k
                )
            ]
        results = self.search(text, k=20)
        rows = [row for r in results for row in r.joined.distinct_rows()]
        return data_cloud(self.db, rows, list(query.keywords), k=k)

    def differentiate(
        self, results: Sequence[SearchResult], budget: int = 3
    ) -> Dict[object, List[Tuple[str, str]]]:
        """Comparison table across results (slides 149-153)."""
        sets = []
        for i, result in enumerate(results):
            features = []
            for row in result.joined.distinct_rows():
                for column in row.table.schema.text_columns:
                    value = row[column]
                    if value is not None:
                        features.append((f"{row.table.name}:{column}", str(value)))
            sets.append(FeatureSet.of(i, features))
        select_features_greedy(sets, budget=budget)
        return {fs.result_id: sorted(fs.selected) for fs in sets}

    def suggest_forms(self, text: str, k: int = 5):
        """Ranked query forms for the keyword query (slides 54-58).

        The skeleton → form → :class:`FormIndex` pipeline only depends
        on the schema and database contents, so it is memoised in the
        substrate cache and reused across calls; only ranking runs per
        query.
        """
        self._sync_version()
        query = self.parse(text)
        key = (tuple(query.keywords), k)
        cached = self._forms_cache.get(key) if self.enable_caches else None
        if cached is not None:
            return list(cached)
        _, _, form_index = self.substrates.form_pipeline(max_skeleton_size=3)
        ranked = rank_forms(form_index, list(query.keywords), k=k)
        if self.enable_caches:
            self._forms_cache.put(key, ranked)
        return list(ranked)
