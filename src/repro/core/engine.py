"""Relational keyword search engine facade.

Wires the full tutorial pipeline over one database:

    query text -> clean (noisy channel + segmentation)
               -> search (schema-based CN top-k | graph-based BANKS |
                          distinct-root over distance index)
               -> analyse (data cloud, co-occurring terms, facets,
                           differentiation, form suggestions)

Substructures (indexes, graphs, tuple sets) are built lazily and cached.
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ambiguity.autocomplete import Tastier
from repro.ambiguity.cleaning import CleaningResult, QueryCleaner
from repro.analysis.clouds import data_cloud, frequent_cooccurring_terms
from repro.analysis.differentiation import (
    FeatureSet,
    select_features_greedy,
)
from repro.core.query import Query
from repro.core.results import SearchResult
from repro.forms.generation import generate_forms, generate_skeletons
from repro.forms.matching import FormIndex, rank_forms
from repro.graph.data_graph import DataGraph, build_data_graph
from repro.graph_search.banks import banks_backward, banks_bidirectional
from repro.graph_search.steiner import group_steiner_dp
from repro.index.distance import KeywordDistanceIndex
from repro.index.inverted import InvertedIndex
from repro.relational.database import Database, TupleId
from repro.relational.schema_graph import SchemaGraph
from repro.schema_search.candidate_networks import generate_candidate_networks
from repro.schema_search.topk import topk_global_pipeline
from repro.schema_search.tuple_sets import TupleSets


class KeywordSearchEngine:
    """End-to-end keyword search over a relational database."""

    def __init__(
        self,
        db: Database,
        max_cn_size: int = 4,
        clean_queries: bool = True,
    ):
        self.db = db
        self.max_cn_size = max_cn_size
        self.clean_queries = clean_queries

    # ------------------------------------------------------------------
    # Lazily built shared structures
    # ------------------------------------------------------------------
    @cached_property
    def index(self) -> InvertedIndex:
        return InvertedIndex(self.db)

    @cached_property
    def schema_graph(self) -> SchemaGraph:
        return SchemaGraph(self.db.schema)

    @cached_property
    def data_graph(self) -> DataGraph:
        return build_data_graph(self.db)

    @cached_property
    def cleaner(self) -> QueryCleaner:
        return QueryCleaner(self.index)

    @cached_property
    def distance_index(self) -> KeywordDistanceIndex:
        return KeywordDistanceIndex(self.data_graph, self.index)

    @cached_property
    def tastier(self) -> Tastier:
        return Tastier(self.data_graph, self.index)

    # ------------------------------------------------------------------
    # Query handling
    # ------------------------------------------------------------------
    def parse(self, text: str) -> Query:
        """Parse and (optionally) clean a raw query string."""
        query = Query.parse(text)
        if not self.clean_queries or not query.keywords:
            return query
        cleaning: CleaningResult = self.cleaner.clean(list(query.keywords))
        cleaned = cleaning.cleaned_tokens()
        if cleaned and cleaned != list(query.keywords):
            return query.with_keywords(cleaned)
        return query

    def suggest(self, prefix: str, limit: int = 8) -> List[str]:
        """Type-ahead keyword completions."""
        return self.tastier.complete_keyword(prefix, limit=limit)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        text: str,
        k: int = 10,
        method: str = "schema",
    ) -> List[SearchResult]:
        """Top-k search.

        ``method`` selects the algorithm family the tutorial contrasts:
        ``"schema"`` (CN enumeration + global-pipeline top-k),
        ``"banks"`` (backward expansion), ``"banks2"`` (frontier
        prioritised), ``"steiner"`` (exact group Steiner tree, top-1),
        ``"distinct_root"`` (index-assisted distinct-root semantics),
        ``"ease"`` (r-radius Steiner subgraphs).
        """
        query = self.parse(text)
        if not query.keywords:
            return []
        if method == "schema":
            return self._search_schema(query, k)
        if method in ("banks", "banks2"):
            return self._search_banks(query, k, bidirectional=method == "banks2")
        if method == "steiner":
            return self._search_steiner(query)
        if method == "distinct_root":
            return self._search_distinct_root(query, k)
        if method == "ease":
            return self._search_ease(query, k)
        raise ValueError(f"unknown method {method!r}")

    def _search_schema(self, query: Query, k: int) -> List[SearchResult]:
        keywords = list(query.keywords)
        tuple_sets = TupleSets(self.db, self.index, keywords)
        cns = generate_candidate_networks(
            self.schema_graph, tuple_sets, max_size=self.max_cn_size
        )
        if not cns:
            return []
        result = topk_global_pipeline(cns, tuple_sets, self.index, keywords, k=k)
        return [
            SearchResult(score=score, network=label, joined=joined)
            for score, label, joined in result.results
        ]

    def _groups(self, keywords: Sequence[str]) -> Optional[List[List[TupleId]]]:
        groups = [self.index.matching_tuples(k) for k in keywords]
        if any(not g for g in groups):
            return None
        return groups

    def _search_banks(
        self, query: Query, k: int, bidirectional: bool
    ) -> List[SearchResult]:
        groups = self._groups(query.keywords)
        if groups is None:
            return []
        algo = banks_bidirectional if bidirectional else banks_backward
        result = algo(self.data_graph, groups, k=k)
        out = []
        for tree in result.trees:
            joined = self._tree_to_joined(tree.nodes)
            out.append(
                SearchResult(
                    score=1.0 / (1.0 + tree.weight),
                    network=f"banks-tree(root={tree.root})",
                    joined=joined,
                )
            )
        return out

    def _search_steiner(self, query: Query) -> List[SearchResult]:
        groups = self._groups(query.keywords)
        if groups is None:
            return []
        tree = group_steiner_dp(self.data_graph, groups)
        if tree is None:
            return []
        joined = self._tree_to_joined(tree.nodes)
        return [
            SearchResult(
                score=1.0 / (1.0 + tree.weight),
                network=f"steiner(weight={tree.weight:.1f})",
                joined=joined,
            )
        ]

    def _search_distinct_root(self, query: Query, k: int) -> List[SearchResult]:
        from repro.graph_search.semantics import distinct_root_results

        groups = self._groups(query.keywords)
        if groups is None:
            return []
        answers = distinct_root_results(
            self.data_graph, groups, dmax=self.distance_index.max_distance, k=k
        )
        out = []
        for answer in answers:
            nodes = {answer.root, *(m for m in answer.matches if m is not None)}
            out.append(
                SearchResult(
                    score=1.0 / (1.0 + answer.cost),
                    network=f"distinct-root(root={answer.root})",
                    joined=self._tree_to_joined(nodes),
                )
            )
        return out

    def _search_ease(self, query: Query, k: int) -> List[SearchResult]:
        from repro.graph_search.ease import r_radius_steiner_graphs

        groups = self._groups(query.keywords)
        if groups is None:
            return []
        answers = r_radius_steiner_graphs(self.data_graph, groups, r=2, k=k)
        return [
            SearchResult(
                score=1.0 / answer.size(),
                network=f"ease(center={answer.center})",
                joined=self._tree_to_joined(answer.nodes),
            )
            for answer in answers
        ]

    def _tree_to_joined(self, nodes) -> "JoinedRow":
        from repro.relational.executor import JoinedRow

        ordered = sorted(nodes)
        rows = tuple(self.db.row(tid) for tid in ordered)
        aliases = tuple(f"n{i}" for i in range(len(rows)))
        return JoinedRow(aliases, rows)

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def refine_terms(
        self, text: str, k: int = 8, mode: str = "cooccurrence"
    ) -> List[Tuple[str, float]]:
        """Suggested refinement terms for a query (slides 76-78)."""
        query = self.parse(text)
        if mode == "cooccurrence":
            return [
                (t, float(c))
                for t, c in frequent_cooccurring_terms(
                    self.index, list(query.keywords), k=k
                )
            ]
        results = self.search(text, k=20)
        rows = [row for r in results for row in r.joined.distinct_rows()]
        return data_cloud(self.db, rows, list(query.keywords), k=k)

    def differentiate(
        self, results: Sequence[SearchResult], budget: int = 3
    ) -> Dict[object, List[Tuple[str, str]]]:
        """Comparison table across results (slides 149-153)."""
        sets = []
        for i, result in enumerate(results):
            features = []
            for row in result.joined.distinct_rows():
                for column in row.table.schema.text_columns:
                    value = row[column]
                    if value is not None:
                        features.append((f"{row.table.name}:{column}", str(value)))
            sets.append(FeatureSet.of(i, features))
        select_features_greedy(sets, budget=budget)
        return {fs.result_id: sorted(fs.selected) for fs in sets}

    def suggest_forms(self, text: str, k: int = 5):
        """Ranked query forms for the keyword query (slides 54-58)."""
        query = self.parse(text)
        skeletons = generate_skeletons(self.schema_graph, max_size=3)
        forms = generate_forms(self.db.schema, skeletons)
        form_index = FormIndex(forms, self.index)
        return rank_forms(form_index, list(query.keywords), k=k)
