"""Result objects returned by the facade engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.relational.database import TupleId
from repro.relational.executor import JoinedRow
from repro.xmltree.node import Dewey, XmlNode


@dataclass
class SearchResult:
    """One relational answer: a joining network of tuples."""

    score: float
    network: str  # CN label / semantics description
    joined: JoinedRow

    def tuple_ids(self) -> List[TupleId]:
        return [TupleId(r.table.name, r.rowid) for r in self.joined.rows]

    def describe(self) -> str:
        """Human-readable one-liner for demos and examples."""
        parts = []
        for row in self.joined.distinct_rows():
            text = row.text()
            label = f"{row.table.name}({text[:40]})" if text else row.table.name
            parts.append(label)
        return " -> ".join(parts)

    def __repr__(self) -> str:
        return f"SearchResult({self.score:.3f}, {self.network})"


class ResultSet(list):
    """A list of results plus resilience metadata.

    Subclasses ``list`` so every pre-existing caller (iteration, ``==``
    against plain lists, slicing) keeps working, while the serving path
    can report *how* the answer was produced:

    * ``degraded`` / ``degraded_reason`` — the query exhausted its
      budget (or fell down the method ladder) and the results are the
      best partial answer, not a complete one;
    * ``method`` — the method that actually produced the results;
    * ``fallback_from`` — the originally requested method, when the
      degradation ladder descended;
    * ``error`` — for batch outcomes: the structured error that made
      this result set empty;
    * ``trace`` — when tracing was enabled, the per-query span tree
      (:class:`repro.obs.trace.Trace`); ``None`` otherwise.
    """

    __slots__ = ("degraded", "degraded_reason", "method", "fallback_from", "error", "trace")

    def __init__(
        self,
        items: Sequence = (),
        *,
        method: Optional[str] = None,
        degraded: bool = False,
        degraded_reason: Optional[str] = None,
        fallback_from: Optional[str] = None,
        error: Optional[BaseException] = None,
        trace=None,
    ):
        super().__init__(items)
        self.method = method
        self.degraded = degraded
        self.degraded_reason = degraded_reason
        self.fallback_from = fallback_from
        self.error = error
        self.trace = trace

    @property
    def status(self) -> str:
        if self.error is not None:
            return "error"
        return "degraded" if self.degraded else "ok"

    def clone(self, trace=None) -> "ResultSet":
        """Shallow copy sharing items but not list identity or metadata.

        The copy carries its own ``trace`` (*trace* argument, default
        ``None``): a cached entry's stored trace describes the original
        computation, not the serving lookup, so cache hits attach a
        fresh lookup trace instead of aliasing the stored one.
        """
        return ResultSet(
            self,
            method=self.method,
            degraded=self.degraded,
            degraded_reason=self.degraded_reason,
            fallback_from=self.fallback_from,
            error=self.error,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # JSON round-tripping (shared by the HTTP routes and CLI --json)
    # ------------------------------------------------------------------
    def to_dict(self, include_rows: bool = False) -> Dict[str, Any]:
        """JSON-safe representation preserving resilience metadata.

        Scores survive exactly: ``json.dumps`` emits the shortest
        round-tripping ``repr`` of each float, so
        ``from_dict(json.loads(json.dumps(rs.to_dict())), db)`` yields
        bit-identical scores.  ``include_rows=True`` additionally
        inlines each tuple's column values for clients without access
        to the database (the reverse direction then still only needs
        the tuple ids).
        """
        results = []
        for result in self:
            entry: Dict[str, Any] = {
                "score": result.score,
                "network": result.network,
                "tuples": [
                    [tid.table, tid.rowid] for tid in result.tuple_ids()
                ],
            }
            if include_rows:
                entry["rows"] = [
                    {"table": row.table.name, "rowid": row.rowid,
                     "values": row.as_dict()}
                    for row in result.joined.rows
                ]
            results.append(entry)
        error = None
        if self.error is not None:
            error = {
                "type": type(self.error).__name__,
                "message": str(self.error),
            }
        return {
            "status": self.status,
            "method": self.method,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "fallback_from": self.fallback_from,
            "error": error,
            "count": len(results),
            "results": results,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any], db=None) -> "ResultSet":
        """Rebuild a :class:`ResultSet` from :meth:`to_dict` output.

        With *db* (the database the results came from), each answer is
        re-materialised as a full :class:`SearchResult` whose
        ``joined`` rows are looked up by tuple id — scores, methods and
        degradation metadata round-trip exactly.  Without *db*, the
        joined rows cannot be reconstructed and ``results`` entries
        stay as plain dicts (score/network/tuples), which is enough for
        client-side display and comparisons.
        """
        from repro.relational.executor import JoinedRow

        items: List[Any] = []
        for entry in data.get("results", ()):
            if db is None:
                items.append(dict(entry))
                continue
            tids = [TupleId(table, rowid) for table, rowid in entry["tuples"]]
            rows = tuple(db.row(tid) for tid in tids)
            aliases = tuple(f"n{i}" for i in range(len(rows)))
            items.append(
                SearchResult(
                    score=entry["score"],
                    network=entry["network"],
                    joined=JoinedRow(aliases, rows),
                )
            )
        error_data = data.get("error")
        error = None
        if error_data is not None:
            from repro.resilience import errors as _errors

            exc_cls = getattr(_errors, error_data.get("type", ""), None)
            message = error_data.get("message", "")
            if isinstance(exc_cls, type) and issubclass(exc_cls, _errors.ReproError):
                try:
                    error = exc_cls(message)
                except TypeError:
                    error = _errors.ReproError(message)
            else:
                error = _errors.ReproError(message)
        return cls(
            items,
            method=data.get("method"),
            degraded=bool(data.get("degraded", False)),
            degraded_reason=data.get("degraded_reason"),
            fallback_from=data.get("fallback_from"),
            error=error,
        )

    def __repr__(self) -> str:
        extra = "" if self.status == "ok" else f", {self.status}"
        return f"ResultSet({len(self)} results, method={self.method}{extra})"


@dataclass
class XmlResult:
    """One XML answer: a result subtree root."""

    score: float
    root: Dewey
    node: XmlNode
    semantics: str = "slca"

    def path(self) -> str:
        return self.node.label_path()

    def describe(self, max_chars: int = 80) -> str:
        return f"{self.path()}: {self.node.text()[:max_chars]}"

    def __repr__(self) -> str:
        return f"XmlResult({self.score:.3f}, {self.path()})"
