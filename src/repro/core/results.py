"""Result objects returned by the facade engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.relational.database import TupleId
from repro.relational.executor import JoinedRow
from repro.xmltree.node import Dewey, XmlNode


@dataclass
class SearchResult:
    """One relational answer: a joining network of tuples."""

    score: float
    network: str  # CN label / semantics description
    joined: JoinedRow

    def tuple_ids(self) -> List[TupleId]:
        return [TupleId(r.table.name, r.rowid) for r in self.joined.rows]

    def describe(self) -> str:
        """Human-readable one-liner for demos and examples."""
        parts = []
        for row in self.joined.distinct_rows():
            text = row.text()
            label = f"{row.table.name}({text[:40]})" if text else row.table.name
            parts.append(label)
        return " -> ".join(parts)

    def __repr__(self) -> str:
        return f"SearchResult({self.score:.3f}, {self.network})"


@dataclass
class XmlResult:
    """One XML answer: a result subtree root."""

    score: float
    root: Dewey
    node: XmlNode
    semantics: str = "slca"

    def path(self) -> str:
        return self.node.label_path()

    def describe(self, max_chars: int = 80) -> str:
        return f"{self.path()}: {self.node.text()[:max_chars]}"

    def __repr__(self) -> str:
        return f"XmlResult({self.score:.3f}, {self.path()})"
