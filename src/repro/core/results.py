"""Result objects returned by the facade engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.relational.database import TupleId
from repro.relational.executor import JoinedRow
from repro.xmltree.node import Dewey, XmlNode


@dataclass
class SearchResult:
    """One relational answer: a joining network of tuples."""

    score: float
    network: str  # CN label / semantics description
    joined: JoinedRow

    def tuple_ids(self) -> List[TupleId]:
        return [TupleId(r.table.name, r.rowid) for r in self.joined.rows]

    def describe(self) -> str:
        """Human-readable one-liner for demos and examples."""
        parts = []
        for row in self.joined.distinct_rows():
            text = row.text()
            label = f"{row.table.name}({text[:40]})" if text else row.table.name
            parts.append(label)
        return " -> ".join(parts)

    def __repr__(self) -> str:
        return f"SearchResult({self.score:.3f}, {self.network})"


class ResultSet(list):
    """A list of results plus resilience metadata.

    Subclasses ``list`` so every pre-existing caller (iteration, ``==``
    against plain lists, slicing) keeps working, while the serving path
    can report *how* the answer was produced:

    * ``degraded`` / ``degraded_reason`` — the query exhausted its
      budget (or fell down the method ladder) and the results are the
      best partial answer, not a complete one;
    * ``method`` — the method that actually produced the results;
    * ``fallback_from`` — the originally requested method, when the
      degradation ladder descended;
    * ``error`` — for batch outcomes: the structured error that made
      this result set empty;
    * ``trace`` — when tracing was enabled, the per-query span tree
      (:class:`repro.obs.trace.Trace`); ``None`` otherwise.
    """

    __slots__ = ("degraded", "degraded_reason", "method", "fallback_from", "error", "trace")

    def __init__(
        self,
        items: Sequence = (),
        *,
        method: Optional[str] = None,
        degraded: bool = False,
        degraded_reason: Optional[str] = None,
        fallback_from: Optional[str] = None,
        error: Optional[BaseException] = None,
        trace=None,
    ):
        super().__init__(items)
        self.method = method
        self.degraded = degraded
        self.degraded_reason = degraded_reason
        self.fallback_from = fallback_from
        self.error = error
        self.trace = trace

    @property
    def status(self) -> str:
        if self.error is not None:
            return "error"
        return "degraded" if self.degraded else "ok"

    def clone(self, trace=None) -> "ResultSet":
        """Shallow copy sharing items but not list identity or metadata.

        The copy carries its own ``trace`` (*trace* argument, default
        ``None``): a cached entry's stored trace describes the original
        computation, not the serving lookup, so cache hits attach a
        fresh lookup trace instead of aliasing the stored one.
        """
        return ResultSet(
            self,
            method=self.method,
            degraded=self.degraded,
            degraded_reason=self.degraded_reason,
            fallback_from=self.fallback_from,
            error=self.error,
            trace=trace,
        )

    def __repr__(self) -> str:
        extra = "" if self.status == "ok" else f", {self.status}"
        return f"ResultSet({len(self)} results, method={self.method}{extra})"


@dataclass
class XmlResult:
    """One XML answer: a result subtree root."""

    score: float
    root: Dewey
    node: XmlNode
    semantics: str = "slca"

    def path(self) -> str:
        return self.node.label_path()

    def describe(self, max_chars: int = 80) -> str:
        return f"{self.path()}: {self.node.text()[:max_chars]}"

    def __repr__(self) -> str:
        return f"XmlResult({self.score:.3f}, {self.path()})"
