"""Inverted keyword index over relational tuples.

Maps every token appearing in a text column to the posting list of
tuples containing it, together with per-(tuple, column) term frequencies.
This is the index behind tuple-set construction in DISCOVER-style search
(slide 28: the "query tuple sets" :math:`R^Q`) and behind TF·IDF scoring
(slides 144, 158).

All statistics the scorers consult in their inner loops — document
frequency, smoothed IDF, per-(tuple, token) term frequency and the
deduplicated tuple posting list — are precomputed once at build time
(slide 120's materialised-index discussion), so the online lookups are
O(1) dict probes / O(result) copies instead of O(postings) scans.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.index.text import tokenize
from repro.relational.database import Database, TupleId

_EMPTY_POSTINGS: Tuple["Posting", ...] = ()
_EMPTY_TUPLES: Tuple[TupleId, ...] = ()
_EMPTY_TF: Dict[TupleId, int] = {}


@dataclass(frozen=True)
class Posting:
    """One occurrence record: tuple, column it occurred in, and frequency."""

    tid: TupleId
    column: str
    frequency: int


class InvertedIndex:
    """Token -> postings over the text columns of a :class:`Database`."""

    def __init__(self, db: Database):
        self.db = db
        self._postings: Dict[str, Tuple[Posting, ...]] = {}
        self._doc_count = 0
        self._tuple_tokens: Dict[TupleId, Set[str]] = {}
        # Precomputed fast paths (see module docstring).
        self._matching: Dict[str, Tuple[TupleId, ...]] = {}
        self._df: Dict[str, int] = {}
        self._idf: Dict[str, float] = {}
        self._tf: Dict[str, Dict[TupleId, int]] = {}
        # Rows indexed so far per text table; tables are append-only, so
        # everything past this watermark is the delta refresh() patches.
        self._row_counts: Dict[str, int] = {}
        self.refreshes = 0
        self.rows_patched = 0
        self._build()

    def _index_row(
        self,
        tid: TupleId,
        row,
        text_cols: Sequence[str],
        postings: Dict[str, List[Posting]],
        matching: Dict[str, Dict[TupleId, None]],
        tf: Dict[str, Dict[TupleId, int]],
    ) -> None:
        """Accumulate one row into the build/delta staging dicts."""
        self._doc_count += 1
        seen: Set[str] = set()
        for column in text_cols:
            value = row[column]
            if value is None:
                continue
            counts: Dict[str, int] = {}
            for token in tokenize(str(value)):
                counts[token] = counts.get(token, 0) + 1
            for token, freq in counts.items():
                postings.setdefault(token, []).append(Posting(tid, column, freq))
                matching.setdefault(token, {}).setdefault(tid)
                token_tf = tf.setdefault(token, {})
                token_tf[tid] = token_tf.get(tid, 0) + freq
                seen.add(token)
        if seen:
            self._tuple_tokens[tid] = seen

    def _build(self) -> None:
        postings: Dict[str, List[Posting]] = {}
        matching: Dict[str, Dict[TupleId, None]] = {}
        tf: Dict[str, Dict[TupleId, int]] = {}
        for table in self.db.tables.values():
            text_cols = table.schema.text_columns
            if not text_cols:
                continue
            for row in table.rows():
                self._index_row(
                    TupleId(table.name, row.rowid), row, text_cols,
                    postings, matching, tf,
                )
            self._row_counts[table.name] = len(table)
        n_plus_1 = self._doc_count + 1
        for token, plist in postings.items():
            self._postings[token] = tuple(plist)
            tids = tuple(matching[token])
            self._matching[token] = tids
            df = len(tids)
            self._df[token] = df
            self._idf[token] = math.log(n_plus_1 / (df + 1)) + 1.0
        self._tf = tf

    def refresh(self) -> int:
        """Delta-index rows inserted since the last build/refresh.

        Tables are append-only (no update/delete — see
        :class:`~repro.relational.table.Row`), so the delta is exactly
        the suffix of each text table past the stored watermark.  New
        postings / matching entries / term frequencies are patched in;
        IDF is recomputed for the whole vocabulary because the document
        count moved (O(vocabulary) floats, no text re-scanned).  The
        patched index is content-identical to a fresh build — posting
        order may differ for tokens the new rows contain, which no
        consumer observes (tuple-set construction sorts, scoring reads
        per-tuple dicts).  Returns the number of rows indexed.
        """
        postings: Dict[str, List[Posting]] = {}
        matching: Dict[str, Dict[TupleId, None]] = {}
        tf: Dict[str, Dict[TupleId, int]] = {}
        new_rows = 0
        for table in self.db.tables.values():
            text_cols = table.schema.text_columns
            if not text_cols:
                continue
            start = self._row_counts.get(table.name, 0)
            if len(table) <= start:
                continue
            for rowid in range(start, len(table)):
                self._index_row(
                    TupleId(table.name, rowid), table.row(rowid), text_cols,
                    postings, matching, tf,
                )
                new_rows += 1
            self._row_counts[table.name] = len(table)
        if new_rows:
            for token, plist in postings.items():
                self._postings[token] = (
                    self._postings.get(token, _EMPTY_POSTINGS) + tuple(plist)
                )
                tids = tuple(matching[token])
                self._matching[token] = (
                    self._matching.get(token, _EMPTY_TUPLES) + tids
                )
                self._df[token] = len(self._matching[token])
                token_tf = self._tf.setdefault(token, {})
                for tid, freq in tf[token].items():
                    token_tf[tid] = token_tf.get(tid, 0) + freq
            n_plus_1 = self._doc_count + 1
            for token, df in self._df.items():
                self._idf[token] = math.log(n_plus_1 / (df + 1)) + 1.0
            self.rows_patched += new_rows
        self.refreshes += 1
        return new_rows

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def postings(self, token: str) -> Sequence[Posting]:
        """Immutable view of the posting list for *token* (zero-copy)."""
        return self._postings.get(token.lower(), _EMPTY_POSTINGS)

    def matching_tuples(self, token: str) -> List[TupleId]:
        """Distinct tuples containing *token*, in posting order."""
        return list(self._matching.get(token.lower(), _EMPTY_TUPLES))

    def matching_tuples_view(self, token: str) -> Tuple[TupleId, ...]:
        """Zero-copy variant of :meth:`matching_tuples` for hot paths."""
        return self._matching.get(token.lower(), _EMPTY_TUPLES)

    def matching_tuples_in(self, token: str, table: str) -> List[TupleId]:
        return [t for t in self.matching_tuples_view(token) if t.table == table]

    def tuples_matching_all(self, tokens: Iterable[str]) -> List[TupleId]:
        """Tuples whose text contains every token (single-tuple AND)."""
        sets: List[Set[TupleId]] = []
        for token in tokens:
            sets.append(set(self.matching_tuples_view(token)))
        if not sets:
            return []
        common = set.intersection(*sets)
        return sorted(common)

    def tokens_of(self, tid: TupleId) -> Set[str]:
        return set(self._tuple_tokens.get(tid, ()))

    def contains_token(self, tid: TupleId, token: str) -> bool:
        return token.lower() in self._tuple_tokens.get(tid, ())

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def vocabulary(self) -> List[str]:
        return sorted(self._postings)

    @property
    def document_count(self) -> int:
        """Number of tuples with at least one text column (N for IDF)."""
        return self._doc_count

    def document_frequency(self, token: str) -> int:
        return self._df.get(token.lower(), 0)

    def idf(self, token: str) -> float:
        """Smoothed inverse document frequency (ln((N+1)/(df+1)) + 1)."""
        cached = self._idf.get(token.lower())
        if cached is not None:
            return cached
        return math.log(float(self._doc_count + 1)) + 1.0

    def term_frequency(self, tid: TupleId, token: str) -> int:
        return self._tf.get(token.lower(), _EMPTY_TF).get(tid, 0)

    def __contains__(self, token: str) -> bool:
        return token.lower() in self._postings

    def __repr__(self) -> str:
        return (
            f"InvertedIndex({len(self._postings)} terms, "
            f"{self._doc_count} documents)"
        )
