"""Inverted keyword index over relational tuples.

Maps every token appearing in a text column to the posting list of
tuples containing it, together with per-(tuple, column) term frequencies.
This is the index behind tuple-set construction in DISCOVER-style search
(slide 28: the "query tuple sets" :math:`R^Q`) and behind TF·IDF scoring
(slides 144, 158).

Since PR 9 the index is a thin facade over a pluggable
:class:`~repro.storage.base.StorageBackend` (see :mod:`repro.storage`):
the classic precomputed-dict layout (``"dict"``, the default), a
compact columnar substrate (``"columnar"``) and a disk-backed mmap
segment with an LRU page cache (``"disk"``).  All backends expose the
same statistics the scorers consult — document frequency, smoothed
IDF, per-(tuple, token) term frequency, deduplicated tuple posting
lists — and are held to byte-identical search results by the
cross-backend parity suite.  The facade normalises tokens (lowercase)
and owns the generic multi-token intersection; everything else is one
delegation hop.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.relational.database import Database, TupleId
from repro.storage import create_backend
from repro.storage.base import Posting, StorageBackend  # re-export: Posting

__all__ = ["InvertedIndex", "Posting"]


class InvertedIndex:
    """Token -> postings over the text columns of a :class:`Database`."""

    def __init__(
        self,
        db: Database,
        backend: str = "dict",
        backend_options: Optional[Dict[str, object]] = None,
    ):
        self.db = db
        self.backend: StorageBackend = create_backend(backend, backend_options)
        self.backend.build(db)

    @property
    def backend_name(self) -> str:
        return self.backend.name

    @property
    def refreshes(self) -> int:
        return self.backend.refreshes

    @property
    def rows_patched(self) -> int:
        return self.backend.rows_patched

    def refresh(self) -> int:
        """Delta-index rows inserted since the last build/refresh.

        Tables are append-only (no update/delete — see
        :class:`~repro.relational.table.Row`), so the delta is exactly
        the suffix of each text table past the backend's stored
        watermark.  The patched index is content-identical to a fresh
        build — posting order may differ for tokens the new rows
        contain, which no consumer observes (tuple-set construction
        sorts, scoring reads per-tuple maps).  Returns the number of
        rows indexed.
        """
        return self.backend.refresh(self.db)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def postings(self, token: str) -> Sequence[Posting]:
        """Immutable view of the posting list for *token*."""
        return self.backend.postings(token.lower())

    def matching_tuples(self, token: str) -> List[TupleId]:
        """Distinct tuples containing *token*, in posting order."""
        return list(self.backend.matching_view(token.lower()))

    def matching_tuples_view(self, token: str) -> Tuple[TupleId, ...]:
        """Zero-copy variant of :meth:`matching_tuples` for hot paths."""
        return self.backend.matching_view(token.lower())

    def matching_tuples_in(self, token: str, table: str) -> List[TupleId]:
        return [t for t in self.matching_tuples_view(token) if t.table == table]

    def tuples_matching_all(self, tokens: Iterable[str]) -> List[TupleId]:
        """Tuples whose text contains every token (single-tuple AND)."""
        sets: List[Set[TupleId]] = []
        for token in tokens:
            sets.append(set(self.matching_tuples_view(token)))
        if not sets:
            return []
        common = set.intersection(*sets)
        return sorted(common)

    def tokens_of(self, tid: TupleId) -> Set[str]:
        return self.backend.tokens_of(tid)

    def contains_token(self, tid: TupleId, token: str) -> bool:
        return self.backend.contains_token(tid, token.lower())

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def vocabulary(self) -> List[str]:
        return self.backend.vocabulary()

    @property
    def document_count(self) -> int:
        """Number of tuples with at least one text column (N for IDF)."""
        return self.backend.doc_count

    def document_frequency(self, token: str) -> int:
        return self.backend.document_frequency(token.lower())

    def idf(self, token: str) -> float:
        """Smoothed inverse document frequency (ln((N+1)/(df+1)) + 1)."""
        return self.backend.idf(token.lower())

    def term_frequency(self, tid: TupleId, token: str) -> int:
        return self.backend.term_frequency(tid, token.lower())

    def __contains__(self, token: str) -> bool:
        return self.backend.has_token(token.lower())

    # ------------------------------------------------------------------
    # Accounting / lifecycle
    # ------------------------------------------------------------------
    def resident_bytes(self) -> int:
        """Deep resident footprint of the backing substrate."""
        return self.backend.resident_bytes()

    def storage_stats(self) -> Dict[str, object]:
        return self.backend.stats()

    def close(self) -> None:
        self.backend.close()

    def __repr__(self) -> str:
        return (
            f"InvertedIndex[{self.backend.name}]"
            f"({self.backend.token_count()} terms, "
            f"{self.backend.doc_count} documents)"
        )
