"""Inverted keyword index over relational tuples.

Maps every token appearing in a text column to the posting list of
tuples containing it, together with per-(tuple, column) term frequencies.
This is the index behind tuple-set construction in DISCOVER-style search
(slide 28: the "query tuple sets" :math:`R^Q`) and behind TF·IDF scoring
(slides 144, 158).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.index.text import tokenize
from repro.relational.database import Database, TupleId


@dataclass(frozen=True)
class Posting:
    """One occurrence record: tuple, column it occurred in, and frequency."""

    tid: TupleId
    column: str
    frequency: int


class InvertedIndex:
    """Token -> postings over the text columns of a :class:`Database`."""

    def __init__(self, db: Database):
        self.db = db
        self._postings: Dict[str, List[Posting]] = {}
        self._doc_count = 0
        self._tuple_tokens: Dict[TupleId, Set[str]] = {}
        self._build()

    def _build(self) -> None:
        for table in self.db.tables.values():
            text_cols = table.schema.text_columns
            if not text_cols:
                continue
            for row in table.rows():
                tid = TupleId(table.name, row.rowid)
                self._doc_count += 1
                seen: Set[str] = set()
                for column in text_cols:
                    value = row[column]
                    if value is None:
                        continue
                    counts: Dict[str, int] = {}
                    for token in tokenize(str(value)):
                        counts[token] = counts.get(token, 0) + 1
                    for token, freq in counts.items():
                        self._postings.setdefault(token, []).append(
                            Posting(tid, column, freq)
                        )
                        seen.add(token)
                if seen:
                    self._tuple_tokens[tid] = seen

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def postings(self, token: str) -> List[Posting]:
        return list(self._postings.get(token.lower(), ()))

    def matching_tuples(self, token: str) -> List[TupleId]:
        """Distinct tuples containing *token*, in posting order."""
        seen: Dict[TupleId, None] = {}
        for posting in self._postings.get(token.lower(), ()):
            seen.setdefault(posting.tid)
        return list(seen)

    def matching_tuples_in(self, token: str, table: str) -> List[TupleId]:
        return [t for t in self.matching_tuples(token) if t.table == table]

    def tuples_matching_all(self, tokens: Iterable[str]) -> List[TupleId]:
        """Tuples whose text contains every token (single-tuple AND)."""
        sets: List[Set[TupleId]] = []
        for token in tokens:
            sets.append(set(self.matching_tuples(token)))
        if not sets:
            return []
        common = set.intersection(*sets)
        return sorted(common)

    def tokens_of(self, tid: TupleId) -> Set[str]:
        return set(self._tuple_tokens.get(tid, ()))

    def contains_token(self, tid: TupleId, token: str) -> bool:
        return token.lower() in self._tuple_tokens.get(tid, ())

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def vocabulary(self) -> List[str]:
        return sorted(self._postings)

    @property
    def document_count(self) -> int:
        """Number of tuples with at least one text column (N for IDF)."""
        return self._doc_count

    def document_frequency(self, token: str) -> int:
        return len({p.tid for p in self._postings.get(token.lower(), ())})

    def idf(self, token: str) -> float:
        """Smoothed inverse document frequency (ln((N+1)/(df+1)) + 1)."""
        df = self.document_frequency(token)
        return math.log((self._doc_count + 1) / (df + 1)) + 1.0

    def term_frequency(self, tid: TupleId, token: str) -> int:
        token = token.lower()
        return sum(
            p.frequency
            for p in self._postings.get(token, ())
            if p.tid == tid
        )

    def __contains__(self, token: str) -> bool:
        return token.lower() in self._postings

    def __repr__(self) -> str:
        return (
            f"InvertedIndex({len(self._postings)} terms, "
            f"{self._doc_count} documents)"
        )
