"""D-reachability indexes (Markowetz et al., ICDE 09; slide 124).

Precompute bounded-range reachability facts with a distance threshold D
to cap index size:

* **N2T** — node -> set of terms on tuples within D hops,
* **N2N** — node -> set of nodes within D hops,
* **R2R** — (relation, term, relation) -> reachability between a term in
  one relation and any term of another within D hops.

They are used to prune partial solutions ("this partial tree can never
reach keyword k within budget") and to prune entire candidate networks.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.graph.data_graph import DataGraph
from repro.index.inverted import InvertedIndex
from repro.relational.database import TupleId


class DReachabilityIndex:
    """Bounded reachability facts over a data graph."""

    def __init__(self, graph: DataGraph, index: InvertedIndex, d: int = 3):
        if d < 0:
            raise ValueError("D must be >= 0")
        self.graph = graph
        self.index = index
        self.d = d
        self._n2n: Dict[TupleId, Set[TupleId]] = {}
        self._n2t: Dict[TupleId, Set[str]] = {}
        self._build()

    def _build(self) -> None:
        for node in self.graph.nodes:
            within = set(self.graph.bfs_hops(node, max_hops=self.d))
            self._n2n[node] = within
            terms: Set[str] = set()
            for other in within:
                terms |= self.index.tokens_of(other)
            self._n2t[node] = terms

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def nodes_within(self, node: TupleId) -> Set[TupleId]:
        return set(self._n2n.get(node, ()))

    def terms_within(self, node: TupleId) -> Set[str]:
        return set(self._n2t.get(node, ()))

    def can_reach_term(self, node: TupleId, term: str) -> bool:
        """True iff a tuple containing *term* lies within D hops of *node*."""
        return term.lower() in self._n2t.get(node, ())

    def can_reach_all(self, node: TupleId, terms: Iterable[str]) -> bool:
        have = self._n2t.get(node, ())
        return all(t.lower() in have for t in terms)

    def prune_candidates(
        self, candidates: Iterable[TupleId], terms: Iterable[str]
    ) -> List[TupleId]:
        """Keep candidates that can still reach every query term."""
        terms = [t.lower() for t in terms]
        return [c for c in candidates if self.can_reach_all(c, terms)]

    def relation_term_reachable(
        self, relation_a: str, term: str, relation_b: str
    ) -> bool:
        """R2R check: does *term* in *relation_a* reach *relation_b* within D?"""
        term = term.lower()
        for tid in self.index.matching_tuples(term):
            if tid.table != relation_a:
                continue
            for other in self._n2n.get(tid, ()):
                if other.table == relation_b:
                    return True
        return False

    def size(self) -> int:
        return sum(len(v) for v in self._n2n.values()) + sum(
            len(v) for v in self._n2t.values()
        )

    def __repr__(self) -> str:
        return f"DReachabilityIndex(D={self.d}, {self.size()} entries)"
