"""Node-to-keyword distance index (BLINKS / SLINKS, He et al. SIGMOD 07).

Slide 123: SLINKS "indexes node-to-keyword distances, thus O(K·|V|)
space", after which top-k search can run Fagin's threshold algorithm
over per-keyword sorted lists.  We precompute, for every keyword, the
shortest distance from each node to the nearest tuple matching the
keyword (bounded by ``max_distance`` to cap index size, as the papers
all do).
"""

from __future__ import annotations

import heapq
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.graph.data_graph import DataGraph
from repro.index.inverted import InvertedIndex
from repro.relational.database import TupleId


def bounded_bfs_distances(
    graph: DataGraph, sources: Iterable[TupleId], max_distance: float
) -> Dict[TupleId, float]:
    """Multi-source Dijkstra: distance from each node to its nearest source."""
    dist: Dict[TupleId, float] = {}
    heap: List[Tuple[float, TupleId]] = []
    for source in sources:
        if source in graph:
            dist[source] = 0.0
            heapq.heappush(heap, (0.0, source))
    settled: set = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        for nbr, weight in graph.neighbors(node):
            nd = d + weight
            if nd > max_distance:
                continue
            if nd < dist.get(nbr, float("inf")):
                dist[nbr] = nd
                heapq.heappush(heap, (nd, nbr))
    return {n: d for n, d in dist.items() if n in settled}


class KeywordDistanceIndex:
    """keyword -> {node: distance to nearest matching tuple}.

    Built lazily per keyword (real deployments index the full vocabulary
    offline; for experiments lazy construction keeps setup proportional
    to the queried vocabulary while behaving identically online).
    """

    def __init__(
        self,
        graph: DataGraph,
        index: InvertedIndex,
        max_distance: float = 6.0,
    ):
        self.graph = graph
        self.index = index
        self.max_distance = max_distance
        self._by_keyword: Dict[str, Dict[TupleId, float]] = {}
        self._sorted: Dict[str, List[Tuple[float, TupleId]]] = {}
        # Lazy per-keyword builds may race under concurrent batch
        # search; double-checked locking makes the first build shared.
        self._lock = threading.Lock()

    def distances(self, keyword: str) -> Dict[TupleId, float]:
        """All nodes within ``max_distance`` of a tuple matching *keyword*."""
        keyword = keyword.lower()
        cached = self._by_keyword.get(keyword)
        if cached is None:
            with self._lock:
                cached = self._by_keyword.get(keyword)
                if cached is None:
                    sources = self.index.matching_tuples_view(keyword)
                    cached = bounded_bfs_distances(
                        self.graph, sources, self.max_distance
                    )
                    self._by_keyword[keyword] = cached
        return cached

    def distance(self, node: TupleId, keyword: str) -> Optional[float]:
        return self.distances(keyword).get(node)

    def sorted_list(self, keyword: str) -> List[Tuple[float, TupleId]]:
        """(distance, node) pairs ascending — the lists TA iterates over.

        Memoised: TA restarts over the same lists, so the sort is paid
        once per keyword.  Returns a copy; callers may consume it.
        """
        keyword = keyword.lower()
        cached = self._sorted.get(keyword)
        if cached is None:
            distances = self.distances(keyword)
            with self._lock:
                cached = self._sorted.get(keyword)
                if cached is None:
                    pairs = [(d, n) for n, d in distances.items()]
                    pairs.sort()
                    self._sorted[keyword] = pairs
                    cached = pairs
        return list(cached)

    def candidate_roots(self, keywords: Iterable[str]) -> Dict[TupleId, float]:
        """Nodes reaching *every* keyword, scored by summed distance.

        This realises the distinct-root semantics (slide 31):
        ``cost(T_r) = sum_i cost(r, match_i)``.
        """
        keywords = [k.lower() for k in keywords]
        if not keywords:
            return {}
        maps = [self.distances(k) for k in keywords]
        smallest = min(maps, key=len)
        out: Dict[TupleId, float] = {}
        for node in smallest:
            total = 0.0
            for m in maps:
                d = m.get(node)
                if d is None:
                    break
                total += d
            else:
                out[node] = total
        return out

    def index_size(self) -> int:
        """Total number of (keyword, node) entries materialised so far."""
        return sum(len(m) for m in self._by_keyword.values())

    def __repr__(self) -> str:
        return (
            f"KeywordDistanceIndex(max_distance={self.max_distance}, "
            f"{len(self._by_keyword)} keywords cached)"
        )
