"""Hub index for proximity search (Goldman et al., VLDB 98; slide 122).

Indexing all-pairs distances needs O(|V|^2) space; instead a set of hub
nodes H is chosen, distances *between hubs* are stored exactly, and for
every non-hub node we store d*(u, h): the shortest distance from u to
each nearby hub **without crossing another hub**.  Then

    d(x, y) = min( d*(x, y),
                   min over hubs A, B of d*(x, A) + d_H(A, B) + d*(B, y) )

Hubs are selected greedily by degree (an approximation of "balanced
separators" that works well on FK graphs whose hubs are the high-fan-in
entities).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.data_graph import DataGraph
from repro.relational.database import TupleId

INF = float("inf")


class HubIndex:
    """Distance oracle with hub-based compression."""

    def __init__(self, graph: DataGraph, hub_count: Optional[int] = None):
        self.graph = graph
        n = len(graph)
        if hub_count is None:
            hub_count = max(1, int(n ** 0.5)) if n else 0
        by_degree = sorted(graph.nodes, key=lambda v: (-graph.degree(v), v))
        self.hubs: Set[TupleId] = set(by_degree[:hub_count])
        # d*(u, h) for each node u and hub h, avoiding intermediate hubs.
        self._to_hubs: Dict[TupleId, Dict[TupleId, float]] = {}
        # d*(u, v) to non-hub nodes in the same hub-free region.
        self._local: Dict[TupleId, Dict[TupleId, float]] = {}
        # exact hub-to-hub distances over the full graph.
        self._hub_dist: Dict[TupleId, Dict[TupleId, float]] = {}
        self._build()

    def _build(self) -> None:
        for node in self.graph.nodes:
            to_hubs, local = self._hub_avoiding_dijkstra(node)
            self._to_hubs[node] = to_hubs
            self._local[node] = local
        for hub in self.hubs:
            self._hub_dist[hub] = self.graph.dijkstra(hub)

    def _hub_avoiding_dijkstra(
        self, source: TupleId
    ) -> Tuple[Dict[TupleId, float], Dict[TupleId, float]]:
        """Distances from *source* along paths whose interior avoids hubs."""
        dist: Dict[TupleId, float] = {source: 0.0}
        settled: Set[TupleId] = set()
        heap: List[Tuple[float, TupleId]] = [(0.0, source)]
        while heap:
            d, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            # Expansion stops at hubs: a hub may be reached but not crossed.
            if node in self.hubs and node != source:
                continue
            for nbr, weight in self.graph.neighbors(node):
                nd = d + weight
                if nd < dist.get(nbr, INF):
                    dist[nbr] = nd
                    heapq.heappush(heap, (nd, nbr))
        to_hubs = {n: d for n, d in dist.items() if n in self.hubs and n in settled}
        local = {n: d for n, d in dist.items() if n not in self.hubs and n in settled}
        return to_hubs, local

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def distance(self, x: TupleId, y: TupleId) -> float:
        """Exact shortest distance via the hub decomposition."""
        if x == y:
            return 0.0
        best = self._local.get(x, {}).get(y, INF)
        x_hubs = self._to_hubs.get(x, {})
        y_hubs = self._to_hubs.get(y, {})
        for hub_a, da in x_hubs.items():
            hub_rows = self._hub_dist.get(hub_a, {})
            for hub_b, db in y_hubs.items():
                between = hub_rows.get(hub_b, INF)
                total = da + between + db
                if total < best:
                    best = total
        return best

    def index_entries(self) -> int:
        """Stored entry count (the space the hub trick is saving)."""
        return (
            sum(len(v) for v in self._to_hubs.values())
            + sum(len(v) for v in self._local.values())
            + sum(len(v) for v in self._hub_dist.values())
        )

    def __repr__(self) -> str:
        return f"HubIndex({len(self.hubs)} hubs, {self.index_entries()} entries)"
