"""Tokenisation shared by every index and search engine in the library.

A deliberately simple analyzer: lowercase, split on non-alphanumerics,
keep pure numbers (years matter in bibliographic search).  Keeping one
analyzer everywhere guarantees that query-side and index-side token
streams agree — the classic source of silent recall loss.

Every emitted token is passed through :func:`sys.intern`, so the many
structures that key on token strings — dict-backend postings, the
substrate cache, per-shard replica indexes, query keyword sets — all
share one string object per distinct token instead of duplicating it
at every occurrence.
"""

from __future__ import annotations

import re
import sys
from collections import Counter
from typing import Dict, Iterable, List

_TOKEN_RE = re.compile(r"[a-z0-9]+")
_intern = sys.intern


def normalize_token(token: str) -> str:
    """Lowercase and strip a single token; may return an empty string."""
    return _intern("".join(_TOKEN_RE.findall(token.lower())))


def tokenize(text: str) -> List[str]:
    """Split *text* into normalized tokens, preserving order and duplicates."""
    if not text:
        return []
    return [_intern(t) for t in _TOKEN_RE.findall(text.lower())]


def term_frequencies(text: str) -> Dict[str, int]:
    """Token -> occurrence count for *text*."""
    return dict(Counter(tokenize(text)))


def vocabulary(texts: Iterable[str]) -> List[str]:
    """Sorted distinct tokens across *texts*."""
    vocab = set()
    for text in texts:
        vocab.update(tokenize(text))
    return sorted(vocab)
