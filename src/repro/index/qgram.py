"""q-gram index for approximate token matching.

Supports the "confusion set" construction of keyword query cleaning
(Pu & Yu, VLDB 08; slide 67): given a possibly misspelled token, find
vocabulary tokens within a small edit distance, using q-gram count
filtering before verifying with a banded edit-distance computation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple


def edit_distance(a: str, b: str, cutoff: Optional[int] = None) -> int:
    """Levenshtein distance; returns ``cutoff + 1`` early when exceeded."""
    if a == b:
        return 0
    if cutoff is not None and abs(len(a) - len(b)) > cutoff:
        return cutoff + 1
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        best = i
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            value = min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            current.append(value)
            if value < best:
                best = value
        if cutoff is not None and best > cutoff:
            return cutoff + 1
        previous = current
    return previous[-1]


def qgrams(token: str, q: int) -> List[str]:
    """Positional-free q-grams of *token*, padded with ``#``/``$``."""
    padded = "#" * (q - 1) + token + "$" * (q - 1)
    return [padded[i : i + q] for i in range(len(padded) - q + 1)]


class QGramIndex:
    """Map q-grams to the tokens containing them.

    ``candidates`` applies the classic count filter: a token within edit
    distance *k* of the query shares at least
    ``max(len(query), len(token)) + q - 1 - k*q`` q-grams with it.
    """

    def __init__(self, tokens: Iterable[str], q: int = 2):
        if q < 1:
            raise ValueError("q must be >= 1")
        self.q = q
        self._tokens: List[str] = sorted(set(tokens))
        # gram -> [(token index, multiplicity)]: the count filter is only
        # valid over q-gram *multisets*, so multiplicities are kept.
        self._index: Dict[str, List[Tuple[int, int]]] = {}
        for idx, token in enumerate(self._tokens):
            counts: Dict[str, int] = {}
            for gram in qgrams(token, q):
                counts[gram] = counts.get(gram, 0) + 1
            for gram, count in counts.items():
                self._index.setdefault(gram, []).append((idx, count))

    @property
    def vocabulary(self) -> List[str]:
        return list(self._tokens)

    def candidates(self, query: str, max_distance: int = 1) -> List[str]:
        """Tokens possibly within *max_distance* edits (count filter only)."""
        query_grams: Dict[str, int] = {}
        for gram in qgrams(query, self.q):
            query_grams[gram] = query_grams.get(gram, 0) + 1
        counts: Dict[int, int] = {}
        for gram, qcount in query_grams.items():
            for idx, tcount in self._index.get(gram, ()):
                counts[idx] = counts.get(idx, 0) + min(qcount, tcount)
        out = set()
        qlen = len(query)
        for idx, shared in counts.items():
            token = self._tokens[idx]
            needed = max(qlen, len(token)) + self.q - 1 - max_distance * self.q
            if shared >= needed:
                out.add(token)
        # For very short strings the count threshold drops to <= 0, meaning
        # the filter cannot reject anything: such tokens must be verified
        # even when they share no q-gram with the query.
        limit = max_distance * self.q - self.q + 1
        if qlen <= limit:
            out.update(t for t in self._tokens if len(t) <= limit)
        return sorted(out)

    def lookup(self, query: str, max_distance: int = 1) -> List[Tuple[str, int]]:
        """Verified (token, distance) matches within *max_distance* edits."""
        out = []
        for token in self.candidates(query, max_distance):
            dist = edit_distance(query, token, cutoff=max_distance)
            if dist <= max_distance:
                out.append((token, dist))
        out.sort(key=lambda pair: (pair[1], pair[0]))
        return out

    def __repr__(self) -> str:
        return f"QGramIndex(q={self.q}, {len(self._tokens)} tokens)"
