"""δ-step forward index (TASTIER, Li et al. SIGMOD 09; slides 72-73).

For every node, the set of token ids appearing on tuples reachable within
δ hops.  During type-ahead search, the candidates produced by the
smallest prefix's inverted list are pruned by checking that the token-id
*ranges* of the remaining prefixes intersect each candidate's forward
set — exactly the slide-73 example where candidate ``{11, 12, 78}`` is
pruned to ``{12}`` by ``Range(sig) = [k23, k27]``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.graph.data_graph import DataGraph
from repro.index.inverted import InvertedIndex
from repro.index.trie import Trie
from repro.relational.database import TupleId


class DeltaForwardIndex:
    """node -> sorted token ids within δ hops."""

    def __init__(
        self,
        graph: DataGraph,
        index: InvertedIndex,
        trie: Trie,
        delta: int = 2,
    ):
        self.graph = graph
        self.index = index
        self.trie = trie
        self.delta = delta
        self._forward: Dict[TupleId, List[int]] = {}
        self._build()

    def _build(self) -> None:
        # Token ids directly on each node.
        local: Dict[TupleId, Set[int]] = {}
        for node in self.graph.nodes:
            tokens = self.index.tokens_of(node)
            if tokens:
                local[node] = {self.trie.token_id(t) for t in tokens if t in self.trie}
        # Propagate δ hops by iterated neighbourhood union.
        reach: Dict[TupleId, Set[int]] = {
            node: set(ids) for node, ids in local.items()
        }
        frontier_sets = dict(reach)
        for _ in range(self.delta):
            nxt: Dict[TupleId, Set[int]] = {}
            for node in self.graph.nodes:
                gathered: Set[int] = set()
                for nbr, _w in self.graph.neighbors(node):
                    nbr_tokens = frontier_sets.get(nbr)
                    if nbr_tokens:
                        gathered |= nbr_tokens
                if gathered:
                    have = reach.setdefault(node, set())
                    new = gathered - have
                    if new:
                        have |= new
                        nxt[node] = new
            frontier_sets = nxt
            if not frontier_sets:
                break
        self._forward = {node: sorted(ids) for node, ids in reach.items()}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def tokens_within_delta(self, node: TupleId) -> List[int]:
        return list(self._forward.get(node, ()))

    def reaches_range(self, node: TupleId, lo: int, hi: int) -> bool:
        """True if *node* reaches some token id in [lo, hi] within δ hops."""
        ids = self._forward.get(node)
        if not ids:
            return False
        pos = bisect_left(ids, lo)
        return pos < len(ids) and ids[pos] <= hi

    def filter_candidates(
        self, candidates: Iterable[TupleId], ranges: Iterable[Tuple[int, int]]
    ) -> List[TupleId]:
        """Keep candidates that reach every token-id range within δ hops."""
        ranges = list(ranges)
        out = []
        for node in candidates:
            if all(self.reaches_range(node, lo, hi) for lo, hi in ranges):
                out.append(node)
        return out

    def size(self) -> int:
        return sum(len(v) for v in self._forward.values())

    def __repr__(self) -> str:
        return f"DeltaForwardIndex(delta={self.delta}, {self.size()} entries)"
