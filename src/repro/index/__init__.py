"""Indexing substrate for keyword search.

Implements the index families the tutorial surveys (slides 121-128):

* inverted keyword indexes over relational tuples and XML nodes,
* tries for type-ahead / prefix search (TASTIER),
* q-gram indexes for approximate string matching (query cleaning),
* node-to-keyword distance indexes (BLINKS-style),
* hub indexes for proximity search (Goldman et al., VLDB 98),
* δ-step forward indexes and D-reachability indexes.
"""

from repro.index.text import tokenize, normalize_token, term_frequencies
from repro.index.inverted import InvertedIndex, Posting
from repro.index.trie import Trie
from repro.index.qgram import QGramIndex
from repro.index.distance import KeywordDistanceIndex, bounded_bfs_distances
from repro.index.forward import DeltaForwardIndex
from repro.index.hub import HubIndex
from repro.index.reachability import DReachabilityIndex

__all__ = [
    "tokenize",
    "normalize_token",
    "term_frequencies",
    "InvertedIndex",
    "Posting",
    "Trie",
    "QGramIndex",
    "KeywordDistanceIndex",
    "bounded_bfs_distances",
    "DeltaForwardIndex",
    "HubIndex",
    "DReachabilityIndex",
]
