"""Character trie with prefix ranges and error-tolerant prefix matching.

TASTIER (Li et al., SIGMOD 09; slides 71-73) indexes every token in a
trie so that a keystroke-by-keystroke prefix corresponds to a contiguous
*range* of token ids; the δ-step forward index is then probed with those
ranges.  ``fuzzy_prefix`` additionally implements autocompletion that
tolerates edit errors in the prefix (Chaudhuri & Kaushik, SIGMOD 09) via
incremental edit-distance rows down the trie.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class _TrieNode:
    __slots__ = ("children", "token_id", "min_id", "max_id")

    def __init__(self) -> None:
        self.children: Dict[str, "_TrieNode"] = {}
        self.token_id: Optional[int] = None  # set when a token ends here
        self.min_id = -1
        self.max_id = -1


class Trie:
    """Trie over a token vocabulary, assigning lexicographic token ids.

    Token ids are dense [0, n) in lexicographic order, so every trie node
    covers a contiguous id range — the property TASTIER's pruning relies
    on.  Construction sorts the vocabulary; insertion afterwards is not
    supported (tokens come from an already-built inverted index).
    """

    def __init__(self, tokens: Iterable[str]):
        vocab = sorted(set(tokens))
        self._tokens: List[str] = vocab
        self._ids: Dict[str, int] = {tok: i for i, tok in enumerate(vocab)}
        self._root = _TrieNode()
        for token, token_id in self._ids.items():
            self._insert(token, token_id)
        self._finalize_ranges(self._root)

    def _insert(self, token: str, token_id: int) -> None:
        node = self._root
        for ch in token:
            node = node.children.setdefault(ch, _TrieNode())
        node.token_id = token_id

    def _finalize_ranges(self, node: _TrieNode) -> Tuple[int, int]:
        ids = []
        if node.token_id is not None:
            ids.append(node.token_id)
        for child in node.children.values():
            lo, hi = self._finalize_ranges(child)
            if lo >= 0:
                ids.append(lo)
                ids.append(hi)
        if ids:
            node.min_id = min(ids)
            node.max_id = max(ids)
        return node.min_id, node.max_id

    # ------------------------------------------------------------------
    # Exact prefix API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._ids

    def token(self, token_id: int) -> str:
        return self._tokens[token_id]

    def token_id(self, token: str) -> int:
        return self._ids[token]

    def _walk(self, prefix: str) -> Optional[_TrieNode]:
        node = self._root
        for ch in prefix:
            node = node.children.get(ch)
            if node is None:
                return None
        return node

    def prefix_range(self, prefix: str) -> Optional[Tuple[int, int]]:
        """Inclusive (min token id, max token id) for *prefix*, or None."""
        node = self._walk(prefix)
        if node is None or node.min_id < 0:
            return None
        return (node.min_id, node.max_id)

    def complete(self, prefix: str, limit: Optional[int] = None) -> List[str]:
        """All tokens starting with *prefix*, lexicographically."""
        rng = self.prefix_range(prefix)
        if rng is None:
            return []
        lo, hi = rng
        tokens = self._tokens[lo : hi + 1]
        return tokens[:limit] if limit is not None else tokens

    # ------------------------------------------------------------------
    # Error-tolerant prefix matching
    # ------------------------------------------------------------------
    def fuzzy_prefix(self, prefix: str, max_errors: int = 1) -> List[Tuple[str, int]]:
        """Tokens with a prefix within edit distance *max_errors* of *prefix*.

        Returns (token, distance) pairs sorted by (distance, token).  A
        token matches when *some* prefix of it is within the budget —
        standard type-ahead semantics.
        """
        results: Dict[int, int] = {}
        m = len(prefix)
        first_row = list(range(m + 1))
        self._fuzzy_walk(self._root, prefix, first_row, max_errors, results)
        out = [(self._tokens[tid], dist) for tid, dist in results.items()]
        out.sort(key=lambda pair: (pair[1], pair[0]))
        return out

    def _fuzzy_walk(
        self,
        node: _TrieNode,
        prefix: str,
        row: List[int],
        budget: int,
        results: Dict[int, int],
    ) -> None:
        # row[j] = edit distance between the path spelled so far and
        # prefix[:j].  When row[-1] <= budget, every token in the subtree
        # completes the (approximate) prefix at that distance — but we keep
        # descending because a longer path may match with a smaller distance
        # (e.g. the exact token), and _collect keeps the minimum.
        if row[-1] <= budget:
            self._collect(node, row[-1], results)
            if row[-1] == 0:
                return
        if min(row) > budget:
            return
        for ch, child in node.children.items():
            next_row = [row[0] + 1]
            for j in range(1, len(row)):
                cost = 0 if prefix[j - 1] == ch else 1
                next_row.append(
                    min(row[j - 1] + cost, row[j] + 1, next_row[j - 1] + 1)
                )
            self._fuzzy_walk(child, prefix, next_row, budget, results)

    def _collect(self, node: _TrieNode, distance: int, results: Dict[int, int]) -> None:
        if node.token_id is not None:
            prev = results.get(node.token_id)
            if prev is None or distance < prev:
                results[node.token_id] = distance
        for child in node.children.values():
            self._collect(child, distance, results)

    def __repr__(self) -> str:
        return f"Trie({len(self._tokens)} tokens)"
