"""Tuple-level data graph built from a relational database.

Nodes are :class:`~repro.relational.database.TupleId`; each foreign key
instance produces one undirected, weighted edge.  The graph is stored as
plain adjacency dictionaries (fast membership tests and Dijkstra without
networkx overhead) but can be exported to networkx for algorithms that
want it.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

import networkx as nx

from repro.relational.database import Database, TupleId


class DataGraph:
    """Undirected weighted graph over database tuples."""

    def __init__(self) -> None:
        self._adj: Dict[TupleId, Dict[TupleId, float]] = {}
        self._node_weight: Dict[TupleId, float] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: TupleId, weight: float = 0.0) -> None:
        self._adj.setdefault(node, {})
        self._node_weight[node] = weight

    def add_edge(self, u: TupleId, v: TupleId, weight: float = 1.0) -> None:
        if u == v:
            return
        self._adj.setdefault(u, {})
        self._adj.setdefault(v, {})
        self._node_weight.setdefault(u, 0.0)
        self._node_weight.setdefault(v, 0.0)
        existing = self._adj[u].get(v)
        if existing is None or weight < existing:
            self._adj[u][v] = weight
            self._adj[v][u] = weight

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------
    def __contains__(self, node: TupleId) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    @property
    def nodes(self) -> List[TupleId]:
        return list(self._adj)

    def edge_count(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def neighbors(self, node: TupleId) -> Iterator[Tuple[TupleId, float]]:
        return iter(self._adj.get(node, {}).items())

    def degree(self, node: TupleId) -> int:
        return len(self._adj.get(node, {}))

    def edge_weight(self, u: TupleId, v: TupleId) -> Optional[float]:
        return self._adj.get(u, {}).get(v)

    def node_weight(self, node: TupleId) -> float:
        return self._node_weight.get(node, 0.0)

    # ------------------------------------------------------------------
    # Shortest paths
    # ------------------------------------------------------------------
    def dijkstra(
        self,
        source: TupleId,
        max_distance: Optional[float] = None,
        targets: Optional[Set[TupleId]] = None,
    ) -> Dict[TupleId, float]:
        """Single-source shortest distances, optionally bounded.

        Stops early once every node in *targets* has been settled.
        Targets that are not in the graph at all are discarded up front,
        and targets beyond ``max_distance`` simply never enter the heap,
        so the scan ends as soon as the frontier drains — it never keeps
        exploring on behalf of unreachable targets.
        """
        dist: Dict[TupleId, float] = {source: 0.0}
        settled: Set[TupleId] = set()
        pending: Optional[Set[TupleId]] = None
        if targets is not None:
            pending = {t for t in targets if t in self._adj}
            if not pending:
                return {source: 0.0} if source in self._adj else {}
        heap: List[Tuple[float, TupleId]] = [(0.0, source)]
        while heap:
            d, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            if pending is not None:
                pending.discard(node)
                if not pending:
                    break
            for nbr, weight in self.neighbors(node):
                nd = d + weight
                if max_distance is not None and nd > max_distance:
                    continue
                if nd < dist.get(nbr, float("inf")):
                    dist[nbr] = nd
                    heapq.heappush(heap, (nd, nbr))
        return {n: d for n, d in dist.items() if n in settled}

    def shortest_path(
        self, source: TupleId, target: TupleId
    ) -> Optional[List[TupleId]]:
        """One shortest path source -> target, or None if disconnected."""
        if source == target:
            return [source]
        dist: Dict[TupleId, float] = {source: 0.0}
        prev: Dict[TupleId, TupleId] = {}
        settled: Set[TupleId] = set()
        heap: List[Tuple[float, TupleId]] = [(0.0, source)]
        while heap:
            d, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            if node == target:
                path = [target]
                while path[-1] != source:
                    path.append(prev[path[-1]])
                path.reverse()
                return path
            for nbr, weight in self.neighbors(node):
                nd = d + weight
                if nd < dist.get(nbr, float("inf")):
                    dist[nbr] = nd
                    prev[nbr] = node
                    heapq.heappush(heap, (nd, nbr))
        return None

    def bfs_hops(
        self, source: TupleId, max_hops: Optional[int] = None
    ) -> Dict[TupleId, int]:
        """Unweighted hop distances from *source*."""
        dist = {source: 0}
        frontier = [source]
        hops = 0
        while frontier:
            if max_hops is not None and hops >= max_hops:
                break
            hops += 1
            nxt = []
            for node in frontier:
                for nbr, _ in self.neighbors(node):
                    if nbr not in dist:
                        dist[nbr] = hops
                        nxt.append(nbr)
            frontier = nxt
        return dist

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_networkx(self) -> "nx.Graph":
        graph = nx.Graph()
        for node, weight in self._node_weight.items():
            graph.add_node(node, weight=weight)
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if u < v:
                    graph.add_edge(u, v, weight=w)
        return graph

    def subgraph(self, nodes: Iterable[TupleId]) -> "DataGraph":
        keep = set(nodes)
        sub = DataGraph()
        for node in keep:
            if node in self._adj:
                sub.add_node(node, self._node_weight.get(node, 0.0))
        for u in keep:
            for v, w in self._adj.get(u, {}).items():
                if v in keep:
                    sub.add_edge(u, v, w)
        return sub

    def __repr__(self) -> str:
        return f"DataGraph({len(self)} nodes, {self.edge_count()} edges)"


def build_data_graph(
    db: Database,
    edge_weight: Optional[Callable[[Database, TupleId, TupleId], float]] = None,
    node_weight: Optional[Callable[[Database, TupleId], float]] = None,
) -> DataGraph:
    """Build the tuple graph of *db*.

    Every row becomes a node; every non-null FK instance becomes an edge
    between the referencing and referenced tuples.  Weight callbacks
    default to uniform edges and zero node weights; BANKS-style weights
    live in :mod:`repro.graph.weights`.
    """
    graph = DataGraph()
    for tid in db.all_tuple_ids():
        w = node_weight(db, tid) if node_weight else 0.0
        graph.add_node(tid, w)
    for table in db.tables.values():
        for fk in table.schema.foreign_keys:
            parent_table = db.table(fk.ref_table)
            for row in table.rows():
                value = row[fk.column]
                if value is None:
                    continue
                parent = parent_table.by_key(value)
                if parent is None:
                    continue
                u = TupleId(table.name, row.rowid)
                v = TupleId(parent_table.name, parent.rowid)
                w = edge_weight(db, u, v) if edge_weight else 1.0
                graph.add_edge(u, v, w)
    return graph
