"""BANKS-style node prestige and edge weights (Bhalotia et al., ICDE 02).

Slide 41 cites the BANKS idea of weighting by ``1 / degree(v)``: an edge
into a tuple referenced by very many others (e.g. a famous paper cited
thousands of times) should contribute less relatedness.  We implement:

* node prestige proportional to ``log(1 + indegree)`` — highly referenced
  tuples are more prominent answers roots;
* edge weight ``1 + log(1 + indegree(target))`` — traversing into a hub
  costs more, discouraging trees glued together through hubs.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.relational.database import Database, TupleId


def _indegree(db: Database, tid: TupleId, cache: Dict[TupleId, int]) -> int:
    if tid in cache:
        return cache[tid]
    row = db.row(tid)
    count = len(db.referrers_of(row))
    cache[tid] = count
    return count


class BanksWeighting:
    """Callable pair producing BANKS edge/node weights with a shared cache."""

    def __init__(self) -> None:
        self._cache: Dict[TupleId, int] = {}

    def edge_weight(self, db: Database, u: TupleId, v: TupleId) -> float:
        # u is the referencing (child) tuple, v the referenced (parent).
        indeg = _indegree(db, v, self._cache)
        return 1.0 + math.log1p(indeg)

    def node_prestige(self, db: Database, tid: TupleId) -> float:
        return math.log1p(_indegree(db, tid, self._cache))


def banks_edge_weight(db: Database, u: TupleId, v: TupleId) -> float:
    """Stateless convenience wrapper (no cache sharing)."""
    return BanksWeighting().edge_weight(db, u, v)


def banks_node_prestige(db: Database, tid: TupleId) -> float:
    """Stateless convenience wrapper (no cache sharing)."""
    return BanksWeighting().node_prestige(db, tid)
