"""Data-graph substrate (tutorial slide 29, "Option 3").

Models a relational database as a graph whose nodes are tuples and whose
edges are foreign-key joins, following BANKS (Bhalotia et al., ICDE 02):
node prestige derives from in-degree, edge weights penalise high fan-in.
All graph-based search algorithms (:mod:`repro.graph_search`) and the
distance/hub/reachability indexes operate on :class:`DataGraph`.
"""

from repro.graph.data_graph import DataGraph, build_data_graph
from repro.graph.weights import banks_edge_weight, banks_node_prestige

__all__ = [
    "DataGraph",
    "build_data_graph",
    "banks_edge_weight",
    "banks_node_prestige",
]
