"""A small relational executor: select, project, hash join.

Candidate networks are evaluated as left-deep chains of equi-joins along
foreign keys; :class:`JoinedRow` carries the per-table rows so scoring
functions can inspect which tuples matched which keywords.  The executor
counts the tuples it touches (``JoinStats``) — those counters are what
the E2/E3 top-k benchmarks report instead of the original papers'
wall-clock numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.relational.table import Row


@dataclass
class JoinStats:
    """Execution counters accumulated across executor calls.

    Beyond the raw work counters, the shared-execution counters say how
    much work operator-level sharing avoided: ``reuse_hits`` counts CN
    evaluations seeded from a cached subexpression, ``joins_saved`` the
    hash joins that seeding skipped, ``subexpressions_materialized`` the
    distinct intermediates a :class:`SharedCNEvaluator` stored, and
    ``semijoin_pruned`` the tuples semi-join pre-filtering removed
    before any join ran.
    """

    tuples_read: int = 0
    tuples_emitted: int = 0
    joins_executed: int = 0
    reuse_hits: int = 0
    joins_saved: int = 0
    subexpressions_materialized: int = 0
    semijoin_pruned: int = 0

    def merge(self, other: "JoinStats") -> None:
        self.tuples_read += other.tuples_read
        self.tuples_emitted += other.tuples_emitted
        self.joins_executed += other.joins_executed
        self.reuse_hits += other.reuse_hits
        self.joins_saved += other.joins_saved
        self.subexpressions_materialized += other.subexpressions_materialized
        self.semijoin_pruned += other.semijoin_pruned


class JoinedRow:
    """A tuple of rows produced by joining several relations.

    ``aliases`` names each position (CN node labels such as ``"P^Q"`` or
    plain table names); two joined rows are equal iff they contain the
    same underlying rows in the same aliased positions.
    """

    __slots__ = ("aliases", "rows")

    def __init__(self, aliases: Tuple[str, ...], rows: Tuple[Row, ...]):
        if len(aliases) != len(rows):
            raise ValueError("aliases and rows must align")
        self.aliases = aliases
        self.rows = rows

    def __getitem__(self, alias: str) -> Row:
        try:
            return self.rows[self.aliases.index(alias)]
        except ValueError:
            raise KeyError(alias) from None

    def extend(self, alias: str, row: Row) -> "JoinedRow":
        return JoinedRow(self.aliases + (alias,), self.rows + (row,))

    def tuple_ids(self) -> Tuple[Tuple[str, int], ...]:
        return tuple((r.table.name, r.rowid) for r in self.rows)

    def distinct_rows(self) -> List[Row]:
        seen = []
        for row in self.rows:
            if row not in seen:
                seen.append(row)
        return seen

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, JoinedRow)
            and self.aliases == other.aliases
            and self.rows == other.rows
        )

    def __hash__(self) -> int:
        return hash((self.aliases, self.rows))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{a}={r.table.name}:{r.rowid}" for a, r in zip(self.aliases, self.rows)
        )
        return f"JoinedRow({inner})"


def select(
    rows: Iterable[Row],
    predicate: Callable[[Row], bool],
    stats: Optional[JoinStats] = None,
) -> Iterator[Row]:
    """Filter *rows* by *predicate*, counting tuples read."""
    for row in rows:
        if stats is not None:
            stats.tuples_read += 1
        if predicate(row):
            if stats is not None:
                stats.tuples_emitted += 1
            yield row


def project(rows: Iterable[Row], columns: Sequence[str]) -> Iterator[Tuple[object, ...]]:
    """Project *rows* onto *columns*."""
    for row in rows:
        yield tuple(row[c] for c in columns)


def hash_join(
    left: Iterable[JoinedRow],
    left_alias: str,
    left_column: str,
    right: Iterable[Row],
    right_alias: str,
    right_column: str,
    stats: Optional[JoinStats] = None,
) -> Iterator[JoinedRow]:
    """Equi-join partial results *left* with relation *right*.

    Builds a hash table over *right* keyed by ``right_column`` then probes
    with each left row's ``left_column`` value.  Null join keys never match
    (SQL semantics).
    """
    table: Dict[object, List[Row]] = {}
    for row in right:
        if stats is not None:
            stats.tuples_read += 1
        key = row[right_column]
        if key is None:
            continue
        table.setdefault(key, []).append(row)
    if stats is not None:
        stats.joins_executed += 1
    for joined in left:
        if stats is not None:
            stats.tuples_read += 1
        key = joined[left_alias][left_column]
        if key is None:
            continue
        for match in table.get(key, ()):
            if stats is not None:
                stats.tuples_emitted += 1
            yield joined.extend(right_alias, match)


def join_rows(
    base: Iterable[Row],
    base_alias: str,
    steps: Sequence[Tuple[str, str, Iterable[Row], str, str]],
    stats: Optional[JoinStats] = None,
) -> Iterator[JoinedRow]:
    """Left-deep join pipeline.

    *steps* is a sequence of
    ``(left_alias, left_column, right_rows, right_alias, right_column)``;
    each step joins the accumulated result against a new relation.
    """
    current: Iterable[JoinedRow] = (
        JoinedRow((base_alias,), (row,)) for row in base
    )
    for left_alias, left_column, right_rows, right_alias, right_column in steps:
        current = hash_join(
            current, left_alias, left_column, right_rows, right_alias, right_column,
            stats=stats,
        )
    return iter(current)
