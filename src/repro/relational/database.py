"""The :class:`Database`: a schema plus populated tables.

Also defines :class:`TupleId`, the global identifier ``(table, rowid)``
used by the data graph, inverted indexes and search results to refer to
tuples without holding row objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.relational.schema import Schema, SchemaError, TableSchema
from repro.relational.table import Row, Table


@dataclass(frozen=True, order=True)
class TupleId:
    """Global tuple identifier: table name + table-local rowid."""

    table: str
    rowid: int

    def __str__(self) -> str:
        return f"{self.table}:{self.rowid}"


class Database:
    """A populated relational database.

    ``insert`` validates foreign keys against already-inserted parents by
    default, so loaders must insert referenced tables first (or pass
    ``check_fk=False`` and call :meth:`validate` afterwards).
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        self.tables: Dict[str, Table] = {
            tbl.name: Table(tbl) for tbl in schema
        }

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def _check_fks(
        self,
        table: str,
        values: Mapping[str, object],
        pending_self_pks: Optional[Set[object]] = None,
    ) -> None:
        """Raise :class:`SchemaError` if any FK of *values* dangles.

        *pending_self_pks* holds primary keys earlier in the same batch
        (same table), so self-referencing batches — e.g. ``cite`` rows
        citing a paper inserted two records earlier — validate exactly
        as they would under sequential :meth:`insert` calls.
        """
        tbl = self.table(table)
        for fk in tbl.schema.foreign_keys:
            value = values.get(fk.column)
            if value is None:
                continue
            if (
                fk.ref_table == table
                and pending_self_pks is not None
                and value in pending_self_pks
            ):
                continue
            parent = self.table(fk.ref_table)
            if parent.by_key(value) is None:
                raise SchemaError(
                    f"{table}.{fk.column}={value!r} references missing "
                    f"{fk.ref_table}.{fk.ref_column}"
                )

    def check_insert(
        self, table: str, values: Mapping[str, object], check_fk: bool = True
    ) -> None:
        """Validate an insert without applying it.

        Runs the full column/PK validation plus (by default) the FK
        check and raises :class:`SchemaError` on any problem, leaving
        the database untouched.  The durability layer calls this before
        logging a mutation so the write-ahead log only ever records
        inserts guaranteed to apply (log-before-apply stays replayable).
        """
        self.table(table).prepare(values)
        if check_fk:
            self._check_fks(table, values)

    def insert(self, table: str, check_fk: bool = True, **values: object) -> TupleId:
        tbl = self.table(table)
        if check_fk:
            self._check_fks(table, values)
        rowid = tbl.insert(**values)
        return TupleId(table, rowid)

    def insert_many(
        self, table: str, records: Iterable[Dict[str, object]], check_fk: bool = True
    ) -> List[TupleId]:
        """Atomic batch insert: either every record applies or none does.

        All records are validated up front — column types, primary-key
        uniqueness (including duplicates *within* the batch) and, when
        *check_fk* is on, foreign keys (which may reference rows earlier
        in the same batch) — before any row is stored.  A mid-batch
        :class:`SchemaError` therefore leaves the table contents and
        :attr:`data_version` exactly as they were, which is what makes
        WAL batch replay all-or-nothing.
        """
        tbl = self.table(table)
        batch = [dict(record) for record in records]
        prepared: List[Tuple[object, ...]] = []
        pending_pks: Set[object] = set()
        for values in batch:
            record = tbl.prepare(values, pending_pks=pending_pks)
            if check_fk:
                self._check_fks(table, values, pending_self_pks=pending_pks)
            prepared.append(record)
            pending_pks.add(record[tbl.pk_index])
        return [TupleId(table, tbl.apply(record)) for record in prepared]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    def row(self, tid: TupleId) -> Row:
        return self.table(tid.table).row(tid.rowid)

    def rows(self, table: str) -> Iterator[Row]:
        return self.table(table).rows()

    def all_tuple_ids(self) -> Iterator[TupleId]:
        for name, tbl in self.tables.items():
            for rowid in range(len(tbl)):
                yield TupleId(name, rowid)

    def size(self) -> int:
        """Total number of tuples across all tables."""
        return sum(len(t) for t in self.tables.values())

    @property
    def data_version(self) -> int:
        """Monotonic mutation counter over all tables.

        Derived structures (inverted index, data graph, query caches)
        record the version they were built against and invalidate when
        it moves.  Summing per-table counters also catches inserts that
        bypass :meth:`insert` and go through :class:`Table` directly.
        """
        return sum(t.version for t in self.tables.values())

    # ------------------------------------------------------------------
    # Foreign-key navigation (the joins keyword search traverses)
    # ------------------------------------------------------------------
    def references_of(self, row: Row) -> List[Tuple[Row, str]]:
        """Rows referenced *by* ``row`` (row's FKs), with the FK column name."""
        out = []
        for fk in row.table.schema.foreign_keys:
            value = row[fk.column]
            if value is None:
                continue
            parent = self.table(fk.ref_table).by_key(value)
            if parent is not None:
                out.append((parent, fk.column))
        return out

    def referrers_of(self, row: Row) -> List[Tuple[Row, str, str]]:
        """Rows that reference ``row``: (child row, child table, fk column)."""
        out = []
        for tbl in self.tables.values():
            for fk in tbl.schema.foreign_keys:
                if fk.ref_table != row.table.name:
                    continue
                for child in tbl.lookup(fk.column, row.key):
                    out.append((child, tbl.name, fk.column))
        return out

    def neighbors(self, tid: TupleId) -> List[TupleId]:
        """Tuples joined to *tid* by one FK edge, in either direction."""
        row = self.row(tid)
        out = [TupleId(parent.table.name, parent.rowid)
               for parent, _ in self.references_of(row)]
        out.extend(TupleId(child.table.name, child.rowid)
                   for child, _, _ in self.referrers_of(row))
        return out

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def validate(self) -> List[str]:
        """Return a list of referential-integrity violations (empty = OK)."""
        problems = []
        for tbl in self.tables.values():
            for fk in tbl.schema.foreign_keys:
                parent = self.table(fk.ref_table)
                for row in tbl.rows():
                    value = row[fk.column]
                    if value is not None and parent.by_key(value) is None:
                        problems.append(
                            f"{tbl.name}:{row.rowid}.{fk.column}={value!r} dangling"
                        )
        return problems

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}={len(t)}" for n, t in self.tables.items())
        return f"Database({parts})"
