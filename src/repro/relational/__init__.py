"""In-memory relational database substrate.

This subpackage provides the structured-data foundation that the keyword
search techniques surveyed in the ICDE 2011 tutorial operate on: typed
tables with primary/foreign keys, a queryable schema graph, and a small
relational executor (select / project / hash join) used to evaluate
candidate networks.
"""

from repro.relational.schema import Column, ForeignKey, TableSchema, Schema
from repro.relational.table import Row, Table
from repro.relational.database import Database, TupleId
from repro.relational.executor import (
    select,
    project,
    hash_join,
    join_rows,
    JoinedRow,
)
from repro.relational.schema_graph import SchemaGraph, SchemaEdge

__all__ = [
    "Column",
    "ForeignKey",
    "TableSchema",
    "Schema",
    "Row",
    "Table",
    "Database",
    "TupleId",
    "select",
    "project",
    "hash_join",
    "join_rows",
    "JoinedRow",
    "SchemaGraph",
    "SchemaEdge",
]
