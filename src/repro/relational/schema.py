"""Relational schema model: columns, keys, table schemas and schemas.

The schema layer is deliberately small but strict: every table declares a
primary key, foreign keys must reference declared primary keys, and text
columns (the ones keyword search indexes) are marked explicitly.  The
candidate-network machinery in :mod:`repro.schema_search` consumes the
:class:`Schema` through :class:`repro.relational.schema_graph.SchemaGraph`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: Supported column types, mapped to the Python types accepted on insert.
DTYPES = {
    "int": int,
    "float": (int, float),
    "str": str,
}


class SchemaError(ValueError):
    """Raised for malformed schema definitions or violated constraints."""


@dataclass(frozen=True)
class Column:
    """A typed column.

    Parameters
    ----------
    name:
        Column name, unique within its table.
    dtype:
        One of ``"int"``, ``"float"``, ``"str"``.
    nullable:
        Whether ``None`` is an accepted value.
    text:
        Whether the column participates in keyword search (inverted
        indexes are built over text columns only).
    """

    name: str
    dtype: str = "str"
    nullable: bool = False
    text: bool = False

    def __post_init__(self) -> None:
        if self.dtype not in DTYPES:
            raise SchemaError(f"unknown dtype {self.dtype!r} for column {self.name!r}")

    def validate(self, value: object) -> object:
        """Check *value* against this column's type; return it unchanged."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            return None
        expected = DTYPES[self.dtype]
        if not isinstance(value, expected) or isinstance(value, bool):
            raise SchemaError(
                f"column {self.name!r} expects {self.dtype}, got {type(value).__name__}"
            )
        return value


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint ``column -> ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.column} -> {self.ref_table}.{self.ref_column}"


@dataclass(frozen=True)
class TableSchema:
    """Schema of a single table.

    A *relationship table* (e.g. ``write`` between ``author`` and
    ``paper``) is one whose foreign keys cover at least two distinct
    referenced tables; :meth:`is_relationship` is used by the form
    generator and return-node inference.
    """

    name: str
    columns: Tuple[Column, ...]
    primary_key: str
    foreign_keys: Tuple[ForeignKey, ...] = ()

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        if self.primary_key not in names:
            raise SchemaError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )
        for fk in self.foreign_keys:
            if fk.column not in names:
                raise SchemaError(
                    f"foreign key column {fk.column!r} is not a column of {self.name!r}"
                )

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def text_columns(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns if c.text)

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def foreign_key_for(self, column: str) -> Optional[ForeignKey]:
        for fk in self.foreign_keys:
            if fk.column == column:
                return fk
        return None

    def referenced_tables(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(fk.ref_table for fk in self.foreign_keys))

    def is_relationship(self) -> bool:
        """True if this table's role is to connect other tables.

        A table with two or more foreign keys is a relationship table
        even when both keys reference the same table (e.g. ``cite``
        linking papers to papers).
        """
        return len(self.foreign_keys) >= 2


def table(
    name: str,
    columns: Iterable[Column],
    primary_key: str,
    foreign_keys: Iterable[ForeignKey] = (),
) -> TableSchema:
    """Convenience constructor mirroring :class:`TableSchema`."""
    return TableSchema(name, tuple(columns), primary_key, tuple(foreign_keys))


class Schema:
    """A database schema: a named collection of :class:`TableSchema`.

    Validates referential integrity of the declaration itself: every
    foreign key must point at an existing table's primary key.
    """

    def __init__(self, tables: Iterable[TableSchema]):
        self._tables: Dict[str, TableSchema] = {}
        for tbl in tables:
            if tbl.name in self._tables:
                raise SchemaError(f"duplicate table {tbl.name!r}")
            self._tables[tbl.name] = tbl
        for tbl in self._tables.values():
            for fk in tbl.foreign_keys:
                target = self._tables.get(fk.ref_table)
                if target is None:
                    raise SchemaError(
                        f"{tbl.name}.{fk.column} references unknown table {fk.ref_table!r}"
                    )
                if fk.ref_column != target.primary_key:
                    raise SchemaError(
                        f"{tbl.name}.{fk.column} must reference the primary key "
                        f"of {fk.ref_table!r} ({target.primary_key!r})"
                    )

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self):
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    @property
    def table_names(self) -> List[str]:
        return list(self._tables)

    def table(self, name: str) -> TableSchema:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    def join_edges(self) -> List[Tuple[str, str, ForeignKey]]:
        """All (referencing table, referenced table, fk) triples."""
        edges = []
        for tbl in self:
            for fk in tbl.foreign_keys:
                edges.append((tbl.name, fk.ref_table, fk))
        return edges

    def entity_tables(self) -> List[str]:
        """Tables that are not pure relationship tables."""
        return [t.name for t in self if not t.is_relationship()]

    def relationship_tables(self) -> List[str]:
        return [t.name for t in self if t.is_relationship()]
