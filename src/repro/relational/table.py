"""Row and table storage.

Rows are stored as tuples in insertion order; a :class:`Row` is a cheap
view object carrying the owning table's schema so callers can use mapping
access (``row["title"]``).  Tables maintain hash indexes on the primary
key and on every foreign-key column, which is what makes candidate-network
evaluation (equi-joins along FKs) efficient.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.relational.schema import SchemaError, TableSchema


class Row:
    """An immutable view of one stored tuple.

    ``rowid`` is the table-local, 0-based insertion index; it is stable
    for the lifetime of the table (deletion is not supported — the data
    graph and all indexes hold rowids).
    """

    __slots__ = ("table", "rowid", "_values")

    def __init__(self, table: "Table", rowid: int, values: Tuple[object, ...]):
        self.table = table
        self.rowid = rowid
        self._values = values

    @property
    def values(self) -> Tuple[object, ...]:
        return self._values

    def __getitem__(self, column: str) -> object:
        return self._values[self.table.column_index(column)]

    def get(self, column: str, default: object = None) -> object:
        try:
            return self[column]
        except SchemaError:
            return default

    def as_dict(self) -> Dict[str, object]:
        return dict(zip(self.table.schema.column_names, self._values))

    @property
    def key(self) -> object:
        """Primary-key value of this row."""
        return self._values[self.table.pk_index]

    def text(self, columns: Optional[Tuple[str, ...]] = None) -> str:
        """Concatenated text content of *columns* (default: text columns)."""
        cols = columns if columns is not None else self.table.schema.text_columns
        parts = []
        for col in cols:
            value = self[col]
            if value is not None:
                parts.append(str(value))
        return " ".join(parts)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Row)
            and other.table is self.table
            and other.rowid == self.rowid
        )

    def __hash__(self) -> int:
        return hash((id(self.table), self.rowid))

    def __repr__(self) -> str:
        return f"Row({self.table.name}:{self.rowid} {self.as_dict()!r})"


class Table:
    """Column-validated tuple storage with PK/FK hash indexes."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        #: Monotonic mutation counter; bumped on every insert so derived
        #: structures (indexes, caches) can detect staleness cheaply.
        self.version = 0
        self._rows: List[Tuple[object, ...]] = []
        self._col_index: Dict[str, int] = {
            c.name: i for i, c in enumerate(schema.columns)
        }
        self.pk_index = self._col_index[schema.primary_key]
        self._pk_map: Dict[object, int] = {}
        # column name -> value -> list of rowids (built for FK columns).
        self._indexes: Dict[str, Dict[object, List[int]]] = {
            fk.column: {} for fk in schema.foreign_keys
        }

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def column_index(self, column: str) -> int:
        try:
            return self._col_index[column]
        except KeyError:
            raise SchemaError(f"no column {column!r} in table {self.name!r}") from None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def prepare(
        self,
        values: Mapping[str, object],
        pending_pks: Optional[Set[object]] = None,
    ) -> Tuple[object, ...]:
        """Validate an insert without applying it; return the row tuple.

        Runs every check :meth:`insert` performs (unknown columns, column
        types/nullability, primary-key presence and uniqueness) but never
        mutates the table, so callers that need all-or-nothing semantics
        — atomic batches, write-ahead logging — can validate first and
        apply only records guaranteed to succeed.  *pending_pks* extends
        the duplicate-key check with keys earlier in the same batch.
        """
        unknown = set(values) - set(self.schema.column_names)
        if unknown:
            raise SchemaError(f"unknown columns {sorted(unknown)} for {self.name!r}")
        record = []
        for col in self.schema.columns:
            record.append(col.validate(values.get(col.name)))
        pk_value = record[self.pk_index]
        if pk_value is None:
            raise SchemaError(f"primary key {self.schema.primary_key!r} must be set")
        if pk_value in self._pk_map or (
            pending_pks is not None and pk_value in pending_pks
        ):
            raise SchemaError(
                f"duplicate primary key {pk_value!r} in table {self.name!r}"
            )
        return tuple(record)

    def apply(self, record: Tuple[object, ...]) -> int:
        """Store a :meth:`prepare`-validated row tuple; returns its rowid.

        Infallible for prepared records: all validation happened in
        :meth:`prepare`, so the version bump and index updates here
        never leave the table half-mutated.
        """
        rowid = len(self._rows)
        self._rows.append(record)
        self._pk_map[record[self.pk_index]] = rowid
        for column, index in self._indexes.items():
            value = record[self._col_index[column]]
            index.setdefault(value, []).append(rowid)
        self.version += 1
        return rowid

    def insert(self, **values: object) -> int:
        """Insert a row given by keyword arguments; returns its rowid."""
        return self.apply(self.prepare(values))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def row(self, rowid: int) -> Row:
        return Row(self, rowid, self._rows[rowid])

    def rows(self) -> Iterator[Row]:
        for rowid, values in enumerate(self._rows):
            yield Row(self, rowid, values)

    def by_key(self, pk_value: object) -> Optional[Row]:
        rowid = self._pk_map.get(pk_value)
        if rowid is None:
            return None
        return self.row(rowid)

    def lookup(self, column: str, value: object) -> List[Row]:
        """All rows with ``row[column] == value`` (uses indexes if present)."""
        if column == self.schema.primary_key:
            row = self.by_key(value)
            return [row] if row is not None else []
        index = self._indexes.get(column)
        if index is not None:
            return [self.row(r) for r in index.get(value, ())]
        idx = self.column_index(column)
        return [
            Row(self, rowid, values)
            for rowid, values in enumerate(self._rows)
            if values[idx] == value
        ]

    def distinct(self, column: str) -> List[object]:
        """Distinct non-null values of *column*, in first-seen order."""
        idx = self.column_index(column)
        seen = dict.fromkeys(
            values[idx] for values in self._rows if values[idx] is not None
        )
        return list(seen)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self)} rows)"
