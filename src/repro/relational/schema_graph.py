"""The schema graph (tutorial slides 27-28, 115).

Nodes are tables; every foreign key contributes a directed edge from the
referencing (child) table to the referenced (parent) table.  Candidate
network generation expands over this graph in both directions, so the
graph exposes undirected adjacency with the originating foreign key
attached — joins need to know which column pair to equate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import networkx as nx

from repro.relational.schema import ForeignKey, Schema


@dataclass(frozen=True)
class SchemaEdge:
    """One traversable join edge.

    ``child`` holds the FK column; ``parent`` is referenced on its primary
    key.  ``forward`` is True when traversal goes child → parent.
    """

    child: str
    parent: str
    fk: ForeignKey

    def endpoints(self) -> Tuple[str, str]:
        return (self.child, self.parent)

    def other(self, table: str) -> str:
        if table == self.child:
            return self.parent
        if table == self.parent:
            return self.child
        raise ValueError(f"{table!r} is not an endpoint of {self!r}")

    def join_columns(self, from_table: str) -> Tuple[str, str]:
        """Columns to equate when traversing from *from_table*.

        Returns ``(column on from_table side, column on the other side)``.
        """
        if from_table == self.child:
            return (self.fk.column, self.fk.ref_column)
        if from_table == self.parent:
            return (self.fk.ref_column, self.fk.column)
        raise ValueError(f"{from_table!r} is not an endpoint of {self!r}")


class SchemaGraph:
    """Undirected multigraph over tables with FK-labelled edges."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self._adjacency: Dict[str, List[SchemaEdge]] = {t.name: [] for t in schema}
        self._edges: List[SchemaEdge] = []
        for child, parent, fk in schema.join_edges():
            edge = SchemaEdge(child, parent, fk)
            self._edges.append(edge)
            self._adjacency[child].append(edge)
            if parent != child:
                self._adjacency[parent].append(edge)

    @property
    def tables(self) -> List[str]:
        return list(self._adjacency)

    @property
    def edges(self) -> List[SchemaEdge]:
        return list(self._edges)

    def neighbors(self, table: str) -> Iterator[Tuple[str, SchemaEdge]]:
        """(adjacent table, edge) pairs reachable from *table*."""
        for edge in self._adjacency[table]:
            yield edge.other(table), edge

    def degree(self, table: str) -> int:
        return len(self._adjacency[table])

    def edges_between(self, a: str, b: str) -> List[SchemaEdge]:
        return [e for e in self._adjacency[a] if e.other(a) == b]

    def is_connected(self) -> bool:
        return nx.is_connected(self.to_networkx()) if self.tables else True

    def shortest_join_path(self, source: str, target: str) -> List[str]:
        """Shortest table path between two tables (tables, not edges)."""
        return nx.shortest_path(self.to_networkx(), source, target)

    def to_networkx(self) -> "nx.MultiGraph":
        graph = nx.MultiGraph()
        graph.add_nodes_from(self.tables)
        for edge in self._edges:
            graph.add_edge(edge.child, edge.parent, fk=edge.fk)
        return graph

    def __repr__(self) -> str:
        return f"SchemaGraph({len(self.tables)} tables, {len(self._edges)} edges)"
