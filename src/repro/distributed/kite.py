"""Kite-style cross-database keyword search (Sayyadian et al., ICDE 07).

Answers may span databases: a tuple in DB1 joins a tuple in DB2 through
an *inter-database link* — a discovered or declared correspondence
between columns (e.g. ``db1.author.name ~ db2.person.fullname``).  We
build one combined data graph whose nodes are (db name, tuple) and whose
edges are the intra-database FK edges plus value-matching link edges,
then run the ordinary graph search (BANKS backward expansion) on it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.data_graph import DataGraph, build_data_graph
from repro.graph_search.banks import BanksResult, banks_backward
from repro.index.inverted import InvertedIndex
from repro.index.text import tokenize
from repro.relational.database import Database, TupleId


@dataclass(frozen=True)
class InterDbLink:
    """Join correspondence across databases."""

    db_a: str
    table_a: str
    column_a: str
    db_b: str
    table_b: str
    column_b: str
    weight: float = 2.0  # cross-db joins cost more than local FKs


def _qualify(db_name: str, tid: TupleId) -> TupleId:
    """Namespace a tuple id with its database."""
    return TupleId(f"{db_name}/{tid.table}", tid.rowid)


class CrossDatabase:
    """A federation of named databases with inter-database links."""

    def __init__(
        self,
        databases: Dict[str, Database],
        links: Sequence[InterDbLink] = (),
    ):
        self.databases = dict(databases)
        self.links = list(links)
        self.indexes = {
            name: InvertedIndex(db) for name, db in self.databases.items()
        }
        # keyword -> one sorted qualified-id list per member database,
        # computed once; lookups lazily merge the sorted runs.
        self._qualified: Dict[str, List[List[TupleId]]] = {}
        self.graph = self._build_graph()

    def _build_graph(self) -> DataGraph:
        graph = DataGraph()
        for name, db in self.databases.items():
            local = build_data_graph(db)
            for node in local.nodes:
                graph.add_node(_qualify(name, node))
            for node in local.nodes:
                for nbr, weight in local.neighbors(node):
                    graph.add_edge(
                        _qualify(name, node), _qualify(name, nbr), weight
                    )
        for link in self.links:
            db_a = self.databases[link.db_a]
            db_b = self.databases[link.db_b]
            # Value-match join: hash db_b's column, probe with db_a's.
            by_value: Dict[object, List[TupleId]] = {}
            for row in db_b.rows(link.table_b):
                value = row[link.column_b]
                if value is not None:
                    by_value.setdefault(self._normalise(value), []).append(
                        TupleId(link.table_b, row.rowid)
                    )
            for row in db_a.rows(link.table_a):
                value = row[link.column_a]
                if value is None:
                    continue
                for target in by_value.get(self._normalise(value), ()):
                    graph.add_edge(
                        _qualify(link.db_a, TupleId(link.table_a, row.rowid)),
                        _qualify(link.db_b, target),
                        link.weight,
                    )
        return graph

    @staticmethod
    def _normalise(value: object) -> object:
        if isinstance(value, str):
            return " ".join(tokenize(value))
        return value

    def matching_tuples(self, keyword: str) -> List[TupleId]:
        """Qualified tuples containing *keyword* across all databases.

        Each per-database posting list is qualified and sorted once per
        keyword (postings come back in table insertion order, and the
        db-name prefix reorders tables anyway), then cached; repeat
        lookups only re-run the lazy k-way merge of the sorted runs
        instead of re-sorting the full federation-wide list.
        """
        runs = self._qualified.get(keyword)
        if runs is None:
            runs = [
                sorted(
                    _qualify(name, tid)
                    for tid in index.matching_tuples(keyword)
                )
                for name, index in sorted(self.indexes.items())
            ]
            self._qualified[keyword] = runs
        return list(heapq.merge(*runs))


def cross_search(
    federation: CrossDatabase,
    keywords: Sequence[str],
    k: int = 5,
) -> BanksResult:
    """Top-k cross-database answer trees (BANKS over the merged graph)."""
    groups = [federation.matching_tuples(kw) for kw in keywords]
    if any(not g for g in groups):
        return BanksResult([], 0)
    return banks_backward(federation.graph, groups, k=k)


def spans_databases(tree_nodes: Sequence[TupleId]) -> bool:
    """True when an answer mixes tuples from different databases."""
    prefixes = {node.table.split("/", 1)[0] for node in tree_nodes}
    return len(prefixes) > 1
