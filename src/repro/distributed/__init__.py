"""Keyword search beyond one database (slide 168).

* database selection (Yu et al., SIGMOD 07): given many databases,
  rank which ones can answer a keyword query *jointly* — keyword
  frequency alone is not enough, the keywords must be connectable;
* Kite-style cross-database search (Sayyadian et al., ICDE 07): answers
  joining tuples across databases through discovered/declared
  inter-database foreign-key links.
"""

from repro.distributed.selection import DatabaseSummary, rank_databases
from repro.distributed.kite import InterDbLink, CrossDatabase, cross_search

__all__ = [
    "DatabaseSummary",
    "rank_databases",
    "InterDbLink",
    "CrossDatabase",
    "cross_search",
]
