"""Keyword-based database selection (Yu et al., SIGMOD 07).

Given a keyword query and many candidate databases, rank databases by
their ability to produce *joint* answers.  Plain document-frequency
summaries overrate databases where the keywords occur but cannot be
connected; the paper's keyword-relationship summaries capture, for
keyword pairs, how closely their occurrences join.  Our summary stores

* per keyword: tuple frequency,
* per keyword pair: the minimum join distance (in FK hops, up to a
  horizon D) between tuples containing them, with the count of close
  pairs.

Scoring multiplies per-keyword coverage with a pairwise relationship
factor that decays with distance — a database where "widom" and "xml"
co-occur one join apart outranks one where both merely exist.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.graph.data_graph import DataGraph, build_data_graph
from repro.index.inverted import InvertedIndex
from repro.relational.database import Database


@dataclass
class DatabaseSummary:
    """Offline keyword-relationship summary of one database."""

    name: str
    keyword_frequency: Dict[str, int]
    pair_distance: Dict[FrozenSet[str], int]  # min FK hops between matches
    size: int

    @classmethod
    def build(
        cls,
        name: str,
        db: Database,
        horizon: int = 4,
        vocabulary: Optional[Sequence[str]] = None,
    ) -> "DatabaseSummary":
        index = InvertedIndex(db)
        graph = build_data_graph(db)
        vocab = (
            [v.lower() for v in vocabulary]
            if vocabulary is not None
            else index.vocabulary
        )
        frequency = {
            term: index.document_frequency(term)
            for term in vocab
            if index.document_frequency(term) > 0
        }
        pair_distance: Dict[FrozenSet[str], int] = {}
        terms = sorted(frequency)
        # Pairwise min distances via bounded BFS from each term's matches.
        reach: Dict[str, Dict] = {}
        for term in terms:
            sources = index.matching_tuples(term)
            dist: Dict = {}
            frontier = list(sources)
            for s in sources:
                dist[s] = 0
            hops = 0
            while frontier and hops < horizon:
                hops += 1
                nxt = []
                for node in frontier:
                    for nbr, __ in graph.neighbors(node):
                        if nbr not in dist:
                            dist[nbr] = hops
                            nxt.append(nbr)
                frontier = nxt
            reach[term] = dist
        for a, b in itertools.combinations(terms, 2):
            best: Optional[int] = None
            b_matches = index.matching_tuples(b)
            dist_a = reach[a]
            for tid in b_matches:
                d = dist_a.get(tid)
                if d is not None and (best is None or d < best):
                    best = d
            if best is not None:
                pair_distance[frozenset((a, b))] = best
        return cls(name, frequency, pair_distance, db.size())

    # ------------------------------------------------------------------
    def coverage(self, keywords: Sequence[str]) -> float:
        """Fraction of query keywords present at all."""
        keywords = [k.lower() for k in keywords]
        if not keywords:
            return 0.0
        present = sum(1 for k in keywords if self.keyword_frequency.get(k, 0) > 0)
        return present / len(keywords)

    def relationship_factor(self, keywords: Sequence[str]) -> float:
        """Mean pairwise closeness 1/(1+dist); 0 for unconnectable pairs."""
        keywords = sorted({k.lower() for k in keywords})
        pairs = list(itertools.combinations(keywords, 2))
        if not pairs:
            return 1.0
        total = 0.0
        for a, b in pairs:
            dist = self.pair_distance.get(frozenset((a, b)))
            if dist is not None:
                total += 1.0 / (1.0 + dist)
        return total / len(pairs)

    def score(self, keywords: Sequence[str]) -> float:
        cov = self.coverage(keywords)
        if cov < 1.0:
            return 0.0  # AND semantics: a missing keyword disqualifies
        freq = 1.0
        for keyword in {k.lower() for k in keywords}:
            freq *= math.log1p(self.keyword_frequency.get(keyword, 0))
        return freq * (0.1 + self.relationship_factor(keywords))


def rank_databases(
    summaries: Sequence[DatabaseSummary], keywords: Sequence[str]
) -> List[Tuple[DatabaseSummary, float]]:
    """Databases ranked by joint answering ability, zero scores dropped."""
    scored = [(s, s.score(keywords)) for s in summaries]
    scored = [(s, v) for s, v in scored if v > 0]
    scored.sort(key=lambda pair: (-pair[1], pair[0].name))
    return scored
