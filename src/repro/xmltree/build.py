"""Builders and a parser for XML documents.

``element`` gives a concise literal syntax used throughout the tests to
transcribe the tutorial's slide trees; ``parse_xml`` accepts real XML
markup via :mod:`xml.etree.ElementTree`.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional, Union

from repro.xmltree.node import XmlNode

Child = Union["XmlNode", str]


def element(tag: str, *children: Child, value: Optional[str] = None) -> XmlNode:
    """Build a node: ``element("paper", element("title", value="xml"))``.

    A bare string child is shorthand for a text value on this node
    (``element("name", "sigmod")`` == ``element("name", value="sigmod")``).
    """
    node = XmlNode(tag, value=value)
    for child in children:
        if isinstance(child, str):
            if node.value is None:
                node.value = child
            else:
                node.value += " " + child
        else:
            node.add_child(child)
    return node


def text_element(tag: str, value: str) -> XmlNode:
    """A leaf node carrying text."""
    return XmlNode(tag, value=value)


def parse_xml(markup: str) -> XmlNode:
    """Parse XML markup into an :class:`XmlNode` tree."""
    return _convert(ET.fromstring(markup))


def _convert(elem: "ET.Element") -> XmlNode:
    text = elem.text.strip() if elem.text and elem.text.strip() else None
    node = XmlNode(elem.tag, value=text)
    for child in elem:
        node.add_child(_convert(child))
    return node
