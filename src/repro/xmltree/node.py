"""XML nodes with Dewey labels.

A :class:`XmlNode` is an ordered, labelled tree node with an optional
text value.  Dewey labels (tuples of child offsets, root = ``(0,)``)
give three properties the ?LCA algorithms rely on:

* document order  == lexicographic order of Dewey labels,
* ancestor(u, v)  == ``u.dewey`` is a proper prefix of ``v.dewey``,
* lca(u, v)       == longest common prefix of the two labels.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

Dewey = Tuple[int, ...]


def common_prefix(a: Dewey, b: Dewey) -> Dewey:
    """Longest common prefix of two Dewey labels."""
    n = 0
    for x, y in zip(a, b):
        if x != y:
            break
        n += 1
    return a[:n]


def lca_dewey(labels: Sequence[Dewey]) -> Dewey:
    """Dewey label of the LCA of all *labels* (root label for empty input)."""
    if not labels:
        return (0,)
    acc = labels[0]
    for label in labels[1:]:
        acc = common_prefix(acc, label)
    return acc


def is_ancestor(a: Dewey, d: Dewey) -> bool:
    """True iff *a* is a proper ancestor of *d*."""
    return len(a) < len(d) and d[: len(a)] == a


def is_ancestor_or_self(a: Dewey, d: Dewey) -> bool:
    return len(a) <= len(d) and d[: len(a)] == a


class XmlNode:
    """One node of an XML document tree."""

    __slots__ = ("tag", "value", "children", "parent", "dewey")

    def __init__(self, tag: str, value: Optional[str] = None):
        self.tag = tag
        self.value = value
        self.children: List[XmlNode] = []
        self.parent: Optional[XmlNode] = None
        self.dewey: Dewey = (0,)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_child(self, child: "XmlNode") -> "XmlNode":
        child.parent = self
        child.dewey = self.dewey + (len(self.children),)
        self.children.append(child)
        child._renumber()
        return child

    def _renumber(self) -> None:
        for i, child in enumerate(self.children):
            child.dewey = self.dewey + (i,)
            child._renumber()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self.dewey) - 1

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def root(self) -> "XmlNode":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def label_path(self) -> str:
        """Absolute label path like ``/conf/paper/title``."""
        parts: List[str] = []
        node: Optional[XmlNode] = self
        while node is not None:
            parts.append(node.tag)
            node = node.parent
        return "/" + "/".join(reversed(parts))

    def ancestors(self, include_self: bool = False) -> Iterator["XmlNode"]:
        node = self if include_self else self.parent
        while node is not None:
            yield node
            node = node.parent

    def is_ancestor_of(self, other: "XmlNode") -> bool:
        return is_ancestor(self.dewey, other.dewey)

    def descendants(self, include_self: bool = False) -> Iterator["XmlNode"]:
        """Pre-order (document-order) traversal of the subtree."""
        if include_self:
            yield self
        for child in self.children:
            yield from child.descendants(include_self=True)

    def subtree_size(self) -> int:
        return 1 + sum(c.subtree_size() for c in self.children)

    def find(self, predicate: Callable[["XmlNode"], bool]) -> List["XmlNode"]:
        return [n for n in self.descendants(include_self=True) if predicate(n)]

    def find_by_tag(self, tag: str) -> List["XmlNode"]:
        return self.find(lambda n: n.tag == tag)

    def child_by_tag(self, tag: str) -> Optional["XmlNode"]:
        for child in self.children:
            if child.tag == tag:
                return child
        return None

    def node_at(self, dewey: Dewey) -> Optional["XmlNode"]:
        """Node with the given Dewey label within this node's document."""
        root = self.root()
        if not dewey or dewey[0] != root.dewey[0]:
            return None
        node = root
        for offset in dewey[1:]:
            if offset >= len(node.children):
                return None
            node = node.children[offset]
        return node

    # ------------------------------------------------------------------
    # Content
    # ------------------------------------------------------------------
    def text(self) -> str:
        """Concatenated text of the subtree, in document order."""
        parts = []
        for node in self.descendants(include_self=True):
            if node.value:
                parts.append(node.value)
        return " ".join(parts)

    def to_string(self, indent: int = 0) -> str:
        """Readable serialisation (used by snippets and examples)."""
        pad = "  " * indent
        if self.is_leaf:
            value = f" {self.value}" if self.value else ""
            return f"{pad}<{self.tag}>{value}"
        lines = [f"{pad}<{self.tag}>"]
        if self.value:
            lines.append(f"{pad}  {self.value}")
        for child in self.children:
            lines.append(child.to_string(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        dewey = ".".join(map(str, self.dewey))
        value = f"={self.value!r}" if self.value is not None else ""
        return f"XmlNode({self.tag}@{dewey}{value})"
