"""XML tree substrate.

XML keyword search (slides 27, 32-43, 136-141) works over ordered
labelled trees with Dewey identifiers: each node's Dewey label is its
path of child offsets from the root, so lowest common ancestors reduce
to longest common prefixes and document order to lexicographic order.
"""

from repro.xmltree.node import Dewey, XmlNode, lca_dewey, common_prefix
from repro.xmltree.build import element, text_element, parse_xml
from repro.xmltree.index import XmlKeywordIndex

__all__ = [
    "Dewey",
    "XmlNode",
    "lca_dewey",
    "common_prefix",
    "element",
    "text_element",
    "parse_xml",
    "XmlKeywordIndex",
]
