"""Keyword inverted lists over an XML document.

A keyword matches a node if it occurs in the node's text value or equals
the node's tag (the tutorial's queries mix value keywords like "Mark"
with label keywords like "paper" — slide 109).  Lists are kept sorted in
document order (Dewey order), which is the precondition of every ?LCA
algorithm in :mod:`repro.xml_search`.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Dict, List, Optional, Sequence

from repro.index.text import tokenize
from repro.xmltree.node import Dewey, XmlNode


class XmlKeywordIndex:
    """token -> sorted Dewey list, plus label-path statistics."""

    def __init__(self, root: XmlNode, match_tags: bool = True):
        self.root = root
        self.match_tags = match_tags
        self._lists: Dict[str, List[Dewey]] = {}
        self._node_count = 0
        self._path_counts: Dict[str, int] = {}
        self._build()

    def _build(self) -> None:
        for node in self.root.descendants(include_self=True):
            self._node_count += 1
            path = node.label_path()
            self._path_counts[path] = self._path_counts.get(path, 0) + 1
            tokens = set()
            if node.value:
                tokens.update(tokenize(node.value))
            if self.match_tags:
                tokens.update(tokenize(node.tag))
            for token in tokens:
                self._lists.setdefault(token, []).append(node.dewey)
        for deweys in self._lists.values():
            deweys.sort()

    # ------------------------------------------------------------------
    # Lists
    # ------------------------------------------------------------------
    def matches(self, keyword: str) -> List[Dewey]:
        """Sorted Dewey list for *keyword* (empty when absent)."""
        return list(self._lists.get(keyword.lower(), ()))

    def match_lists(self, keywords: Sequence[str]) -> List[List[Dewey]]:
        return [self.matches(k) for k in keywords]

    def has_all(self, keywords: Sequence[str]) -> bool:
        return all(self._lists.get(k.lower()) for k in keywords)

    def list_size(self, keyword: str) -> int:
        return len(self._lists.get(keyword.lower(), ()))

    @property
    def vocabulary(self) -> List[str]:
        return sorted(self._lists)

    @property
    def node_count(self) -> int:
        return self._node_count

    def inverse_element_frequency(self, keyword: str) -> float:
        """ief(x) = N / #nodes containing x (XBridge scoring, slide 158)."""
        size = self.list_size(keyword)
        if size == 0:
            return float(self._node_count)
        return self._node_count / size

    # ------------------------------------------------------------------
    # Label-path statistics (XReal / XBridge / structure inference)
    # ------------------------------------------------------------------
    def label_paths(self) -> List[str]:
        return sorted(self._path_counts)

    def path_count(self, path: str) -> int:
        return self._path_counts.get(path, 0)

    # ------------------------------------------------------------------
    # Sorted-list primitives used by SLCA algorithms (slide 138-139)
    # ------------------------------------------------------------------
    @staticmethod
    def left_match(deweys: List[Dewey], v: Dewey) -> Optional[Dewey]:
        """lm(S, v): rightmost element of S that is <= v in document order."""
        pos = bisect_right(deweys, v)
        if pos == 0:
            return None
        return deweys[pos - 1]

    @staticmethod
    def right_match(deweys: List[Dewey], v: Dewey) -> Optional[Dewey]:
        """rm(S, v): leftmost element of S that is >= v in document order."""
        pos = bisect_left(deweys, v)
        if pos == len(deweys):
            return None
        return deweys[pos]

    @staticmethod
    def closest_match(deweys: List[Dewey], v: Dewey) -> Optional[Dewey]:
        """Element of S whose LCA with *v* is deepest (ties -> left match).

        Standard XKSearch primitive: the closest match in document order
        maximises the common-prefix length with *v*.
        """
        left = XmlKeywordIndex.left_match(deweys, v)
        right = XmlKeywordIndex.right_match(deweys, v)
        if left is None:
            return right
        if right is None:
            return left

        def lcp(a: Dewey, b: Dewey) -> int:
            n = 0
            for x, y in zip(a, b):
                if x != y:
                    break
                n += 1
            return n

        return left if lcp(left, v) >= lcp(right, v) else right

    def __repr__(self) -> str:
        return (
            f"XmlKeywordIndex({len(self._lists)} terms, "
            f"{self._node_count} nodes)"
        )
