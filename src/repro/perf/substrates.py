"""Memoised query substrates with mutation-counter invalidation.

``KeywordSearchEngine.search`` used to rebuild the same intermediate
structures on every call: the query's tuple sets, the candidate networks
enumerated from them, the per-keyword tuple groups the graph algorithms
start from, and (for ``suggest_forms``) the entire skeleton → form →
:class:`~repro.forms.matching.FormIndex` pipeline.  All of these depend
only on (database contents, keyword set, a couple of size knobs), so a
serving engine can compute each once and reuse it across requests — the
shared-execution argument of slides 129-133.

:class:`SubstrateCache` memoises all four families.  Every public
accessor first compares the database's :attr:`Database.data_version`
against the version the cache was filled under, so a mutated database
can never serve stale substrates.  Because the data model is
insert-only, the default reaction to a mutation is an *incremental
delta*: the inverted index patches postings for the appended rows and
every memoised :class:`TupleSets` re-classifies just those rows,
keeping warm-cache speedups across writes; memoised CN lists drop only
when a new tuple-set key appears (``incremental=False`` restores the
old drop-everything behavior).  Builds take a lock (double-checked) so
concurrent batch workers share one build instead of racing.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.forms.generation import generate_forms, generate_skeletons
from repro.forms.matching import FormIndex
from repro.index.inverted import InvertedIndex
from repro.relational.database import Database, TupleId
from repro.relational.schema_graph import SchemaGraph
from repro.resilience.errors import ReproError, SubstrateBuildError
from repro.resilience.failpoints import fail_point
from repro.schema_search.candidate_networks import (
    CandidateNetwork,
    generate_candidate_networks,
)
from repro.schema_search.tuple_sets import TupleSets


def normalize_keywords(keywords: Sequence[str]) -> Tuple[str, ...]:
    """Canonical cache key for a keyword multiset: sorted, lowered, unique."""
    return tuple(sorted({k.lower() for k in keywords}))


class SubstrateCache:
    """Per-engine memo of query substrates, invalidated by data version."""

    def __init__(
        self,
        db: Database,
        index_supplier: Callable[[], InvertedIndex],
        schema_graph_supplier: Callable[[], SchemaGraph],
        incremental: bool = True,
    ):
        self.db = db
        self._index = index_supplier
        self._schema_graph = schema_graph_supplier
        self._lock = threading.RLock()
        self._version = db.data_version
        self._tuple_sets: Dict[Tuple[str, ...], TupleSets] = {}
        self._networks: Dict[Tuple[Tuple[str, ...], int], List[CandidateNetwork]] = {}
        self._keyword_matches: Dict[str, Tuple[TupleId, ...]] = {}
        self._form_pipeline: Dict[int, Tuple[tuple, tuple, FormIndex]] = {}
        self.builds: Dict[str, int] = {
            "tuple_sets": 0,
            "candidate_networks": 0,
            "keyword_groups": 0,
            "form_pipeline": 0,
        }
        self.invalidations = 0
        #: When True, a version bump patches the index and memoised
        #: tuple sets in place (insert-only data model) instead of
        #: dropping everything; False restores clear-on-mutation.
        self.incremental = incremental
        self.patches: Dict[str, int] = {
            "applied": 0,
            "index_rows": 0,
            "tuple_sets_patched": 0,
            "cn_memos_dropped": 0,
        }
        #: True when the last version bump was absorbed by an in-place
        #: patch — the engine uses this to decide whether its own
        #: index-derived structures survived.
        self.last_delta_applied = False
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry`; when
        #: set (the engine wires its own in), every build observes a
        #: ``substrates.build_ms.<site>`` histogram.
        self.metrics = None

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def check_version(self) -> bool:
        """Reconcile with a mutated database; True if the version moved.

        With ``incremental`` on, appended rows are patched into the
        warm index and memoised tuple sets (see :meth:`_apply_delta`);
        only stale CN memos and the cheap keyword/form memos drop.
        Otherwise — or if the delta fails — everything is cleared as
        before.
        """
        with self._lock:
            version = self.db.data_version
            if version == self._version:
                return False
            self._version = version
            if self.incremental and self._apply_delta():
                self.last_delta_applied = True
                return True
            self.last_delta_applied = False
            self._clear_locked()
            self.invalidations += 1
            return True

    def _apply_delta(self) -> bool:
        """Patch memoised substrates in place for appended rows.

        The data model is insert-only, so a delta always exists: the
        index refreshes its posting suffixes, each memoised
        :class:`TupleSets` re-classifies only the new rows, and a CN
        memo is dropped *only* when its keyword set gained a brand-new
        tuple-set key (CN enumeration depends only on which keys are
        non-empty).  Keyword-match and form memos are cleared — they
        are cheap to rebuild and not worth a patch path.  Returns False
        on any failure, in which case the caller falls back to the full
        clear.
        """
        try:
            index = self._index()
            self.patches["index_rows"] += index.refresh()
            for key, tuple_sets in self._tuple_sets.items():
                created = tuple_sets.refresh()
                self.patches["tuple_sets_patched"] += 1
                if created:
                    stale = [k for k in self._networks if k[0] == key]
                    for memo_key in stale:
                        del self._networks[memo_key]
                    self.patches["cn_memos_dropped"] += len(stale)
            self._keyword_matches.clear()
            self._form_pipeline.clear()
            self.patches["applied"] += 1
            return True
        except Exception:
            return False

    def clear(self) -> None:
        with self._lock:
            self._clear_locked()

    def _clear_locked(self) -> None:
        self._tuple_sets.clear()
        self._networks.clear()
        self._keyword_matches.clear()
        self._form_pipeline.clear()

    # ------------------------------------------------------------------
    # Substrates
    # ------------------------------------------------------------------
    def tuple_sets(self, keywords: Sequence[str]) -> TupleSets:
        """The query's tuple sets, shared across identical keyword sets."""
        self.check_version()
        key = normalize_keywords(keywords)
        with self._lock:
            cached = self._tuple_sets.get(key)
            if cached is None:
                cached = self._build(
                    "tuple_sets",
                    lambda: TupleSets(self.db, self._index(), key),
                    key=" ".join(key),
                )
                self._tuple_sets[key] = cached
                self.builds["tuple_sets"] += 1
            return cached

    def candidate_networks(
        self, keywords: Sequence[str], max_size: int
    ) -> List[CandidateNetwork]:
        """Duplicate-free CNs for (keyword set, max size), memoised."""
        self.check_version()
        key = (normalize_keywords(keywords), max_size)
        with self._lock:
            cached = self._networks.get(key)
            if cached is None:
                cached = self._build(
                    "candidate_networks",
                    lambda: generate_candidate_networks(
                        self._schema_graph(),
                        self.tuple_sets(keywords),
                        max_size=max_size,
                    ),
                    key=" ".join(key[0]),
                )
                self._networks[key] = cached
                self.builds["candidate_networks"] += 1
            return cached

    def keyword_groups(
        self, keywords: Sequence[str]
    ) -> Optional[List[List[TupleId]]]:
        """Per-keyword matching-tuple groups (graph-search seeds).

        Returns ``None`` when any keyword matches nothing (AND
        semantics).  Inner lists are fresh copies — the graph algorithms
        are free to mutate them.
        """
        self.check_version()
        index = self._index()
        groups: List[List[TupleId]] = []
        for keyword in keywords:
            keyword = keyword.lower()
            with self._lock:
                match = self._keyword_matches.get(keyword)
                if match is None:
                    kw = keyword
                    match = self._build(
                        "keyword_groups",
                        lambda: index.matching_tuples_view(kw),
                        key=kw,
                    )
                    self._keyword_matches[keyword] = match
                    self.builds["keyword_groups"] += 1
            if not match:
                return None
            groups.append(list(match))
        return groups

    def form_pipeline(
        self, max_skeleton_size: int = 3
    ) -> Tuple[tuple, tuple, FormIndex]:
        """(skeletons, forms, FormIndex) — built once per skeleton size."""
        self.check_version()
        with self._lock:
            cached = self._form_pipeline.get(max_skeleton_size)
            if cached is None:

                def build() -> Tuple[tuple, tuple, FormIndex]:
                    skeletons = tuple(
                        generate_skeletons(
                            self._schema_graph(), max_size=max_skeleton_size
                        )
                    )
                    forms = tuple(generate_forms(self.db.schema, skeletons))
                    return (skeletons, forms, FormIndex(forms, self._index()))

                cached = self._build("form_pipeline", build)
                self._form_pipeline[max_skeleton_size] = cached
                self.builds["form_pipeline"] += 1
            return cached

    # ------------------------------------------------------------------
    # Fault isolation
    # ------------------------------------------------------------------
    def _build(self, site: str, builder: Callable, key: Optional[str] = None):
        """Run a substrate build inside the fault boundary.

        Hits the ``substrates.<site>`` failpoint first (so chaos tests
        can inject faults or delays per keyword), then converts any
        build exception into a transient :class:`SubstrateBuildError`
        that the batch executor retries and counts against the circuit
        breaker.  Nothing is memoised on failure.
        """
        try:
            fail_point(f"substrates.{site}", key=key)
            metrics = self.metrics
            if metrics is None:
                return builder()
            start_s = time.perf_counter()
            built = builder()
            metrics.observe(
                f"substrates.build_ms.{site}",
                (time.perf_counter() - start_s) * 1000.0,
            )
            return built
        except ReproError:
            raise
        except Exception as exc:
            raise SubstrateBuildError(site, exc) from exc

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "version": self._version,
                "invalidations": self.invalidations,
                "incremental": self.incremental,
                "patches": dict(self.patches),
                "builds": dict(self.builds),
                "entries": {
                    "tuple_sets": len(self._tuple_sets),
                    "candidate_networks": len(self._networks),
                    "keyword_groups": len(self._keyword_matches),
                    "form_pipeline": len(self._form_pipeline),
                },
                "bytes": self.memo_bytes(),
            }

    def memo_bytes(self) -> int:
        """Deep size of the memoised substrates this cache uniquely pins.

        Stops at the database/table/index layer — a memoised tuple set
        references rows and the inverted index but does not own them —
        so this is the marginal cost of keeping the cache warm.
        """
        from repro.obs.memory import sizeof_each
        from repro.relational.table import Table

        roots = (
            list(self._tuple_sets.values())
            + list(self._networks.values())
            + list(self._keyword_matches.values())
            + list(self._form_pipeline.values())
        )
        return sizeof_each(roots, stop=(Database, Table, InvertedIndex))

    def __repr__(self) -> str:
        return (
            f"SubstrateCache(v{self._version}, "
            f"{len(self._tuple_sets)} tuple-sets, "
            f"{len(self._networks)} CN sets)"
        )
