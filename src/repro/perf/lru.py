"""Bounded LRU cache with observability counters.

A deliberately small, dependency-free implementation: an
:class:`collections.OrderedDict` under a lock, with hit / miss /
eviction / invalidation counters exposed for benchmarks and the CLI
``--stats`` flag.  Values are stored as-is; callers that hand out
mutable values should copy on the way out (the engine's result cache
does).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterator, Optional, Tuple


@dataclass
class CacheStats:
    """Counters for one cache; cheap enough to read on every request."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.requests
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, invalidations={self.invalidations})"
        )


_MISSING = object()


class LRUCache:
    """Thread-safe least-recently-used cache of bounded capacity."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Fetch *key*, promoting it to most-recently-used on a hit."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self._data.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh *key*, evicting the LRU entry when full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.stats.evictions += 1

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """``get`` with fallback: compute outside the lock, then insert.

        Concurrent misses on the same key may compute twice (last write
        wins); the batch executor coalesces duplicate queries upstream
        so this stays rare in practice.
        """
        value = self.get(key, _MISSING)
        if value is not _MISSING:
            return value
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        with self._lock:
            if self._data:
                self.stats.invalidations += 1
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def keys(self) -> Tuple[Hashable, ...]:
        """Snapshot of keys, LRU first."""
        with self._lock:
            return tuple(self._data)

    def __repr__(self) -> str:
        return f"LRUCache({len(self)}/{self.capacity}, {self.stats!r})"
