"""Bounded LRU cache with observability counters.

A deliberately small, dependency-free implementation: an
:class:`collections.OrderedDict` under a lock, with hit / miss /
eviction / invalidation / coalesced counters exposed for benchmarks,
the CLI ``--stats`` flag and the engine's
:class:`~repro.obs.metrics.MetricsRegistry`.  Values are stored as-is;
callers that hand out mutable values should copy on the way out (the
engine's result cache does).

Concurrent misses on one key are *single-flighted*: a per-key lock
serialises the computation so one thread computes while the others
wait and then share the stored value (``stats.coalesced`` counts the
duplicate computations avoided).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Dict, Hashable, Iterator, List, Optional, Tuple


class CacheStats:
    """Counters for one cache; cheap enough to read on every request.

    Every increment takes the stats' own lock, so counts stay exact no
    matter which thread (or which caller — the cache itself or the
    engine's serving path) performs them: ``hits + misses`` equals the
    number of counted lookups to the unit, even under the batch
    executor's worker pool.
    """

    __slots__ = ("_lock", "hits", "misses", "evictions", "invalidations", "coalesced")

    def __init__(
        self,
        hits: int = 0,
        misses: int = 0,
        evictions: int = 0,
        invalidations: int = 0,
        coalesced: int = 0,
    ):
        self._lock = threading.Lock()
        self.hits = hits
        self.misses = misses
        self.evictions = evictions
        self.invalidations = invalidations
        #: Duplicate computations avoided by per-key single-flighting:
        #: lookups that missed, waited on another thread's in-flight
        #: computation, and were served its stored result.
        self.coalesced = coalesced

    # -- lock-protected increments -------------------------------------
    def record_hit(self, n: int = 1) -> None:
        with self._lock:
            self.hits += n

    def record_miss(self, n: int = 1) -> None:
        with self._lock:
            self.misses += n

    def record_eviction(self, n: int = 1) -> None:
        with self._lock:
            self.evictions += n

    def record_invalidation(self, n: int = 1) -> None:
        with self._lock:
            self.invalidations += n

    def record_coalesced(self, n: int = 1) -> None:
        with self._lock:
            self.coalesced += n

    # -- derived -------------------------------------------------------
    @property
    def requests(self) -> int:
        with self._lock:
            return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        with self._lock:
            hits, misses = self.hits, self.misses
            evictions, invalidations = self.evictions, self.invalidations
            coalesced = self.coalesced
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "invalidations": invalidations,
            "coalesced": coalesced,
            "hit_rate": round(hits / total, 4) if total else 0.0,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CacheStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, invalidations={self.invalidations}, "
            f"coalesced={self.coalesced})"
        )


_MISSING = object()


class LRUCache:
    """Thread-safe least-recently-used cache of bounded capacity."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        # Per-key single-flight locks with waiter refcounts, so an
        # entry is dropped as soon as its last waiter leaves.
        self._key_locks: Dict[Hashable, List] = {}
        self.stats = CacheStats()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Fetch *key*, promoting it to most-recently-used on a hit."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is not _MISSING:
                self._data.move_to_end(key)
        if value is _MISSING:
            self.stats.record_miss()
            return default
        self.stats.record_hit()
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Non-counting, non-promoting read (single-flight double-check)."""
        with self._lock:
            value = self._data.get(key, _MISSING)
        return default if value is _MISSING else value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh *key*, evicting the LRU entry when full."""
        evicted = 0
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                evicted += 1
        if evicted:
            self.stats.record_eviction(evicted)

    @contextmanager
    def key_lock(self, key: Hashable) -> Iterator[None]:
        """Serialise computations for *key* across threads.

        The serving path brackets its miss-path compute with this so
        concurrent misses on the same key share one computation::

            value = cache.get(key)
            if value is None:
                with cache.key_lock(key):
                    value = cache.peek(key)       # did a peer publish?
                    if value is None:
                        value = compute()
                        cache.put(key, value)
        """
        with self._lock:
            entry = self._key_locks.get(key)
            if entry is None:
                entry = self._key_locks[key] = [threading.Lock(), 0]
            entry[1] += 1
        entry[0].acquire()
        try:
            yield
        finally:
            entry[0].release()
            with self._lock:
                entry[1] -= 1
                if entry[1] == 0:
                    self._key_locks.pop(key, None)

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """``get`` with single-flighted fallback computation.

        Concurrent misses on the same key serialise on a per-key lock:
        exactly one thread runs *compute* (outside the cache-wide lock,
        so unrelated keys are unaffected) and the rest are served the
        stored value, counted in ``stats.coalesced``.  If the compute
        raises, nothing is stored and the next waiter retries.
        """
        value = self.get(key, _MISSING)
        if value is not _MISSING:
            return value
        with self.key_lock(key):
            value = self.peek(key, _MISSING)
            if value is not _MISSING:
                self.stats.record_coalesced()
                return value
            value = compute()
            self.put(key, value)
        return value

    def clear(self) -> None:
        with self._lock:
            had_data = bool(self._data)
            self._data.clear()
        if had_data:
            self.stats.record_invalidation()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def keys(self) -> Tuple[Hashable, ...]:
        """Snapshot of keys, LRU first."""
        with self._lock:
            return tuple(self._data)

    def __repr__(self) -> str:
        return f"LRUCache({len(self)}/{self.capacity}, {self.stats!r})"
