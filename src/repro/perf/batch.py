"""Concurrent batch search over a shared engine.

Slides 129-133 (shared and parallel query execution): a server that
receives many keyword queries at once should (a) compute each distinct
query only once and (b) overlap independent queries.  The executor does
both: it coalesces duplicate ``(query, method, k)`` requests before
dispatch, pre-warms the engine substrates the batch will need (so the
pool never races the lazy first build), then fans the distinct requests
out over a :class:`concurrent.futures.ThreadPoolExecutor`.  Workers
share the engine's substrate and result caches, which are lock-guarded.

Failures are isolated per query: one poisoned query yields an error
:class:`BatchOutcome` while its neighbours complete normally.  Transient
errors (substrate build races, injected faults) are retried with capped
exponential backoff, and repeated substrate-build failures trip the
engine's :class:`~repro.resilience.circuit.CircuitBreaker` so the rest
of the batch fails fast instead of hammering a broken build.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.results import ResultSet, SearchResult
from repro.obs.metrics import MetricsRegistry
from repro.resilience.circuit import CircuitBreaker
from repro.resilience.degradation import KNOWN_METHODS
from repro.resilience.errors import (
    CircuitOpenError,
    QueryParseError,
    ReproError,
    SubstrateBuildError,
    classify_error,
)
from repro.resilience.retry import DEFAULT_RETRY, RetryPolicy

#: Search methods that run over the tuple-level data graph.
_GRAPH_METHODS = {"banks", "banks2", "steiner", "distinct_root", "ease"}


@dataclass(frozen=True)
class BatchQuery:
    """One request in a batch."""

    text: str
    k: int = 10
    method: str = "schema"


QueryLike = Union[str, Tuple, BatchQuery]


def as_batch_query(
    query: QueryLike, k: int = 10, method: str = "schema"
) -> BatchQuery:
    """Coerce a str / (text, method[, k]) tuple / BatchQuery to BatchQuery.

    Malformed requests are rejected here, at submission time, with a
    structured :class:`QueryParseError` — before any pool worker runs —
    so a bad request can never cost a thread or poison the batch.
    """
    if isinstance(query, BatchQuery):
        return _validated(query)
    if isinstance(query, str):
        return _validated(BatchQuery(query, k=k, method=method))
    try:
        text = query[0]
        q_method = query[1] if len(query) > 1 else method
        q_k = query[2] if len(query) > 2 else k
    except (TypeError, IndexError, KeyError) as exc:
        raise QueryParseError(
            f"cannot interpret {query!r} as a batch query", cause=exc
        ) from exc
    try:
        q_k = int(q_k)
    except (TypeError, ValueError) as exc:
        raise QueryParseError(f"k must be an integer, got {q_k!r}") from exc
    return _validated(BatchQuery(str(text), k=q_k, method=str(q_method)))


def _validated(query: BatchQuery) -> BatchQuery:
    if not isinstance(query.k, int) or isinstance(query.k, bool) or query.k < 1:
        raise QueryParseError(f"k must be a positive integer, got {query.k!r}")
    if query.method not in KNOWN_METHODS:
        raise QueryParseError(
            f"unknown method {query.method!r} "
            f"(choices: {', '.join(KNOWN_METHODS)})"
        )
    return query


@dataclass
class BatchOutcome:
    """Per-query verdict from a batch run.

    ``status`` is ``"ok"``, ``"degraded"`` (budget exhausted / ladder
    descent — ``results`` holds the best partial answer) or ``"error"``
    (``results`` is empty and ``error`` holds the structured exception).
    """

    query: BatchQuery
    status: str
    results: ResultSet
    error: Optional[ReproError] = None
    attempts: int = 1
    duration_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status != "error"

    def __repr__(self) -> str:
        tail = f", error={type(self.error).__name__}" if self.error else ""
        return (
            f"BatchOutcome({self.query.text!r}, {self.status}, "
            f"{len(self.results)} results, attempts={self.attempts}{tail})"
        )


class BatchSearchExecutor:
    """Runs independent queries concurrently against one engine.

    Each query is executed inside a fault-isolation boundary: errors are
    captured as :class:`BatchOutcome` objects, transient errors retried
    per *retry* (capped exponential backoff, no jitter — deterministic),
    and substrate-build failures counted against *breaker* (defaults to
    the engine's own persistent ``circuit_breaker``).
    """

    def __init__(
        self,
        engine,
        max_workers: int = 8,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        sleep: Callable[[float], None] = time.sleep,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.engine = engine
        self.max_workers = max_workers
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.breaker = (
            breaker
            if breaker is not None
            else getattr(engine, "circuit_breaker", None)
        )
        self._sleep = sleep
        #: Batch outcomes also land in the engine's metrics registry
        #: (``batch.*`` counters, ``batch.query_ms`` histogram) unless a
        #: different registry is passed in.
        self.metrics = (
            metrics if metrics is not None else getattr(engine, "metrics", None)
        )
        # Counter updates take this lock: executors may be shared across
        # request threads, and read-modify-write on plain ints is not
        # atomic — served/computed/failed tallies must stay exact.
        self._stats_lock = threading.Lock()
        self.queries_served = 0
        self.queries_computed = 0
        self.queries_failed = 0
        self.queries_degraded = 0
        self.retries = 0

    # ------------------------------------------------------------------
    def warm(self, queries: Sequence[BatchQuery]) -> None:
        """Build the shared substrates this batch needs, single-threaded.

        ``cached_property`` builds are idempotent but expensive; doing
        them once up front keeps pool workers from stacking up behind
        the first build.  A build failure here is swallowed: each query
        retries the build itself inside its own isolation boundary, so
        one broken substrate degrades the affected queries instead of
        killing the whole batch.
        """
        if self.breaker is not None and self.breaker.state != "closed":
            return  # open circuit: don't re-attempt the broken build here
        engine = self.engine
        methods = {q.method for q in queries}
        try:
            engine.index  # inverted index: every method needs it
            if "schema" in methods:
                engine.schema_graph
            if methods & _GRAPH_METHODS:
                engine.data_graph
            if "distinct_root" in methods:
                engine.distance_index
        except Exception:
            pass  # surfaced per-query by _execute_one

    # ------------------------------------------------------------------
    def run_outcomes(
        self,
        queries: Sequence[QueryLike],
        k: int = 10,
        method: str = "schema",
        timeout_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
        fallback: bool = False,
    ) -> List[BatchOutcome]:
        """Execute *queries*, returning a :class:`BatchOutcome` each.

        Outcomes come back in request order.  Duplicate requests are
        computed once; each duplicate receives its own result-set clone
        so callers cannot alias each other.  Submission-time validation
        errors (bad ``k``, unknown method) raise immediately — nothing
        has been dispatched yet.
        """
        batch = [as_batch_query(q, k=k, method=method) for q in queries]
        if not batch:
            return []

        distinct: Dict[BatchQuery, int] = {}
        for query in batch:
            distinct.setdefault(query, len(distinct))
        order = sorted(distinct, key=distinct.__getitem__)
        with self._stats_lock:
            self.queries_served += len(batch)
            self.queries_computed += len(order)
        metrics = self.metrics
        if metrics is not None:
            metrics.inc("batch.queries_served", len(batch))
            metrics.inc("batch.queries_computed", len(order))
            metrics.inc("batch.duplicates_coalesced", len(batch) - len(order))

        self.warm(order)

        def one(query: BatchQuery) -> BatchOutcome:
            return self._execute_one(
                query,
                timeout_ms=timeout_ms,
                max_expansions=max_expansions,
                fallback=fallback,
            )

        if self.max_workers == 1 or len(order) == 1:
            computed = [one(q) for q in order]
        else:
            workers = min(self.max_workers, len(order))
            computed = [None] * len(order)  # type: ignore[list-item]
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(one, q): i for i, q in enumerate(order)
                }
                pending = set(futures)
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        # _execute_one never raises; .result() only
                        # re-raises catastrophic (e.g. interpreter
                        # shutdown) conditions.
                        computed[futures[future]] = future.result()

        by_query = dict(zip(order, computed))
        failed = degraded = retries = 0
        for outcome in computed:
            if outcome.status == "error":
                failed += 1
            elif outcome.status == "degraded":
                degraded += 1
            retries += max(0, outcome.attempts - 1)
            if metrics is not None:
                metrics.inc(f"batch.outcome.{outcome.status}")
                metrics.observe("batch.query_ms", outcome.duration_ms)
        with self._stats_lock:
            self.queries_failed += failed
            self.queries_degraded += degraded
            self.retries += retries
        if metrics is not None and retries:
            metrics.inc("batch.retries", retries)

        out: List[BatchOutcome] = []
        for query in batch:
            outcome = by_query[query]
            out.append(
                BatchOutcome(
                    query=query,
                    status=outcome.status,
                    results=outcome.results.clone(),
                    error=outcome.error,
                    attempts=outcome.attempts,
                    duration_ms=outcome.duration_ms,
                )
            )
        return out

    def run(
        self,
        queries: Sequence[QueryLike],
        k: int = 10,
        method: str = "schema",
        timeout_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
        fallback: bool = False,
        raise_on_error: bool = False,
    ) -> List[ResultSet]:
        """Execute *queries*, returning result lists in request order.

        Duplicate requests are computed once and fanned back out; the
        outcome is identical to calling ``engine.search`` sequentially
        for each query.  By default a failing query yields an *empty*
        :class:`ResultSet` with its ``error`` attribute set while every
        other query completes; ``raise_on_error=True`` restores the old
        fail-the-batch behavior by re-raising the first error in
        request order.
        """
        outcomes = self.run_outcomes(
            queries,
            k=k,
            method=method,
            timeout_ms=timeout_ms,
            max_expansions=max_expansions,
            fallback=fallback,
        )
        if raise_on_error:
            for outcome in outcomes:
                if outcome.error is not None:
                    raise outcome.error
        return [outcome.results for outcome in outcomes]

    # ------------------------------------------------------------------
    def _execute_one(
        self,
        query: BatchQuery,
        timeout_ms: Optional[float],
        max_expansions: Optional[int],
        fallback: bool,
    ) -> BatchOutcome:
        """Fault-isolation boundary around one query.

        Never raises: every exception is classified into the
        :class:`ReproError` taxonomy and returned as an error outcome.
        Transient errors retry with backoff; substrate-build failures
        feed the circuit breaker, and an open breaker fails fast.
        """
        start = time.perf_counter()
        breaker = self.breaker
        if breaker is not None and not breaker.allow():
            err = CircuitOpenError(
                "circuit open after repeated substrate failures; failing fast"
            )
            return BatchOutcome(
                query=query,
                status="error",
                results=ResultSet(method=query.method, error=err),
                error=err,
                attempts=0,
                duration_ms=(time.perf_counter() - start) * 1000.0,
            )
        attempt = 1
        while True:
            try:
                results = self.engine.search(
                    query.text,
                    k=query.k,
                    method=query.method,
                    timeout_ms=timeout_ms,
                    max_expansions=max_expansions,
                    fallback=fallback,
                )
            except Exception as exc:  # noqa: BLE001 — isolation boundary
                err = classify_error(exc)
                if breaker is not None and isinstance(err, SubstrateBuildError):
                    breaker.record_failure()
                retryable = (
                    err.transient
                    and attempt < self.retry.max_attempts
                    and (breaker is None or breaker.allow())
                )
                if retryable:
                    self._sleep(self.retry.delay(attempt))
                    attempt += 1
                    continue
                return BatchOutcome(
                    query=query,
                    status="error",
                    results=ResultSet(method=query.method, error=err),
                    error=err,
                    attempts=attempt,
                    duration_ms=(time.perf_counter() - start) * 1000.0,
                )
            if breaker is not None:
                breaker.record_success()
            if not isinstance(results, ResultSet):
                results = ResultSet(results, method=query.method)
            return BatchOutcome(
                query=query,
                status=results.status,
                results=results,
                attempts=attempt,
                duration_ms=(time.perf_counter() - start) * 1000.0,
            )

    def stats(self) -> Dict[str, int]:
        with self._stats_lock:
            return {
                "queries_served": self.queries_served,
                "queries_computed": self.queries_computed,
                "queries_failed": self.queries_failed,
                "queries_degraded": self.queries_degraded,
                "retries": self.retries,
                "max_workers": self.max_workers,
            }

    def __repr__(self) -> str:
        return (
            f"BatchSearchExecutor(workers={self.max_workers}, "
            f"served={self.queries_served}, computed={self.queries_computed}, "
            f"failed={self.queries_failed})"
        )
