"""Concurrent batch search over a shared engine.

Slides 129-133 (shared and parallel query execution): a server that
receives many keyword queries at once should (a) compute each distinct
query only once and (b) overlap independent queries.  The executor does
both: it coalesces duplicate ``(query, method, k)`` requests before
dispatch, pre-warms the engine substrates the batch will need (so the
pool never races the lazy first build), then fans the distinct requests
out over a :class:`concurrent.futures.ThreadPoolExecutor`.  Workers
share the engine's substrate and result caches, which are lock-guarded.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro.core.results import SearchResult

#: Search methods that run over the tuple-level data graph.
_GRAPH_METHODS = {"banks", "banks2", "steiner", "distinct_root", "ease"}


@dataclass(frozen=True)
class BatchQuery:
    """One request in a batch."""

    text: str
    k: int = 10
    method: str = "schema"


QueryLike = Union[str, Tuple, BatchQuery]


def as_batch_query(
    query: QueryLike, k: int = 10, method: str = "schema"
) -> BatchQuery:
    """Coerce a str / (text, method[, k]) tuple / BatchQuery to BatchQuery."""
    if isinstance(query, BatchQuery):
        return query
    if isinstance(query, str):
        return BatchQuery(query, k=k, method=method)
    text = query[0]
    q_method = query[1] if len(query) > 1 else method
    q_k = query[2] if len(query) > 2 else k
    return BatchQuery(str(text), k=int(q_k), method=str(q_method))


class BatchSearchExecutor:
    """Runs independent queries concurrently against one engine."""

    def __init__(self, engine, max_workers: int = 8):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.engine = engine
        self.max_workers = max_workers
        self.queries_served = 0
        self.queries_computed = 0

    # ------------------------------------------------------------------
    def warm(self, queries: Sequence[BatchQuery]) -> None:
        """Build the shared substrates this batch needs, single-threaded.

        ``cached_property`` builds are idempotent but expensive; doing
        them once up front keeps pool workers from stacking up behind
        the first build.
        """
        engine = self.engine
        engine.index  # inverted index: every method needs it
        methods = {q.method for q in queries}
        if "schema" in methods:
            engine.schema_graph
        if methods & _GRAPH_METHODS:
            engine.data_graph
        if "distinct_root" in methods:
            engine.distance_index

    # ------------------------------------------------------------------
    def run(
        self,
        queries: Sequence[QueryLike],
        k: int = 10,
        method: str = "schema",
    ) -> List[List[SearchResult]]:
        """Execute *queries*, returning result lists in request order.

        Duplicate requests are computed once and fanned back out; the
        outcome is identical to calling ``engine.search`` sequentially
        for each query.
        """
        batch = [as_batch_query(q, k=k, method=method) for q in queries]
        if not batch:
            return []
        self.queries_served += len(batch)

        distinct: Dict[BatchQuery, int] = {}
        for query in batch:
            distinct.setdefault(query, len(distinct))
        order = sorted(distinct, key=distinct.__getitem__)
        self.queries_computed += len(order)

        self.warm(order)

        def one(query: BatchQuery) -> List[SearchResult]:
            return self.engine.search(query.text, k=query.k, method=query.method)

        if self.max_workers == 1 or len(order) == 1:
            computed = [one(q) for q in order]
        else:
            workers = min(self.max_workers, len(order))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                computed = list(pool.map(one, order))

        by_query = dict(zip(order, computed))
        # Distinct copies per request so callers can't alias each other.
        return [list(by_query[q]) for q in batch]

    def stats(self) -> Dict[str, int]:
        return {
            "queries_served": self.queries_served,
            "queries_computed": self.queries_computed,
            "max_workers": self.max_workers,
        }

    def __repr__(self) -> str:
        return (
            f"BatchSearchExecutor(workers={self.max_workers}, "
            f"served={self.queries_served}, computed={self.queries_computed})"
        )
