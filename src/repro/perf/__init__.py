"""Hot-path query serving layer.

The tutorial's scaling section (slides 120-130) argues that a keyword
search system serving real traffic must (a) materialise the statistics
its scorers consult, (b) share work across queries, and (c) overlap
independent queries.  This package supplies the engine-side pieces:

- :class:`~repro.perf.lru.LRUCache` — bounded, thread-safe result cache
  with hit/miss/eviction counters.
- :class:`~repro.perf.substrates.SubstrateCache` — memoised query
  substrates (tuple sets, candidate networks, keyword groups, form
  pipeline) with mutation-counter invalidation.
- :class:`~repro.perf.batch.BatchSearchExecutor` — concurrent batch
  search over a thread pool with duplicate-query coalescing.
"""

from repro.perf.batch import BatchQuery, BatchSearchExecutor
from repro.perf.lru import CacheStats, LRUCache
from repro.perf.substrates import SubstrateCache

__all__ = [
    "BatchQuery",
    "BatchSearchExecutor",
    "CacheStats",
    "LRUCache",
    "SubstrateCache",
]
