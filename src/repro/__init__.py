"""repro — keyword-based search and exploration on databases.

A library reproduction of the ICDE 2011 tutorial by Chen, Wang & Liu:
relational and XML keyword search with the full surrounding ecosystem
(candidate networks, Steiner-tree search, ?LCA semantics, query
cleaning, type-ahead, query forms, faceted exploration, result
analysis, INEX metrics and the axiomatic evaluation framework).

Quickstart::

    from repro import KeywordSearchEngine
    from repro.datasets.bibliographic import generate_bibliographic_db

    engine = KeywordSearchEngine(generate_bibliographic_db())
    for result in engine.search("john database", k=5):
        print(result.score, result.describe())
"""

from repro.core.engine import KeywordSearchEngine
from repro.core.xml_engine import XmlSearchEngine
from repro.core.query import Query
from repro.core.results import SearchResult, XmlResult
from repro.relational.database import Database, TupleId
from repro.relational.schema import Column, ForeignKey, Schema, TableSchema

__version__ = "1.0.0"

__all__ = [
    "KeywordSearchEngine",
    "XmlSearchEngine",
    "Query",
    "SearchResult",
    "XmlResult",
    "Database",
    "TupleId",
    "Column",
    "ForeignKey",
    "Schema",
    "TableSchema",
    "__version__",
]
