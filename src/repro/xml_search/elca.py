"""ELCA computation (Guo et al., SIGMOD 03; Xu & Papakonstantinou, EDBT 08).

A node u is an *Exclusive* LCA if, for every query keyword, u's subtree
contains a witness occurrence that is **not** inside any descendant of u
that itself contains all keywords.  Because "contains all keywords" is
upward-monotone inside a subtree, the maximal contains-all strict
descendants of u are exactly its contains-all children — so the
verification reduces to per-child exclusion (which is what the XRank
stack maintains implicitly).

Two implementations with one contract:

* ``elca_bruteforce`` — full tree traversal with per-node keyword
  counts, O(N·k): the DIL-style baseline for E6;
* ``elca_candidates_verify`` — the Index-Stack strategy of slide 140:
  ``ELCA ⊆ ∪_{v∈S1} SLCA({v}, S2..Sk)``, verify each candidate with
  range counts over the Dewey lists, O(k·d·|S1|·log|Smax|).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.index.text import tokenize
from repro.resilience.budget import QueryBudget
from repro.resilience.errors import BudgetExceededError
from repro.xml_search.slca import _anchor_candidate, _dedup_keep_deepest
from repro.xmltree.node import Dewey, XmlNode


def _subtree_range(deweys: List[Dewey], node: Dewey) -> Tuple[int, int]:
    """Index range [lo, hi) of matches inside the subtree of *node*."""
    lo = bisect_left(deweys, node)
    hi = lo
    while hi < len(deweys) and deweys[hi][: len(node)] == node:
        hi += 1
    return lo, hi


def _subtree_count(deweys: List[Dewey], node: Dewey) -> int:
    lo = bisect_left(deweys, node)
    # Upper bound via the next sibling prefix: node + (last+1).
    upper = node[:-1] + (node[-1] + 1,)
    hi = bisect_left(deweys, upper)
    # All entries in [lo, hi) start with a prefix >= node and < sibling,
    # which for Dewey labels means they are in node's subtree (or node).
    return hi - lo


def _contains_all(lists: Sequence[List[Dewey]], node: Dewey) -> bool:
    return all(_subtree_count(lst, node) > 0 for lst in lists)


def elca_bruteforce(root: XmlNode, keywords: Sequence[str]) -> List[Dewey]:
    """Traverse the tree, counting keyword witnesses with child exclusion."""
    keywords = [k.lower() for k in keywords]
    k = len(keywords)

    results: List[Dewey] = []

    def visit(node: XmlNode) -> List[int]:
        """Return subtree keyword counts; record ELCAs on the way up."""
        own = [0] * k
        node_tokens: Set[str] = set()
        if node.value:
            node_tokens.update(tokenize(node.value))
        node_tokens.update(tokenize(node.tag))
        for i, keyword in enumerate(keywords):
            if keyword in node_tokens:
                own[i] += 1
        child_counts = [visit(child) for child in node.children]
        total = list(own)
        for counts in child_counts:
            for i in range(k):
                total[i] += counts[i]
        if all(c > 0 for c in total):
            # Exclude witnesses inside contains-all children.
            exclusive = list(own)
            for counts in child_counts:
                if not all(c > 0 for c in counts):
                    for i in range(k):
                        exclusive[i] += counts[i]
            if all(c > 0 for c in exclusive):
                results.append(node.dewey)
        return total

    visit(root)
    return sorted(results)


def elca_candidates_verify(
    lists: Sequence[List[Dewey]],
    budget: Optional[QueryBudget] = None,
    span=None,
) -> List[Dewey]:
    """Candidate generation + range-count verification (slide 140).

    Candidates come from anchoring each element of the smallest list
    against the others (exactly the ELCA_candidates superset of Xu &
    Papakonstantinou).  A candidate u is verified by checking that for
    every keyword some witness under u survives after subtracting the
    matches claimed by u's contains-all children.  An exhausted *budget*
    truncates either phase and returns the ELCAs verified so far.

    *span* (a tracing span, see :mod:`repro.obs.trace`) receives the
    ``candidates`` / ``candidates_verified`` work counters; the
    computation itself is untouched.
    """
    lists = [lst for lst in lists]
    if not lists or any(not lst for lst in lists):
        return []
    smallest_idx = min(range(len(lists)), key=lambda i: len(lists[i]))
    anchors = lists[smallest_idx]
    others = [lst for i, lst in enumerate(lists) if i != smallest_idx]

    candidates: Set[Dewey] = set()
    results: List[Dewey] = []
    verified = 0
    try:
        for anchor in anchors:
            if budget is not None:
                budget.tick_candidates()
            cand = _anchor_candidate(anchor, others)
            if cand is not None:
                candidates.add(cand)
                # Every ancestor of an SLCA-style candidate can be an ELCA
                # too; but only ancestors that are LCAs of some combination.
                # The candidate superset of the EDBT'08 paper includes, for
                # each anchor, the LCAs it forms with *prefixes*; we take the
                # ancestors of cand that still contain all keywords.
                node = cand[:-1]
                while len(node) >= 1:
                    if _contains_all(lists, node):
                        candidates.add(node)
                    node = node[:-1]

        for cand in sorted(candidates):
            if budget is not None:
                budget.tick_candidates()
            verified += 1
            if _verify_elca(lists, cand):
                results.append(cand)
    except BudgetExceededError:
        pass
    if span is not None:
        span.add("candidates", len(candidates))
        span.add("candidates_verified", verified)
    return results


def _verify_elca(lists: Sequence[List[Dewey]], node: Dewey) -> bool:
    if not _contains_all(lists, node):
        return False
    # Find the children of `node` that could be contains-all: only
    # children holding at least one match of the smallest list under node.
    smallest = min(lists, key=len)
    lo, hi = _subtree_range(smallest, node)
    child_prefixes: Set[Dewey] = set()
    for dewey in smallest[lo:hi]:
        if len(dewey) > len(node):
            child_prefixes.add(dewey[: len(node) + 1])
    blocking = [c for c in child_prefixes if _contains_all(lists, c)]
    for lst in lists:
        total = _subtree_count(lst, node)
        claimed = sum(_subtree_count(lst, child) for child in blocking)
        if total - claimed <= 0:
            return False
    return True
