"""XML keyword search (tutorial slides 32-43, 136-141, 161-162).

Implements the ?LCA result-definition family and the structure-inference
techniques the tutorial surveys for XML:

* SLCA — scan-eager, indexed-lookup-eager, multiway (skip-based),
* ELCA — brute force (DIL-style) and candidate+verify (Index-Stack style),
* XRank-style decay scoring,
* XSeek return-node inference,
* XReal search-for-node inference,
* NTC total-correlation structure scoring,
* describable result clustering by keyword roles.
"""

from repro.xml_search.slca import (
    contains_all,
    lca_candidates,
    slca_scan_eager,
    slca_indexed_lookup_eager,
    slca_multiway,
    slca_bruteforce,
)
from repro.xml_search.elca import elca_bruteforce, elca_candidates_verify
from repro.xml_search.xrank import xrank_scores, rank_results
from repro.xml_search.xseek import XSeek, NodeCategory
from repro.xml_search.xreal import XReal
from repro.xml_search.ntc import entropy, total_correlation, normalized_total_correlation
from repro.xml_search.describable import describable_clusters, RoleSignature
from repro.xml_search.probabilistic import ProbabilisticQueryBuilder, PathQuery
from repro.xml_search.interconnection import interconnected, interconnected_answers
from repro.xml_search.probabilistic_xml import ProbabilisticXml
from repro.xml_search.xbridge_sketch import PathSketch

__all__ = [
    "contains_all",
    "lca_candidates",
    "slca_scan_eager",
    "slca_indexed_lookup_eager",
    "slca_multiway",
    "slca_bruteforce",
    "elca_bruteforce",
    "elca_candidates_verify",
    "xrank_scores",
    "rank_results",
    "XSeek",
    "NodeCategory",
    "XReal",
    "entropy",
    "total_correlation",
    "normalized_total_correlation",
    "describable_clusters",
    "RoleSignature",
    "ProbabilisticQueryBuilder",
    "PathQuery",
    "interconnected",
    "interconnected_answers",
    "ProbabilisticXml",
    "PathSketch",
]
