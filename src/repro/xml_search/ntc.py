"""NTC: normalized total correlation structure scoring.

Termehchy & Winslett (CIKM 09; slides 41-43): rank candidate structures
(join templates) by how statistically cohesive their participating node
types are, measured by *total correlation* over the joint distribution
of entity co-occurrences:

    I(P1..Pn)  = sum_i H(Pi) - H(P1, ..., Pn)
    I*(P1..Pn) = f(n) * I(P) / H(P1, ..., Pn),   f(n) = n^2 / (n-1)^2

Slide 42 works the author-paper example to H(A)=2.25, H(P)=1.92,
H(A,P)=2.58, I=1.59; slide 43 the editor-paper example to I=1.0 — both
are unit-tested verbatim.

The joint distribution comes from co-occurrence rows: each row is one
observed combination (e.g. one (author, paper) link), all rows equally
likely.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Sequence, Tuple


def entropy(values: Sequence[object]) -> float:
    """Shannon entropy (bits) of the empirical distribution of *values*."""
    n = len(values)
    if n == 0:
        return 0.0
    counts = Counter(values)
    return -sum(
        (c / n) * math.log2(c / n) for c in counts.values()
    )


def joint_entropy(rows: Sequence[Tuple[object, ...]]) -> float:
    """Entropy of the joint distribution given by equally likely rows."""
    return entropy(list(rows))


def total_correlation(rows: Sequence[Tuple[object, ...]]) -> float:
    """I(P) = sum_i H(P_i) - H(P_1, ..., P_n) over the row sample."""
    if not rows:
        return 0.0
    arity = len(rows[0])
    if any(len(r) != arity for r in rows):
        raise ValueError("all rows must have the same arity")
    marginal = sum(entropy([r[i] for r in rows]) for i in range(arity))
    return marginal - joint_entropy(rows)


def normalized_total_correlation(rows: Sequence[Tuple[object, ...]]) -> float:
    """I*(P) = f(n) * I(P) / H(P), with f(n) = n^2/(n-1)^2 (slide 43)."""
    if not rows:
        return 0.0
    n = len(rows[0])
    if n < 2:
        return 0.0
    joint = joint_entropy(rows)
    if joint == 0.0:
        return 0.0
    f = (n * n) / ((n - 1) * (n - 1))
    return f * total_correlation(rows) / joint


def rank_structures(
    structures: Dict[str, Sequence[Tuple[object, ...]]]
) -> List[Tuple[str, float]]:
    """Rank named structures by I* descending (query-independent, slide 43)."""
    scored = [
        (name, normalized_total_correlation(rows))
        for name, rows in structures.items()
    ]
    scored.sort(key=lambda item: (-item[1], item[0]))
    return scored
