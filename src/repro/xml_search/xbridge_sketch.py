"""XBridge structure+value sketch (Li et al., EDBT 10; slide 38).

"XBridge builds a structure + value sketch to estimate the most
promising return type": instead of scanning instances per query (as
:class:`repro.xml_search.xreal.XReal` does), an offline sketch stores,
per node type (label path), the count of type instances whose subtree
contains each term.  Online, a type's score for a query is computed
from the sketch in O(|Q|) lookups — the estimate equals XReal's exact
``f_T^k`` because the sketch is lossless at term granularity (a real
deployment would compress the value side; we expose ``top_terms_only``
to emulate a lossy sketch and measure the estimation error).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.index.text import tokenize
from repro.xmltree.node import XmlNode


class PathSketch:
    """Offline per-type term-frequency sketch."""

    def __init__(self, root: XmlNode, top_terms_only: Optional[int] = None):
        self.root = root
        # label path -> (instance count, term -> instances containing it)
        self._instances: Dict[str, int] = {}
        self._terms: Dict[str, Dict[str, int]] = {}
        self._leaf_types: Dict[str, bool] = {}
        by_path: Dict[str, List[XmlNode]] = {}
        for node in root.descendants(include_self=True):
            by_path.setdefault(node.label_path(), []).append(node)
        for path, nodes in by_path.items():
            self._instances[path] = len(nodes)
            self._leaf_types[path] = all(n.is_leaf for n in nodes)
            counts: Counter = Counter()
            for node in nodes:
                tokens = set(tokenize(node.text())) | set(tokenize(node.tag))
                for token in tokens:
                    counts[token] += 1
            if top_terms_only is not None:
                counts = Counter(dict(counts.most_common(top_terms_only)))
            self._terms[path] = dict(counts)

    @property
    def node_types(self) -> List[str]:
        return sorted(self._instances)

    def sketch_size(self) -> int:
        """Total stored (path, term) entries."""
        return sum(len(t) for t in self._terms.values())

    def estimated_frequency(self, path: str, keyword: str) -> int:
        """Sketch estimate of f_T^k (exact when the sketch is lossless)."""
        return self._terms.get(path, {}).get(keyword.lower(), 0)

    def type_score(self, path: str, keywords: Sequence[str]) -> float:
        score = 1.0
        for keyword in keywords:
            freq = self.estimated_frequency(path, keyword)
            if freq == 0:
                return 0.0
            score *= 1.0 + math.log1p(freq)
        return score

    def infer_return_type(
        self,
        keywords: Sequence[str],
        exclude_leaf_types: bool = True,
        k: Optional[int] = None,
    ) -> List[Tuple[str, float]]:
        """Promising return types from the sketch alone."""
        out = []
        for path in self.node_types:
            if exclude_leaf_types and self._leaf_types.get(path, False):
                continue
            score = self.type_score(path, keywords)
            if score > 0:
                out.append((path, score))
        out.sort(key=lambda item: (-item[1], item[0]))
        return out[:k] if k is not None else out
