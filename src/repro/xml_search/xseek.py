"""XSeek: return-node inference (Liu & Chen, SIGMOD 07; slide 51).

XSeek analyses (a) data semantics — which node types are *entities*,
which are *attributes*, which are connection nodes — and (b) the match
pattern of the query keywords — which keywords act as predicates (they
match data values) and which name desired output (they match tag
labels).  The inferred return nodes are:

* explicit: nodes whose tag a query keyword names without constraining
  a value (``Q1 = "John, institution"`` returns institution nodes);
* implicit: when all keywords are predicates, the master entity of the
  match context (``Q2 = "John, Univ of Toronto"`` returns the author).

Entity inference follows the paper's heuristic: a node type is an
entity if nodes of that tag appear as *multiple siblings* under a common
parent tag somewhere in the data (i.e. it is "starred" in the DTD);
attribute types occur at most once per parent and carry a value.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.index.text import tokenize
from repro.xmltree.node import Dewey, XmlNode


class NodeCategory(str, Enum):
    ENTITY = "entity"
    ATTRIBUTE = "attribute"
    CONNECTION = "connection"
    VALUE = "value"


class XSeek:
    """Return-node inference over one XML document."""

    def __init__(self, root: XmlNode):
        self.root = root
        self._categories: Dict[str, NodeCategory] = {}
        self._classify_types()

    # ------------------------------------------------------------------
    # Data semantics
    # ------------------------------------------------------------------
    def _classify_types(self) -> None:
        repeated_tags: Set[str] = set()
        has_value: Dict[str, bool] = {}
        for node in self.root.descendants(include_self=True):
            counts: Dict[str, int] = {}
            for child in node.children:
                counts[child.tag] = counts.get(child.tag, 0) + 1
            for tag, count in counts.items():
                if count > 1:
                    repeated_tags.add(tag)
            has_value.setdefault(node.tag, False)
            if node.value is not None:
                has_value[node.tag] = True
        for tag, valued in has_value.items():
            if tag in repeated_tags:
                self._categories[tag] = NodeCategory.ENTITY
            elif valued:
                self._categories[tag] = NodeCategory.ATTRIBUTE
            else:
                self._categories[tag] = NodeCategory.CONNECTION

    def category(self, tag: str) -> NodeCategory:
        return self._categories.get(tag, NodeCategory.CONNECTION)

    def entities(self) -> List[str]:
        return sorted(
            tag
            for tag, cat in self._categories.items()
            if cat is NodeCategory.ENTITY
        )

    # ------------------------------------------------------------------
    # Keyword-pattern analysis
    # ------------------------------------------------------------------
    def classify_keywords(
        self, keywords: Sequence[str]
    ) -> Tuple[List[str], List[str]]:
        """Split keywords into (label keywords, value predicates).

        A keyword is a label keyword when it names a tag occurring in the
        document; everything else is treated as a value predicate.
        """
        tags = {n.tag.lower() for n in self.root.descendants(include_self=True)}
        labels = []
        predicates = []
        for keyword in keywords:
            if keyword.lower() in tags:
                labels.append(keyword.lower())
            else:
                predicates.append(keyword.lower())
        return labels, predicates

    # ------------------------------------------------------------------
    # Return-node inference
    # ------------------------------------------------------------------
    def return_nodes(
        self, result_root: XmlNode, keywords: Sequence[str]
    ) -> List[XmlNode]:
        """Nodes to present for one search result rooted at *result_root*."""
        labels, predicates = self.classify_keywords(keywords)
        if labels:
            # Explicit return nodes: subtree nodes whose tag was named.
            out = [
                node
                for node in result_root.descendants(include_self=True)
                if node.tag.lower() in labels
            ]
            if out:
                return out
        # Implicit: the nearest entity at or below the result root that
        # contains the predicate matches; fall back to the result root.
        candidates = []
        for node in result_root.descendants(include_self=True):
            if self.category(node.tag) is not NodeCategory.ENTITY:
                continue
            text_tokens = set(tokenize(node.text()))
            if all(p in text_tokens for p in predicates):
                candidates.append(node)
        if candidates:
            # The highest (shallowest) qualifying entity is the master one.
            candidates.sort(key=lambda n: len(n.dewey))
            return [candidates[0]]
        return [result_root]
