"""XRank-style ranking of XML results (Guo et al., SIGMOD 03).

The tutorial (slides 144-145, 158-159) describes the adapted ranking
factors: per-keyword decay with distance from the result root, inverse
element frequency weighting, and proximity.  ``xrank_scores`` combines

    score(u) = sum_k  max over occurrences x of k under u of
               decay^(depth(x) - depth(u)) * log(ief(k))

— occurrences nearer the result root contribute more, rare keywords
contribute more.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.xmltree.index import XmlKeywordIndex
from repro.xmltree.node import Dewey


def xrank_scores(
    index: XmlKeywordIndex,
    results: Sequence[Dewey],
    keywords: Sequence[str],
    decay: float = 0.8,
) -> Dict[Dewey, float]:
    """Score each result root by decayed, ief-weighted keyword proximity."""
    if not 0 < decay <= 1:
        raise ValueError("decay must be in (0, 1]")
    scores: Dict[Dewey, float] = {}
    lists = {k: index.matches(k) for k in keywords}
    for result in results:
        total = 0.0
        for keyword in keywords:
            best = 0.0
            for occurrence in lists[keyword]:
                if occurrence[: len(result)] != result:
                    continue
                distance = len(occurrence) - len(result)
                contribution = decay ** distance
                if contribution > best:
                    best = contribution
            if best > 0:
                total += best * math.log(1.0 + index.inverse_element_frequency(keyword))
        scores[result] = total
    return scores


def rank_results(
    index: XmlKeywordIndex,
    results: Sequence[Dewey],
    keywords: Sequence[str],
    decay: float = 0.8,
) -> List[Tuple[Dewey, float]]:
    """Results sorted by descending score (ties broken by document order)."""
    scores = xrank_scores(index, results, keywords, decay)
    return sorted(scores.items(), key=lambda item: (-item[1], item[0]))
