"""Top-k keyword search over probabilistic XML (Li et al., ICDE 11;
slide 168).

A *p-document* annotates nodes with independent existence probabilities
(a node exists only if its whole ancestor chain exists).  A keyword
result (an SLCA root over the possible structure) is returned with the
probability that, in a random world, the root exists and its surviving
subtree still contains every keyword.

For independent-node p-documents this probability factorises bottom-up:

    P(subtree of v contains k | v exists)
        = 1 - (1 - self_match) * prod_child (1 - p_child * P_child(k))

and for multiple keywords the exact joint requires tracking keyword
subsets, which we do — each node carries a distribution over the subset
of query keywords its surviving subtree covers (2^|Q| entries, fine for
the 2-4 keyword queries keyword search sees).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.index.text import tokenize
from repro.xmltree.node import Dewey, XmlNode


class ProbabilisticXml:
    """An XmlNode tree + per-node existence probabilities."""

    def __init__(
        self,
        root: XmlNode,
        probabilities: Optional[Dict[Dewey, float]] = None,
        default: float = 1.0,
    ):
        self.root = root
        self._p = dict(probabilities or {})
        self.default = default
        for dewey, p in self._p.items():
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"probability out of range for {dewey}: {p}")

    def probability(self, node: XmlNode) -> float:
        return self._p.get(node.dewey, self.default)

    def existence_probability(self, node: XmlNode) -> float:
        """P(node exists) = product of probabilities up the chain."""
        p = 1.0
        current: Optional[XmlNode] = node
        while current is not None:
            p *= self.probability(current)
            current = current.parent
        return p

    # ------------------------------------------------------------------
    def _coverage_distribution(
        self, node: XmlNode, keywords: Sequence[str]
    ) -> Dict[int, float]:
        """Distribution over covered-keyword bitmasks, conditioned on
        *node* existing."""
        k = len(keywords)
        self_mask = 0
        tokens = set(tokenize(node.value or "")) | set(tokenize(node.tag))
        for i, keyword in enumerate(keywords):
            if keyword in tokens:
                self_mask |= 1 << i
        dist: Dict[int, float] = {self_mask: 1.0}
        for child in node.children:
            p_child = self.probability(child)
            child_dist = self._coverage_distribution(child, keywords)
            merged: Dict[int, float] = {}
            for mask, prob in dist.items():
                # child absent
                merged[mask] = merged.get(mask, 0.0) + prob * (1 - p_child)
                # child present with its own coverage
                for cmask, cprob in child_dist.items():
                    key = mask | cmask
                    merged[key] = merged.get(key, 0.0) + prob * p_child * cprob
            dist = merged
        return dist

    def containment_probability(
        self, node: XmlNode, keywords: Sequence[str]
    ) -> float:
        """P(surviving subtree of node covers all keywords | node exists)."""
        keywords = [k.lower() for k in keywords]
        full = (1 << len(keywords)) - 1
        dist = self._coverage_distribution(node, keywords)
        return dist.get(full, 0.0)

    def result_probability(self, node: XmlNode, keywords: Sequence[str]) -> float:
        """P(node exists and its surviving subtree covers all keywords)."""
        return self.existence_probability(node) * self.containment_probability(
            node, keywords
        )

    # ------------------------------------------------------------------
    def topk(
        self,
        keywords: Sequence[str],
        k: int = 5,
        min_probability: float = 0.0,
        candidates: Optional[Sequence[Dewey]] = None,
    ) -> List[Tuple[XmlNode, float]]:
        """Top-k result roots by probability.

        Candidates default to the SLCAs of the *possible structure*
        (every probabilistic result root is an LCA in some world whose
        deepest representative appears among them or their descendants;
        for library purposes the possible-structure SLCAs are the
        standard candidate set).
        """
        keywords = [kw.lower() for kw in keywords]
        if candidates is None:
            from repro.xml_search.slca import slca_indexed_lookup_eager
            from repro.xmltree.index import XmlKeywordIndex

            index = XmlKeywordIndex(self.root)
            lists = index.match_lists(keywords)
            if any(not lst for lst in lists):
                return []
            candidates = slca_indexed_lookup_eager(lists)
        scored = []
        for dewey in candidates:
            node = self.root.node_at(dewey)
            if node is None:
                continue
            p = self.result_probability(node, keywords)
            if p > min_probability:
                scored.append((node, p))
        scored.sort(key=lambda pair: (-pair[1], pair[0].dewey))
        return scored[:k]
