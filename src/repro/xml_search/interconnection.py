"""Interconnection semantics (XSEarch — Cohen et al., VLDB 03; slide 34).

Two nodes are *interconnected* when the tree path between them contains
no two distinct nodes with the same label (besides the endpoints): a
path through two different ``paper`` elements relates two unrelated
papers, so their descendants should not be combined into one answer.
An answer is a combination of keyword matches that is pairwise
interconnected; its presentation root is the matches' LCA.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.xmltree.node import Dewey, XmlNode, common_prefix


def _path_nodes(root: XmlNode, a: Dewey, b: Dewey) -> List[XmlNode]:
    """Nodes on the tree path a -> lca -> b, inclusive."""
    lca = common_prefix(a, b)
    path: List[XmlNode] = []
    for dewey in (a, b):
        current = list(dewey)
        side: List[XmlNode] = []
        while len(current) >= len(lca):
            node = root.node_at(tuple(current))
            if node is not None:
                side.append(node)
            if len(current) == len(lca):
                break
            current.pop()
        if dewey == a:
            path.extend(side)
        else:
            # avoid duplicating the LCA node
            path.extend(reversed(side[:-1]))
    return path


def interconnected(root: XmlNode, a: Dewey, b: Dewey) -> bool:
    """True iff the a-b path has no two distinct equal-labelled nodes.

    The endpoints themselves are allowed to share a label (two authors
    of one paper are related), interior repetitions are not.
    """
    if a == b:
        return True
    path = _path_nodes(root, a, b)
    labels: Dict[str, int] = {}
    for node in path:
        labels[node.tag] = labels.get(node.tag, 0) + 1
    for tag, count in labels.items():
        if count < 2:
            continue
        holders = [n for n in path if n.tag == tag]
        # Permit a repeated label only when both holders are endpoints.
        endpoint_deweys = {a, b}
        if all(h.dewey in endpoint_deweys for h in holders):
            continue
        return False
    return True


def interconnected_answers(
    root: XmlNode,
    lists: Sequence[List[Dewey]],
    max_combinations: int = 100_000,
) -> List[Tuple[Dewey, Tuple[Dewey, ...]]]:
    """All pairwise-interconnected match combinations.

    Returns (answer root = LCA, matches) in document order of the root.
    """
    if not lists or any(not lst for lst in lists):
        return []
    total = 1
    for lst in lists:
        total *= len(lst)
    if total > max_combinations:
        raise ValueError(f"combination space too large ({total})")
    out: List[Tuple[Dewey, Tuple[Dewey, ...]]] = []
    seen: Set[Tuple[Dewey, ...]] = set()
    for combo in product(*lists):
        key = tuple(sorted(set(combo)))
        if key in seen:
            continue
        seen.add(key)
        ok = True
        for i in range(len(combo)):
            for j in range(i + 1, len(combo)):
                if not interconnected(root, combo[i], combo[j]):
                    ok = False
                    break
            if not ok:
                break
        if ok:
            lca = combo[0]
            for dewey in combo[1:]:
                lca = common_prefix(lca, dewey)
            out.append((lca, tuple(combo)))
    out.sort()
    return out
