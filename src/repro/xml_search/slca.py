"""SLCA computation (Xu & Papakonstantinou, SIGMOD 05; Sun et al., WWW 07).

The Smallest LCAs of keyword match lists S1..Sk are the LCA nodes that
have no descendant which is itself an LCA of matches — "min redundancy"
(slide 33).  Three algorithms with one contract:

* ``slca_bruteforce``     — all-combination LCAs then prune (exponential;
                            test oracle only),
* ``slca_scan_eager``     — pointer scan through every list,
                            O(k·d·|Smax|),
* ``slca_indexed_lookup_eager`` — binary-search lookups anchored on the
                            smallest list, O(k·d·|Smin|·log|Smax|),
* ``slca_multiway``       — anchor-skipping variant of ILE that jumps
                            over matches already covered by the last
                            candidate (Multiway-SLCA's skip_after idea).

All take Dewey lists (sorted, as produced by
:class:`repro.xmltree.index.XmlKeywordIndex`) and return SLCA Dewey
labels in document order.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from itertools import product
from typing import Dict, List, Optional, Sequence

from repro.resilience.budget import QueryBudget
from repro.resilience.errors import BudgetExceededError
from repro.xmltree.index import XmlKeywordIndex
from repro.xmltree.node import Dewey, common_prefix, is_ancestor, lca_dewey


def _dedup_keep_deepest(candidates: List[Dewey]) -> List[Dewey]:
    """Drop candidates that are proper ancestors of other candidates."""
    unique = sorted(set(candidates))
    out: List[Dewey] = []
    # Sorted in document order: an ancestor immediately precedes its
    # descendants, so a single forward pass with a pending slot suffices.
    pending: Optional[Dewey] = None
    for cand in unique:
        if pending is not None:
            if is_ancestor(pending, cand):
                pending = cand
            else:
                out.append(pending)
                pending = cand
        else:
            pending = cand
    if pending is not None:
        out.append(pending)
    return out


def contains_all(lists: Sequence[List[Dewey]], node: Dewey) -> bool:
    """True iff the subtree rooted at *node* has a match from every list."""
    for deweys in lists:
        pos = bisect_left(deweys, node)
        if pos < len(deweys) and node == deweys[pos][: len(node)]:
            continue
        return False
    return True


def subtree_matches(deweys: List[Dewey], node: Dewey) -> List[Dewey]:
    """Matches of one list inside the subtree of *node*."""
    lo = bisect_left(deweys, node)
    hi = bisect_right(deweys, node + (float("inf"),))  # type: ignore[operator]
    return [d for d in deweys[lo:hi] if d[: len(node)] == node]


def lca_candidates(lists: Sequence[List[Dewey]]) -> List[Dewey]:
    """All-combination LCAs (the raw ?LCA space of slide 32).

    Exponential in the number of keywords — intended as a correctness
    oracle on small inputs.
    """
    if not lists or any(not lst for lst in lists):
        return []
    out = {lca_dewey(combo) for combo in product(*lists)}
    return sorted(out)


def slca_bruteforce(lists: Sequence[List[Dewey]]) -> List[Dewey]:
    """Test oracle: enumerate all LCAs, keep the minimal (deepest) ones."""
    return _dedup_keep_deepest(lca_candidates(list(lists)))


def _anchor_candidate(
    anchor: Dewey, other_lists: Sequence[List[Dewey]]
) -> Optional[Dewey]:
    """LCA of *anchor* with its closest match in every other list."""
    acc = anchor
    for deweys in other_lists:
        if not deweys:
            return None
        closest = XmlKeywordIndex.closest_match(deweys, anchor)
        if closest is None:
            return None
        acc = common_prefix(acc, closest)
    return acc


def slca_indexed_lookup_eager(
    lists: Sequence[List[Dewey]],
    budget: Optional[QueryBudget] = None,
    span=None,
) -> List[Dewey]:
    """XKSearch ILE: anchor on the smallest list, binary-search the rest.

    An exhausted *budget* stops the anchor scan early; the SLCAs of the
    anchors processed so far are returned (a sound partial answer).

    *span* (a tracing span, see :mod:`repro.obs.trace`) receives the
    ``anchors_scanned`` / ``candidates`` work counters; the computation
    itself is untouched.
    """
    lists = [lst for lst in lists]
    if not lists or any(not lst for lst in lists):
        return []
    smallest_idx = min(range(len(lists)), key=lambda i: len(lists[i]))
    anchors = lists[smallest_idx]
    others = [lst for i, lst in enumerate(lists) if i != smallest_idx]
    candidates: List[Dewey] = []
    scanned = 0
    try:
        for anchor in anchors:
            if budget is not None:
                budget.tick_candidates()
            scanned += 1
            cand = _anchor_candidate(anchor, others)
            if cand is not None:
                candidates.append(cand)
    except BudgetExceededError:
        pass
    if span is not None:
        span.add("anchors_scanned", scanned)
        span.add("candidates", len(candidates))
    return _dedup_keep_deepest(candidates)


def slca_scan_eager(
    lists: Sequence[List[Dewey]],
    budget: Optional[QueryBudget] = None,
) -> List[Dewey]:
    """Pointer-scan variant: same anchors, linear pointer advances.

    Equivalent output to ILE; the cost model differs (every list is
    walked fully — O(k·|Smax|) pointer moves), which is what the E5
    benchmark contrasts against the binary-search lookups of ILE.
    """
    lists = [lst for lst in lists]
    if not lists or any(not lst for lst in lists):
        return []
    smallest_idx = min(range(len(lists)), key=lambda i: len(lists[i]))
    anchors = lists[smallest_idx]
    others = [lst for i, lst in enumerate(lists) if i != smallest_idx]
    pointers = [0] * len(others)
    candidates: List[Dewey] = []
    for anchor in anchors:
        if budget is not None:
            try:
                budget.tick_candidates()
            except BudgetExceededError:
                break
        acc = anchor
        for i, deweys in enumerate(others):
            # advance pointer to the first element >= anchor
            p = pointers[i]
            while p < len(deweys) and deweys[p] < anchor:
                p += 1
            pointers[i] = p
            left = deweys[p - 1] if p > 0 else None
            right = deweys[p] if p < len(deweys) else None
            if left is None and right is None:
                return _dedup_keep_deepest(candidates)
            if left is None:
                closest = right
            elif right is None:
                closest = left
            else:
                closest = (
                    left
                    if len(common_prefix(left, anchor))
                    >= len(common_prefix(right, anchor))
                    else right
                )
            acc = common_prefix(acc, closest)  # type: ignore[arg-type]
        candidates.append(acc)
    return _dedup_keep_deepest(candidates)


def slca_multiway(
    lists: Sequence[List[Dewey]],
    budget: Optional[QueryBudget] = None,
    span=None,
) -> List[Dewey]:
    """Basic Multiway-SLCA (Sun et al., WWW 07; slide 139).

    Instead of anchoring on every element of the smallest list, each
    round picks the *maximum* current head across all lists as the
    anchor (no SLCA can involve a skipped smaller node exclusively),
    computes the candidate from closest matches, then ``skip_after``
    advances every cursor past the anchor.  Each round advances at least
    one cursor, so the number of rounds is bounded by the total matches
    but is in practice far smaller than |Smin| when matches cluster.
    """
    lists = [lst for lst in lists]
    if not lists or any(not lst for lst in lists):
        return []
    cursors = [0] * len(lists)
    candidates: List[Dewey] = []
    rounds = 0
    try:
        while all(c < len(lst) for c, lst in zip(cursors, lists)):
            if budget is not None:
                try:
                    budget.tick_candidates()
                except BudgetExceededError:
                    break
            rounds += 1
            anchor = max(lst[c] for c, lst in zip(cursors, lists))
            acc = anchor
            for deweys in lists:
                closest = XmlKeywordIndex.closest_match(deweys, anchor)
                if closest is None:
                    return _dedup_keep_deepest(candidates)
                acc = common_prefix(acc, closest)
            candidates.append(acc)
            for i, deweys in enumerate(lists):
                cursors[i] = bisect_right(deweys, anchor)
        return _dedup_keep_deepest(candidates)
    finally:
        if span is not None:
            span.add("rounds", rounds)
            span.add("candidates", len(candidates))
