"""Describable result clustering (Liu & Chen, TODS 10; slides 161-162).

For an ambiguous query like ``{auction, seller, buyer, Tom}`` the value
keyword "Tom" may match nodes playing different *roles* (seller, buyer,
auctioneer).  Each result's **role signature** maps every query keyword
to the tag (role) of the node it matched; clustering by signature yields
clusters with a describable semantics ("auctions whose seller is Tom").
A second level optionally splits clusters by the matched nodes'
*context* — the tag path from the result root — slide 162's
closed/open-auction refinement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.index.text import tokenize
from repro.xmltree.node import Dewey, XmlNode


@dataclass(frozen=True)
class RoleSignature:
    """keyword -> role tags it matched inside one result."""

    roles: FrozenSet[Tuple[str, FrozenSet[str]]]

    def describe(self) -> str:
        parts = []
        for keyword, tags in sorted(self.roles):
            parts.append(f"{keyword} as {'/'.join(sorted(tags))}")
        return "; ".join(parts)


def _keyword_roles(
    result_root: XmlNode, keyword: str
) -> FrozenSet[str]:
    """Tags of the nodes under *result_root* where *keyword* matches."""
    keyword = keyword.lower()
    tags = set()
    for node in result_root.descendants(include_self=True):
        value_tokens = set(tokenize(node.value or ""))
        if keyword in value_tokens:
            tags.add(node.tag)
        elif keyword in tokenize(node.tag):
            tags.add(node.tag)
    return frozenset(tags)


def role_signature(result_root: XmlNode, keywords: Sequence[str]) -> RoleSignature:
    return RoleSignature(
        frozenset(
            (k.lower(), _keyword_roles(result_root, k)) for k in keywords
        )
    )


def describable_clusters(
    results: Sequence[XmlNode],
    keywords: Sequence[str],
    split_by_context: bool = False,
) -> Dict[str, List[XmlNode]]:
    """Cluster results by role signature (and optionally root context).

    Returns description -> member results; descriptions are the
    human-readable cluster semantics of slide 161 ("tom as seller; ...").
    """
    clusters: Dict[str, List[XmlNode]] = {}
    for result in results:
        signature = role_signature(result, keywords)
        key = signature.describe()
        if split_by_context:
            key = f"{result.label_path()} | {key}"
        clusters.setdefault(key, []).append(result)
    return clusters


def balanced_context_split(
    cluster: Sequence[XmlNode], max_clusters: int
) -> List[List[XmlNode]]:
    """Split one role-cluster into <= max_clusters context groups.

    Groups by result-root label path first (the keyword context), then
    merges smallest groups until the budget holds — the granularity
    control of slide 162, solved greedily instead of by the paper's DP
    (the DP optimises balance; greedy merge preserves the semantics and
    the cluster-count constraint the tests verify).
    """
    if max_clusters < 1:
        raise ValueError("max_clusters must be >= 1")
    groups: Dict[str, List[XmlNode]] = {}
    for node in cluster:
        groups.setdefault(node.label_path(), []).append(node)
    parts = sorted(groups.values(), key=len, reverse=True)
    while len(parts) > max_clusters:
        smallest = parts.pop()
        parts[-1] = parts[-1] + smallest
        parts.sort(key=len, reverse=True)
    return parts
