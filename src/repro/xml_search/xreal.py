"""XReal: inferring the search-for node type (Bao et al., ICDE 09).

Slides 37-38: for query Q, score every node type T (identified by its
label path) by its potential to be what the user searches for:

    score(T) = prod_{k in Q} ( 1 + log(1 + f_T^k) )   if f_T^k > 0 for all k
             = 0                                       otherwise

where ``f_T^k`` is the number of T-typed nodes whose subtree contains
keyword k.  The "ensures T has the potential to match all query
keywords" requirement from the slide is the all-keywords factor; the
log dampens dominance of huge types.  Instance scoring aggregates leaf
scores upward with a depth decay, as slide 38 sketches.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.index.text import tokenize
from repro.xmltree.node import XmlNode


class XReal:
    """Search-for-node-type inference and instance retrieval."""

    def __init__(self, root: XmlNode):
        self.root = root
        # label path -> nodes of that type
        self._by_path: Dict[str, List[XmlNode]] = {}
        for node in root.descendants(include_self=True):
            self._by_path.setdefault(node.label_path(), []).append(node)

    @property
    def node_types(self) -> List[str]:
        return sorted(self._by_path)

    def type_keyword_frequency(self, path: str, keyword: str) -> int:
        """f_T^k: number of T-typed nodes whose subtree contains *keyword*."""
        keyword = keyword.lower()
        count = 0
        for node in self._by_path.get(path, ()):
            if keyword in tokenize(node.text()) or keyword in tokenize(node.tag):
                count += 1
        return count

    def type_score(self, path: str, keywords: Sequence[str]) -> float:
        score = 1.0
        for keyword in keywords:
            freq = self.type_keyword_frequency(path, keyword)
            if freq == 0:
                return 0.0
            score *= 1.0 + math.log1p(freq)
        return score

    def infer_return_type(
        self,
        keywords: Sequence[str],
        candidate_paths: Optional[Sequence[str]] = None,
        exclude_leaf_types: bool = True,
    ) -> List[Tuple[str, float]]:
        """Node types ranked by score (zero-score types omitted).

        Leaf/attribute types are excluded by default — XReal searches for
        entity-like answers (``/conf/paper``), not individual attributes.
        """
        paths = candidate_paths if candidate_paths is not None else self.node_types
        out = []
        for path in paths:
            nodes = self._by_path.get(path, ())
            if not nodes:
                continue
            if exclude_leaf_types and all(n.is_leaf for n in nodes):
                continue
            score = self.type_score(path, keywords)
            if score > 0:
                out.append((path, score))
        out.sort(key=lambda item: (-item[1], item[0]))
        return out

    def instances(
        self, path: str, keywords: Sequence[str], decay: float = 0.8
    ) -> List[Tuple[XmlNode, float]]:
        """T-typed nodes containing every keyword, scored bottom-up.

        Leaf contributions decay with depth below the instance root
        (slide 38: "internal node aggregates the score of child nodes").
        """
        out = []
        keywords = [k.lower() for k in keywords]
        for node in self._by_path.get(path, ()):
            text_tokens = set(tokenize(node.text())) | set(tokenize(node.tag))
            if not all(k in text_tokens for k in keywords):
                continue
            score = 0.0
            for descendant in node.descendants(include_self=True):
                local = set(tokenize(descendant.value or ""))
                local |= set(tokenize(descendant.tag))
                hits = sum(1 for k in keywords if k in local)
                if hits:
                    depth = len(descendant.dewey) - len(node.dewey)
                    score += hits * (decay ** depth)
            out.append((node, score))
        out.sort(key=lambda item: (-item[1], item[0].dewey))
        return out
