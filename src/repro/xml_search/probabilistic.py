"""Probabilistic keyword-to-XPath refinement (Petkova et al., ECIR 09).

Slides 47-48: list and score all bindings of content/structure
keywords, then *reduce* high-probability combinations into valid XPath
queries by applying operators that update probabilities:

* aggregation   — ``//a[~x] + //a[~y] -> //a[~"x y"]``, Pr = Pr(A)·Pr(B)
* specialization — ``//a[~x] -> //b//a[~x]``,
                    Pr = Pr(a under b) · Pr(A)
* nesting       — ``//a + //b[~y] -> //a[//b[~y]]``,
                    Pr = IG(a,b) · Pr(A) · Pr(B)

The binding probability uses a path language model:
``Pr(path[~w]) = pLM(w | text of path's nodes)`` with add-one smoothing.
Top-k valid queries are kept via best-first (A*-like) search over the
reduction space.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.index.text import tokenize
from repro.xmltree.node import XmlNode


@dataclass(frozen=True)
class PathQuery:
    """A simple structured query: an anchor path + content predicates."""

    path: str  # label path, e.g. "/conf/paper"
    predicates: Tuple[Tuple[str, str], ...]  # (sub-path, keyword)
    probability: float

    def xpath(self) -> str:
        parts = "".join(
            f"[{sub or '.'} ~ {kw!r}]" for sub, kw in self.predicates
        )
        return f"{self.path}{parts}"


class ProbabilisticQueryBuilder:
    """Builds scored XPath-like queries from a keyword query."""

    def __init__(self, root: XmlNode):
        self.root = root
        # label path -> list of nodes; -> language model counts
        self._nodes: Dict[str, List[XmlNode]] = {}
        self._lm: Dict[str, Dict[str, int]] = {}
        self._lm_total: Dict[str, int] = {}
        for node in root.descendants(include_self=True):
            path = node.label_path()
            self._nodes.setdefault(path, []).append(node)
        for path, nodes in self._nodes.items():
            counts: Dict[str, int] = {}
            for node in nodes:
                if node.value:
                    for token in tokenize(node.value):
                        counts[token] = counts.get(token, 0) + 1
            self._lm[path] = counts
            self._lm_total[path] = sum(counts.values())

    # ------------------------------------------------------------------
    # Binding probabilities
    # ------------------------------------------------------------------
    def binding_probability(self, path: str, keyword: str) -> float:
        """pLM(w | doc(path)) with add-one smoothing (slide 47)."""
        counts = self._lm.get(path)
        if counts is None:
            return 0.0
        vocab = max(1, len(counts))
        return (counts.get(keyword.lower(), 0) + 1) / (
            self._lm_total.get(path, 0) + vocab
        )

    def candidate_bindings(
        self, keyword: str, limit: int = 5
    ) -> List[Tuple[str, float]]:
        """Paths most likely to contain *keyword*, scored."""
        keyword = keyword.lower()
        scored = []
        for path, counts in self._lm.items():
            if counts.get(keyword, 0) > 0:
                scored.append((path, self.binding_probability(path, keyword)))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:limit]

    # ------------------------------------------------------------------
    # Reduction operators
    # ------------------------------------------------------------------
    @staticmethod
    def _common_ancestor_path(a: str, b: str) -> Optional[str]:
        pa = a.split("/")
        pb = b.split("/")
        n = 0
        for x, y in zip(pa, pb):
            if x != y:
                break
            n += 1
        if n <= 1:
            return None
        return "/".join(pa[:n]) or None

    def _descendant_probability(self, ancestor: str, descendant: str) -> float:
        """Pr(a descendant path exists under an ancestor instance)."""
        ancestors = self._nodes.get(ancestor, ())
        if not ancestors:
            return 0.0
        with_descendant = 0
        for node in ancestors:
            prefix = node.label_path()
            for sub in node.descendants(include_self=True):
                if sub.label_path() == descendant:
                    with_descendant += 1
                    break
        return with_descendant / len(ancestors)

    def build(self, keywords: Sequence[str], k: int = 5) -> List[PathQuery]:
        """Top-k valid queries combining all keywords (slide 48).

        Generates per-keyword bindings, then for each combination finds
        the deepest common anchor (nesting) and scores it as
        Pr = prod_i Pr(binding_i) * prod_i Pr(sub-path under anchor).
        Best-first over combinations keeps the search bounded.
        """
        keywords = [kw.lower() for kw in keywords]
        per_keyword = [self.candidate_bindings(kw) for kw in keywords]
        if any(not c for c in per_keyword):
            return []
        heap: List[Tuple[float, int, Tuple[int, ...]]] = []
        counter = itertools.count()
        start = tuple([0] * len(keywords))

        def upper(vec: Tuple[int, ...]) -> float:
            p = 1.0
            for i, pos in enumerate(vec):
                if pos >= len(per_keyword[i]):
                    return 0.0
                p *= per_keyword[i][pos][1]
            return p

        seen = {start}
        heapq.heappush(heap, (-upper(start), next(counter), start))
        results: List[PathQuery] = []
        while heap and len(results) < k * 3:
            neg_p, __, vec = heapq.heappop(heap)
            if -neg_p <= 0:
                break
            query = self._reduce(
                [per_keyword[i][pos] for i, pos in enumerate(vec)], keywords
            )
            if query is not None:
                results.append(query)
            for dim in range(len(vec)):
                succ = vec[:dim] + (vec[dim] + 1,) + vec[dim + 1 :]
                if succ[dim] < len(per_keyword[dim]) and succ not in seen:
                    seen.add(succ)
                    heapq.heappush(heap, (-upper(succ), next(counter), succ))
        results.sort(key=lambda q: (-q.probability, q.xpath()))
        # Deduplicate identical xpaths.
        unique: Dict[str, PathQuery] = {}
        for query in results:
            unique.setdefault(query.xpath(), query)
        return list(unique.values())[:k]

    def _reduce(
        self, bindings: List[Tuple[str, float]], keywords: List[str]
    ) -> Optional[PathQuery]:
        paths = [p for p, __ in bindings]
        anchor = paths[0]
        for path in paths[1:]:
            common = self._common_ancestor_path(anchor, path)
            if common is None:
                return None
            anchor = common if len(common) < len(anchor) else (
                anchor if anchor == path else common
            )
        # Aggregation: same path for several keywords multiplies their
        # probabilities on one predicate path.
        probability = 1.0
        predicates: List[Tuple[str, str]] = []
        for (path, p), keyword in zip(bindings, keywords):
            probability *= p
            sub = path[len(anchor):].lstrip("/")
            predicates.append((sub, keyword))
            if path != anchor:
                probability *= self._descendant_probability(anchor, path)
        return PathQuery(anchor, tuple(predicates), probability)
