"""Query forms and QUnits (tutorial slides 54-64).

* form model + offline skeleton/form generation and online keyword ->
  form matching, ranking and grouping (Chu et al., SIGMOD 09),
* queriability-driven form design: entity, related-entity, attribute and
  operator-specific queriability (Jayapandian & Jagadish, PVLDB 08),
* QUnits: materialised semantic units searched by keywords (Nandi &
  Jagadish, CIDR 09).
"""

from repro.forms.model import QueryForm, Skeleton, PredicateSlot
from repro.forms.generation import generate_skeletons, generate_forms
from repro.forms.matching import FormIndex, rank_forms, group_forms
from repro.forms.queriability import (
    entity_queriability,
    related_entity_queriability,
    participation_ratio,
    attribute_queriability,
    operator_affinities,
    design_forms,
)
from repro.forms.qunits import QUnit, materialize_qunits, search_qunits

__all__ = [
    "QueryForm",
    "Skeleton",
    "PredicateSlot",
    "generate_skeletons",
    "generate_forms",
    "FormIndex",
    "rank_forms",
    "group_forms",
    "entity_queriability",
    "related_entity_queriability",
    "participation_ratio",
    "attribute_queriability",
    "operator_affinities",
    "design_forms",
    "QUnit",
    "materialize_qunits",
    "search_qunits",
]
