"""Query-form model (slide 54).

A *skeleton template* is "an incomplete SQL query with only table names
and join conditions"; a *query form* adds predicate attribute slots
whose operator and expression the user fills in.  Skeletons are join
trees over the schema graph, represented like candidate networks (an
ordered node list plus schema edges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.relational.database import Database
from repro.relational.executor import JoinedRow, hash_join
from repro.relational.schema_graph import SchemaEdge


@dataclass(frozen=True)
class Skeleton:
    """Join template: tables plus the edges connecting them."""

    tables: Tuple[str, ...]
    edges: Tuple[Tuple[int, int, SchemaEdge], ...]

    @property
    def size(self) -> int:
        return len(self.tables)

    def label(self) -> str:
        return "-".join(self.tables)

    def canonical(self) -> str:
        """Order-insensitive identity for deduplication."""
        parts = sorted(
            f"{self.tables[a]}.{e.fk.column}:{self.tables[b]}"
            if self.tables[a] == e.child
            else f"{self.tables[b]}.{e.fk.column}:{self.tables[a]}"
            for a, b, e in self.edges
        )
        return "|".join(sorted(self.tables)) + "||" + "|".join(parts)


@dataclass(frozen=True)
class PredicateSlot:
    """One fillable predicate: table alias index + attribute name."""

    node: int
    table: str
    attribute: str

    def label(self) -> str:
        return f"{self.table}.{self.attribute}"


@dataclass(frozen=True)
class QueryForm:
    """A skeleton plus predicate slots (operator/expression left open)."""

    skeleton: Skeleton
    slots: Tuple[PredicateSlot, ...]
    query_class: str = "SELECT"  # SELECT | AGGR | GROUP | UNION-INTERSECT

    def label(self) -> str:
        slots = ", ".join(s.label() for s in self.slots)
        return f"{self.query_class}[{self.skeleton.label()} | {slots}]"

    def schema_terms(self) -> List[str]:
        """Terms the form index matches keywords against."""
        terms = list(self.skeleton.tables)
        terms.extend(slot.attribute for slot in self.slots)
        return [t.lower() for t in terms]

    # ------------------------------------------------------------------
    # Instantiation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        db: Database,
        bindings: Dict[str, object],
    ) -> List[JoinedRow]:
        """Fill predicate slots with equality *bindings* and execute.

        ``bindings`` maps ``table.attribute`` labels to required values;
        unbound slots are unconstrained (the form's open fields).
        """
        tables = self.skeleton.tables

        def rows_for(node_idx: int):
            table = db.table(tables[node_idx])
            constraints = [
                (slot.attribute, bindings[slot.label()])
                for slot in self.slots
                if slot.node == node_idx and slot.label() in bindings
            ]
            for row in table.rows():
                if all(row[attr] == value for attr, value in constraints):
                    yield row

        current = (
            JoinedRow((f"n0",), (row,)) for row in rows_for(0)
        )
        joined_nodes = {0}
        pending = list(self.skeleton.edges)
        while pending:
            progressed = False
            for edge_entry in list(pending):
                a, b, edge = edge_entry
                if a in joined_nodes and b not in joined_nodes:
                    src, dst = a, b
                elif b in joined_nodes and a not in joined_nodes:
                    src, dst = b, a
                else:
                    continue
                left_col, right_col = edge.join_columns(tables[src])
                current = hash_join(
                    current,
                    f"n{src}",
                    left_col,
                    rows_for(dst),
                    f"n{dst}",
                    right_col,
                )
                joined_nodes.add(dst)
                pending.remove(edge_entry)
                progressed = True
            if not progressed:
                raise ValueError("skeleton edges do not form a connected tree")
        return list(current)
