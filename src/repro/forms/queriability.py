"""Queriability-driven form design (Jayapandian & Jagadish, PVLDB 08).

Slides 59-63, plus the slide-40 participation arithmetic:

* **entity queriability** — PageRank adapted to data navigation: an
  entity type likely to be *visited* while browsing is likely to be
  *queried*; score spread to out-links is weighted by how many instance
  connections each link carries (slide 60);
* **related-entity queriability** — relatedness of E1 – E2 is the mean
  of the two directional generalised participation ratios
  P(E1 -> E2) = fraction of E1 instances connected to some E2 instance
  (slide 40), combined with the endpoints' own queriabilities;
* **attribute queriability** — non-null occurrence ratio (slide 62);
* **operator-specific queriability** — selective attributes -> selection,
  text fields -> projection, single-valued mandatory -> order-by,
  numeric -> aggregation (slide 63);
* ``design_forms`` — assemble the top-queriability forms under a budget.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.forms.model import PredicateSlot, QueryForm, Skeleton
from repro.relational.database import Database
from repro.relational.schema_graph import SchemaGraph


def _connected_instances(
    db: Database, from_table: str, to_table: str
) -> Set[int]:
    """Rowids of *from_table* connected to some *to_table* instance
    by one FK edge or via one intermediate (relationship) tuple."""
    connected: Set[int] = set()
    for row in db.rows(from_table):
        frontier = [(row, 0)]
        seen = {(from_table, row.rowid)}
        while frontier:
            current, depth = frontier.pop()
            if current.table.name == to_table and depth > 0:
                connected.add(row.rowid)
                break
            if depth >= 2:
                continue
            neighbors = [p for p, _ in db.references_of(current)]
            neighbors.extend(c for c, _, _ in db.referrers_of(current))
            for nbr in neighbors:
                key = (nbr.table.name, nbr.rowid)
                if key not in seen:
                    seen.add(key)
                    frontier.append((nbr, depth + 1))
    return connected


def participation_ratio(db: Database, from_table: str, to_table: str) -> float:
    """P(E1 -> E2): fraction of E1 instances connected to some E2 (slide 40)."""
    total = len(db.table(from_table))
    if total == 0:
        return 0.0
    return len(_connected_instances(db, from_table, to_table)) / total


def entity_queriability(
    db: Database,
    schema_graph: SchemaGraph,
    damping: float = 0.85,
    iterations: int = 50,
) -> Dict[str, float]:
    """PageRank over the schema graph with instance-weighted spread.

    The weight of the edge t -> u is the number of instance connections
    between the two tables (slide 60: inproceedings spreads more weight
    to author than article if it carries more author links).
    """
    tables = schema_graph.tables
    weights: Dict[str, Dict[str, float]] = {t: {} for t in tables}
    for edge in schema_graph.edges:
        count = 0
        child = db.table(edge.child)
        for row in child.rows():
            if row[edge.fk.column] is not None:
                count += 1
        if count == 0:
            count = 1
        weights[edge.child][edge.parent] = (
            weights[edge.child].get(edge.parent, 0.0) + count
        )
        weights[edge.parent][edge.child] = (
            weights[edge.parent].get(edge.child, 0.0) + count
        )
    rank = {t: 1.0 / len(tables) for t in tables}
    for _ in range(iterations):
        nxt = {t: (1 - damping) / len(tables) for t in tables}
        for t in tables:
            out = weights[t]
            total = sum(out.values())
            if total == 0:
                for u in tables:
                    nxt[u] += damping * rank[t] / len(tables)
                continue
            for u, w in out.items():
                nxt[u] += damping * rank[t] * (w / total)
        rank = nxt
    return rank


def related_entity_queriability(
    db: Database,
    schema_graph: SchemaGraph,
    entity_scores: Dict[str, float],
    e1: str,
    e2: str,
) -> float:
    """Queriability of asking E1 and E2 together (slides 40, 61)."""
    relatedness = 0.5 * (
        participation_ratio(db, e1, e2) + participation_ratio(db, e2, e1)
    )
    # Combined queriability on the same scale as single entities: the
    # pair inherits the sum of its endpoints' queriabilities, damped by
    # how related they actually are (slide 61) — strongly-participating
    # pairs outrank their individual entities, weak pairs do not.
    return relatedness * (entity_scores.get(e1, 0.0) + entity_scores.get(e2, 0.0))


def attribute_queriability(db: Database, table: str, attribute: str) -> float:
    """Fraction of non-null occurrences w.r.t. parent instances (slide 62)."""
    tbl = db.table(table)
    if len(tbl) == 0:
        return 0.0
    non_null = sum(1 for row in tbl.rows() if row[attribute] is not None)
    return non_null / len(tbl)


def operator_affinities(
    db: Database, table: str, attribute: str
) -> Dict[str, float]:
    """Operator-specific queriability of one attribute (slide 63)."""
    tbl = db.table(table)
    schema = tbl.schema
    column = schema.column(attribute)
    n = len(tbl) or 1
    values = [row[attribute] for row in tbl.rows()]
    non_null = [v for v in values if v is not None]
    distinct = len(set(non_null))
    selectivity = distinct / n
    mandatory = len(non_null) == n
    numeric = column.dtype in ("int", "float")
    out = {
        # Highly selective attributes identify instances -> selection.
        "selection": selectivity,
        # Text fields are informative to read -> projection.
        "projection": 1.0 if column.text else 0.2,
        # Single-valued mandatory attributes order well -> order by.
        "order_by": (1.0 if (mandatory and numeric) else 0.1),
        # Numeric attributes aggregate -> aggregation.
        "aggregation": 1.0 if numeric else 0.0,
    }
    return out


def design_forms(
    db: Database,
    schema_graph: SchemaGraph,
    form_budget: int = 5,
    attributes_per_form: int = 3,
) -> List[QueryForm]:
    """Assemble the top-queriability forms (slides 59-63 pipeline).

    Candidate skeletons are single entities and related entity pairs
    (joined through their connecting relationship path); they are ranked
    by (related-)entity queriability, and each form receives its tables'
    top-queriability attributes as predicate slots.
    """
    entity_scores = entity_queriability(db, schema_graph)
    schema = db.schema
    entities = [t for t in schema.entity_tables()]
    candidates: List[Tuple[float, Skeleton]] = []
    for entity in entities:
        candidates.append(
            (entity_scores.get(entity, 0.0), Skeleton((entity,), ()))
        )
    for i, e1 in enumerate(entities):
        for e2 in entities[i:]:
            skeleton = _join_skeleton(schema_graph, e1, e2)
            if skeleton is None:
                continue
            score = related_entity_queriability(
                db, schema_graph, entity_scores, e1, e2
            )
            candidates.append((score, skeleton))
    candidates.sort(key=lambda pair: (-pair[0], pair[1].label()))
    forms: List[QueryForm] = []
    for score, skeleton in candidates[:form_budget]:
        slots: List[PredicateSlot] = []
        scored_slots: List[Tuple[float, PredicateSlot]] = []
        for node_idx, table_name in enumerate(skeleton.tables):
            tbl = schema.table(table_name)
            for column in tbl.columns:
                if column.name == tbl.primary_key:
                    continue
                quality = attribute_queriability(db, table_name, column.name)
                scored_slots.append(
                    (quality, PredicateSlot(node_idx, table_name, column.name))
                )
        scored_slots.sort(key=lambda pair: (-pair[0], pair[1].label()))
        slots = [slot for _, slot in scored_slots[:attributes_per_form]]
        if slots:
            forms.append(QueryForm(skeleton, tuple(slots)))
    return forms


def _join_skeleton(
    schema_graph: SchemaGraph, e1: str, e2: str
) -> Optional[Skeleton]:
    """Skeleton joining two entities along their shortest schema path."""
    if e1 == e2:
        return None
    try:
        path = schema_graph.shortest_join_path(e1, e2)
    except Exception:
        return None
    tables = tuple(path)
    edges = []
    for i in range(len(path) - 1):
        connecting = schema_graph.edges_between(path[i], path[i + 1])
        if not connecting:
            return None
        edges.append((i, i + 1, connecting[0]))
    return Skeleton(tables, tuple(edges))
