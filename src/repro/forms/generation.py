"""Offline form generation (Chu et al., SIGMOD 09; slides 55-56).

Step 1 enumerates *skeleton templates*: connected join trees over the
schema graph up to a size budget, deduplicated by canonical form.
Step 2 attaches predicate slots — by default every text attribute of
every participating table ("add predicate attributes to each skeleton
template; leave operator and expression unfilled").  Optionally each
skeleton is also expanded into the query classes of slide 58 (SELECT /
AGGR / GROUP / UNION-INTERSECT), which drives the two-level grouping.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.forms.model import PredicateSlot, QueryForm, Skeleton
from repro.relational.schema import Schema
from repro.relational.schema_graph import SchemaGraph

QUERY_CLASSES = ("SELECT", "AGGR", "GROUP", "UNION-INTERSECT")


def generate_skeletons(
    schema_graph: SchemaGraph,
    max_size: int = 3,
    max_skeletons: Optional[int] = None,
) -> List[Skeleton]:
    """All connected join trees up to *max_size* tables, duplicate-free."""
    seen: Set[str] = set()
    out: List[Skeleton] = []
    queue: deque = deque()
    for table in sorted(schema_graph.tables):
        skeleton = Skeleton((table,), ())
        code = skeleton.canonical()
        if code not in seen:
            seen.add(code)
            queue.append(skeleton)
    emitted: Set[str] = set()
    while queue:
        skeleton = queue.popleft()
        code = skeleton.canonical()
        if code not in emitted:
            emitted.add(code)
            out.append(skeleton)
            if max_skeletons is not None and len(out) >= max_skeletons:
                break
        if skeleton.size >= max_size:
            continue
        for i, table in enumerate(skeleton.tables):
            for nbr, edge in schema_graph.neighbors(table):
                extended = Skeleton(
                    skeleton.tables + (nbr,),
                    skeleton.edges + ((i, skeleton.size, edge),),
                )
                ext_code = extended.canonical()
                if ext_code not in seen:
                    seen.add(ext_code)
                    queue.append(extended)
    out.sort(key=lambda s: (s.size, s.label()))
    return out


def generate_forms(
    schema: Schema,
    skeletons: Sequence[Skeleton],
    with_query_classes: bool = False,
    text_attributes_only: bool = True,
) -> List[QueryForm]:
    """Attach predicate slots to every skeleton (step 2 of slide 56)."""
    forms: List[QueryForm] = []
    for skeleton in skeletons:
        slots: List[PredicateSlot] = []
        for node_idx, table_name in enumerate(skeleton.tables):
            table = schema.table(table_name)
            if text_attributes_only:
                attributes = table.text_columns
            else:
                attributes = tuple(
                    c.name for c in table.columns if c.name != table.primary_key
                )
            for attribute in attributes:
                slots.append(PredicateSlot(node_idx, table_name, attribute))
        if not slots:
            continue
        if with_query_classes:
            for query_class in QUERY_CLASSES:
                forms.append(QueryForm(skeleton, tuple(slots), query_class))
        else:
            forms.append(QueryForm(skeleton, tuple(slots)))
    return forms
