"""QUnits: queried units in database search (Nandi & Jagadish, CIDR 09).

Slides 26 and 64: a QUnit is "a basic, independent semantic unit of
information in the DB" — e.g. a director with the movies they directed.
QUnit *definitions* name an anchor entity and the related tables to fold
in; *instances* are materialised per anchor tuple as flat documents and
retrieved by plain keyword relevance, giving keyword search a simpler
interface than forms (no binding of keywords to attributes).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.index.text import tokenize
from repro.relational.database import Database, TupleId


@dataclass(frozen=True)
class QUnit:
    """One materialised QUnit instance."""

    anchor: TupleId
    definition: str
    members: Tuple[TupleId, ...]
    text: str

    def tokens(self) -> List[str]:
        return tokenize(self.text)


def materialize_qunits(
    db: Database,
    anchor_table: str,
    include_tables: Optional[Sequence[str]] = None,
    max_hops: int = 2,
) -> List[QUnit]:
    """Materialise one QUnit per anchor tuple.

    The instance gathers the anchor's text plus the text of connected
    tuples within *max_hops* FK hops, optionally restricted to
    *include_tables* (the domain expert's definition, slide 26).
    """
    allowed = set(include_tables) if include_tables is not None else None
    definition = f"{anchor_table}+" + (
        ",".join(sorted(allowed)) if allowed else "*"
    )
    out: List[QUnit] = []
    for anchor_row in db.rows(anchor_table):
        anchor = TupleId(anchor_table, anchor_row.rowid)
        members = [anchor]
        texts = [anchor_row.text()]
        frontier = [(anchor, 0)]
        seen = {anchor}
        while frontier:
            tid, depth = frontier.pop()
            if depth >= max_hops:
                continue
            for nbr in db.neighbors(tid):
                if nbr in seen:
                    continue
                seen.add(nbr)
                frontier.append((nbr, depth + 1))
                if allowed is None or nbr.table in allowed:
                    members.append(nbr)
                    texts.append(db.row(nbr).text())
        out.append(
            QUnit(
                anchor=anchor,
                definition=definition,
                members=tuple(members),
                text=" ".join(t for t in texts if t),
            )
        )
    return out


def search_qunits(
    qunits: Sequence[QUnit],
    keywords: Sequence[str],
    k: int = 10,
    require_all: bool = True,
) -> List[Tuple[QUnit, float]]:
    """Keyword retrieval over materialised QUnits (TF·IDF ranking)."""
    keywords = [kw.lower() for kw in keywords]
    n = len(qunits) or 1
    df: Dict[str, int] = Counter()
    token_bags = []
    for qunit in qunits:
        bag = Counter(qunit.tokens())
        token_bags.append(bag)
        for token in bag:
            df[token] += 1
    scored: List[Tuple[QUnit, float]] = []
    for qunit, bag in zip(qunits, token_bags):
        if require_all and not all(kw in bag for kw in keywords):
            continue
        score = 0.0
        for kw in keywords:
            tf = bag.get(kw, 0)
            if tf:
                idf = math.log((n + 1) / (df[kw] + 1)) + 1.0
                score += (1 + math.log(tf)) * idf
        if score > 0:
            scored.append((qunit, score))
    scored.sort(key=lambda pair: (-pair[1], pair[0].anchor))
    return scored[:k]
