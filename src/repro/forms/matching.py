"""Online keyword -> form selection (Chu et al., SIGMOD 09; slides 57-58).

Each form becomes a small *document* of schema terms (table names,
attribute names) plus the data terms its attributes can bind (drawn from
the inverted index).  The incoming keyword query is expanded by
replacing data keywords with the schema terms of the attributes that
contain them (slide 57: "John, XML" also generates "Author, XML",
"John, paper", "Author, paper"); all expansions are evaluated under AND
semantics and the union of matching forms is ranked with TF·IDF, then
grouped two-level: by skeleton, then by query class (slide 58).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.forms.model import QueryForm
from repro.index.inverted import InvertedIndex


class FormIndex:
    """IR-style index over a form collection."""

    def __init__(self, forms: Sequence[QueryForm], index: InvertedIndex):
        self.forms = list(forms)
        self.index = index
        # form id -> term multiset (schema terms only; data terms are
        # resolved through the inverted index at query time).
        self._form_terms: List[Dict[str, int]] = []
        self._df: Dict[str, int] = {}
        for form in self.forms:
            counts: Dict[str, int] = {}
            for term in form.schema_terms():
                counts[term] = counts.get(term, 0) + 1
            self._form_terms.append(counts)
            for term in counts:
                self._df[term] = self._df.get(term, 0) + 1

    # ------------------------------------------------------------------
    def _attributes_containing(self, keyword: str) -> Set[Tuple[str, str]]:
        """(table, attribute) pairs whose data contains *keyword*."""
        out: Set[Tuple[str, str]] = set()
        for posting in self.index.postings(keyword):
            out.add((posting.tid.table, posting.column))
        return out

    def expand_query(self, keywords: Sequence[str]) -> List[List[str]]:
        """All schema-term replacements of the query (slide 57)."""
        options: List[List[str]] = []
        for keyword in keywords:
            keyword = keyword.lower()
            variants = [keyword]
            for table, attribute in sorted(self._attributes_containing(keyword)):
                variants.append(table)
                variants.append(attribute)
            options.append(list(dict.fromkeys(variants)))
        expansions: List[List[str]] = [[]]
        for variants in options:
            expansions = [prior + [v] for prior in expansions for v in variants]
        # Deduplicate preserving order.
        seen = set()
        unique = []
        for expansion in expansions:
            key = tuple(expansion)
            if key not in seen:
                seen.add(key)
                unique.append(expansion)
        return unique

    def _form_matches(self, form_idx: int, terms: Sequence[str]) -> bool:
        """AND semantics: every term is a schema term of the form or a
        data term bindable by one of the form's slots."""
        form = self.forms[form_idx]
        schema_terms = self._form_terms[form_idx]
        slot_attrs = {(s.table, s.attribute) for s in form.slots}
        for term in terms:
            if term in schema_terms:
                continue
            if self._attributes_containing(term) & slot_attrs:
                continue
            return False
        return True

    def _idf(self, term: str) -> float:
        df = self._df.get(term, 0)
        return math.log((len(self.forms) + 1) / (df + 1)) + 1.0

    def _score(self, form_idx: int, keywords: Sequence[str]) -> float:
        """TF·IDF of the schema terms the query touches, with a
        compactness prior (smaller skeletons first, as UIs prefer)."""
        counts = self._form_terms[form_idx]
        score = 0.0
        for keyword in keywords:
            for term in [keyword, *(
                t
                for table_attr in self._attributes_containing(keyword)
                for t in table_attr
            )]:
                tf = counts.get(term, 0)
                if tf:
                    score += (1 + math.log(tf)) * self._idf(term)
        size = self.forms[form_idx].skeleton.size
        return score / (1.0 + math.log1p(size))


def rank_forms(
    form_index: FormIndex,
    keywords: Sequence[str],
    k: Optional[int] = 10,
) -> List[Tuple[QueryForm, float]]:
    """Union of forms matching any query expansion, ranked by score."""
    keywords = [kw.lower() for kw in keywords]
    matched: Set[int] = set()
    for expansion in form_index.expand_query(keywords):
        for form_idx in range(len(form_index.forms)):
            if form_idx in matched:
                continue
            if form_index._form_matches(form_idx, expansion):
                matched.add(form_idx)
    scored = [
        (form_index.forms[i], form_index._score(i, keywords)) for i in matched
    ]
    scored.sort(key=lambda pair: (-pair[1], pair[0].label()))
    return scored[:k] if k is not None else scored


def group_forms(
    ranked: Sequence[Tuple[QueryForm, float]]
) -> Dict[str, Dict[str, List[QueryForm]]]:
    """Two-level grouping: skeleton first, query class second (slide 58)."""
    groups: Dict[str, Dict[str, List[QueryForm]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for form, _score in ranked:
        groups[form.skeleton.label()][form.query_class].append(form)
    return {k: dict(v) for k, v in groups.items()}
