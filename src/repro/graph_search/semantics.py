"""Alternative result semantics (slide 31).

* **Distinct root** (Kacholia+ VLDB 05, He+ SIGMOD 07): one answer per
  root r with cost(T_r) = sum_i dist(r, match_i) — cheap to compute but
  inflates the result list: many roots describe the same keyword-match
  combination.

* **Distinct core** (Qin+ ICDE 09): one answer per distinct combination
  of keyword matches (the *core*); among all roots/centers that connect
  a core within radius Dmax, the best one represents it.  This is the
  de-duplication E18 quantifies.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.graph.data_graph import DataGraph
from repro.index.distance import bounded_bfs_distances
from repro.relational.database import TupleId

INF = float("inf")


@dataclass(frozen=True)
class RootedAnswer:
    """Distinct-root answer: root + per-group nearest matches + cost."""

    root: TupleId
    matches: Tuple[TupleId, ...]
    cost: float


@dataclass(frozen=True)
class CoreAnswer:
    """Distinct-core answer: the match combination + its best center."""

    core: Tuple[TupleId, ...]
    center: TupleId
    cost: float


def _distance_maps(
    graph: DataGraph,
    groups: Sequence[Sequence[TupleId]],
    dmax: float,
) -> List[Dict[TupleId, Dict[TupleId, float]]]:
    """Per group: match node -> {node within dmax: distance}."""
    out: List[Dict[TupleId, Dict[TupleId, float]]] = []
    for group in groups:
        per_match: Dict[TupleId, Dict[TupleId, float]] = {}
        for match in group:
            per_match[match] = bounded_bfs_distances(graph, [match], dmax)
        out.append(per_match)
    return out


def distinct_root_results(
    graph: DataGraph,
    groups: Sequence[Sequence[TupleId]],
    dmax: float = 4.0,
    k: Optional[int] = None,
) -> List[RootedAnswer]:
    """All roots within *dmax* of every group, cheapest matches chosen."""
    if not groups or any(not g for g in groups):
        return []
    # nearest-match distance per group via multi-source search
    per_group = [bounded_bfs_distances(graph, group, dmax) for group in groups]
    maps = _distance_maps(graph, groups, dmax)
    answers = []
    candidates = set(per_group[0])
    for m in per_group[1:]:
        candidates &= set(m)
    for root in sorted(candidates):
        cost = sum(m[root] for m in per_group)
        matches = []
        for gi, group in enumerate(groups):
            best_match = None
            best_d = INF
            for match in group:
                d = maps[gi][match].get(root)
                if d is not None and d < best_d:
                    best_d = d
                    best_match = match
            matches.append(best_match)
        answers.append(RootedAnswer(root, tuple(matches), cost))
    answers.sort(key=lambda a: (a.cost, a.root))
    return answers[:k] if k is not None else answers


def distinct_core_results(
    graph: DataGraph,
    groups: Sequence[Sequence[TupleId]],
    dmax: float = 4.0,
    k: Optional[int] = None,
    max_core_combinations: int = 200_000,
) -> List[CoreAnswer]:
    """One answer per distinct keyword-match combination.

    A core (m_1..m_l) qualifies when some center node is within *dmax*
    of every m_i; its cost is the best center's summed distance (the
    "community" of Qin+ ICDE 09).
    """
    if not groups or any(not g for g in groups):
        return []
    maps = _distance_maps(graph, groups, dmax)
    n_combos = 1
    for group in groups:
        n_combos *= len(group)
    if n_combos > max_core_combinations:
        raise ValueError(
            f"core combination space too large ({n_combos})"
        )
    answers = []
    for combo in itertools.product(*groups):
        balls = [maps[gi][match] for gi, match in enumerate(combo)]
        candidates = set(balls[0])
        for ball in balls[1:]:
            candidates &= set(ball)
        if not candidates:
            continue
        center = min(
            candidates, key=lambda c: (sum(b[c] for b in balls), c)
        )
        cost = sum(b[center] for b in balls)
        answers.append(CoreAnswer(tuple(combo), center, cost))
    answers.sort(key=lambda a: (a.cost, a.core))
    return answers[:k] if k is not None else answers
