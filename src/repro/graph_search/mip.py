"""Steiner trees by mixed-integer programming (Talukdar et al., VLDB 08).

Slide 113: "MIP uses Mixed Linear Programming to find the min Steiner
Tree (rooted at a node r)".  We formulate the rooted group Steiner tree
as a single-commodity flow MILP solved with
:func:`scipy.optimize.milp`:

* binary y_e  — edge e (directed arc) is in the tree,
* flow  f_e  — units of demand routed over arc e,
* one unit of demand is injected at the root for every keyword group
  and must be absorbed by some chosen terminal of that group (binary
  t_v per candidate terminal, one per group),
* capacity coupling  f_e <= G * y_e  forces paid-for arcs,
* objective: minimise sum of w_e * y_e.

Flow conservation guarantees connectivity to the root, so the optimum
equals the rooted group Steiner tree; minimising over candidate roots
(or fixing one) reproduces the DP optimum — cross-checked in the tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import LinearConstraint, milp, Bounds

from repro.graph.data_graph import DataGraph
from repro.graph_search.steiner import SteinerTree
from repro.relational.database import TupleId


def steiner_milp_rooted(
    graph: DataGraph,
    root: TupleId,
    groups: Sequence[Sequence[TupleId]],
) -> Optional[SteinerTree]:
    """Minimum-weight tree rooted at *root* touching every group."""
    groups = [list(dict.fromkeys(g)) for g in groups]
    if not groups or any(not g for g in groups):
        return None
    nodes = sorted(graph.nodes)
    node_index = {n: i for i, n in enumerate(nodes)}
    if root not in node_index:
        return None
    arcs: List[Tuple[int, int, float]] = []
    for u in nodes:
        for v, w in graph.neighbors(u):
            arcs.append((node_index[u], node_index[v], w))
    n_arcs = len(arcs)
    n_groups = len(groups)
    # Terminal selection variables: per group, per candidate terminal.
    terminal_vars: List[Tuple[int, int]] = []  # (group, node index)
    for gi, group in enumerate(groups):
        for member in group:
            if member in node_index:
                terminal_vars.append((gi, node_index[member]))
    if not terminal_vars:
        return None
    n_terms = len(terminal_vars)
    # Variable layout: [y (n_arcs, binary), f (n_arcs, continuous),
    #                   t (n_terms, binary)]
    n_vars = 2 * n_arcs + n_terms
    cost = np.zeros(n_vars)
    for i, (_, _, w) in enumerate(arcs):
        cost[i] = w
    integrality = np.concatenate(
        [np.ones(n_arcs), np.zeros(n_arcs), np.ones(n_terms)]
    )
    lb = np.zeros(n_vars)
    ub = np.concatenate(
        [np.ones(n_arcs), np.full(n_arcs, float(n_groups)), np.ones(n_terms)]
    )

    rows = []
    lbs = []
    ubs = []

    # Flow conservation: for each node v != root:
    #   inflow - outflow = demand absorbed at v = sum of t over (g, v).
    root_idx = node_index[root]
    for vi in range(len(nodes)):
        if vi == root_idx:
            continue
        row = np.zeros(n_vars)
        for ai, (u, v, _) in enumerate(arcs):
            if v == vi:
                row[n_arcs + ai] += 1.0
            if u == vi:
                row[n_arcs + ai] -= 1.0
        for ti, (gi, node_i) in enumerate(terminal_vars):
            if node_i == vi:
                row[2 * n_arcs + ti] -= 1.0
        rows.append(row)
        lbs.append(0.0)
        ubs.append(0.0)

    # Root outflow - inflow = n_groups - demand absorbed at root.
    row = np.zeros(n_vars)
    for ai, (u, v, _) in enumerate(arcs):
        if u == root_idx:
            row[n_arcs + ai] += 1.0
        if v == root_idx:
            row[n_arcs + ai] -= 1.0
    for ti, (gi, node_i) in enumerate(terminal_vars):
        if node_i == root_idx:
            row[2 * n_arcs + ti] += 1.0
    rows.append(row)
    lbs.append(float(n_groups))
    ubs.append(float(n_groups))

    # Exactly one terminal per group.
    for gi in range(n_groups):
        row = np.zeros(n_vars)
        for ti, (g, _) in enumerate(terminal_vars):
            if g == gi:
                row[2 * n_arcs + ti] = 1.0
        rows.append(row)
        lbs.append(1.0)
        ubs.append(1.0)

    # Capacity coupling: f_a - G * y_a <= 0.
    for ai in range(n_arcs):
        row = np.zeros(n_vars)
        row[n_arcs + ai] = 1.0
        row[ai] = -float(n_groups)
        rows.append(row)
        lbs.append(-np.inf)
        ubs.append(0.0)

    constraints = LinearConstraint(np.array(rows), np.array(lbs), np.array(ubs))
    result = milp(
        c=cost,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(lb, ub),
    )
    if not result.success or result.x is None:
        return None
    y = result.x[:n_arcs]
    edges = set()
    weight = 0.0
    for ai, (u, v, w) in enumerate(arcs):
        if y[ai] > 0.5:
            a, b = nodes[u], nodes[v]
            edge = (min(a, b), max(a, b))
            if edge not in edges:
                edges.add(edge)
                weight += w
    return SteinerTree(root=root, edges=sorted(edges), weight=weight)


def steiner_milp(
    graph: DataGraph,
    groups: Sequence[Sequence[TupleId]],
    candidate_roots: Optional[Sequence[TupleId]] = None,
) -> Optional[SteinerTree]:
    """Group Steiner tree: minimise over candidate roots.

    Any optimal tree contains a member of the first group, so using the
    first group's members as candidate roots preserves optimality.
    """
    if not groups or any(not g for g in groups):
        return None
    roots = (
        list(candidate_roots)
        if candidate_roots is not None
        else list(dict.fromkeys(groups[0]))
    )
    best: Optional[SteinerTree] = None
    for root in roots:
        tree = steiner_milp_rooted(graph, root, groups)
        if tree is not None and (best is None or tree.weight < best.weight):
            best = tree
    return best
