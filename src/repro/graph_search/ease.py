"""EASE: r-radius Steiner subgraphs (Li et al., SIGMOD 08; slides 31, 128).

An answer is a subgraph of radius <= r that matches every query keyword,
reduced to its *Steiner* part: only nodes lying on paths between keyword
matches survive ("less unnecessary nodes", slide 31).  We enumerate
candidate centers (nodes whose r-hop ball covers all keywords), extract
the Steiner nodes of each ball, and deduplicate by node set, keeping the
most compact representative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.graph.data_graph import DataGraph
from repro.relational.database import TupleId
from repro.resilience.budget import QueryBudget
from repro.resilience.errors import BudgetExceededError


@dataclass(frozen=True)
class RadiusSteinerGraph:
    """One EASE answer: center, Steiner node set, matched keyword nodes."""

    center: TupleId
    nodes: FrozenSet[TupleId]
    keyword_nodes: FrozenSet[TupleId]

    def size(self) -> int:
        return len(self.nodes)


def r_radius_steiner_graphs(
    graph: DataGraph,
    groups: Sequence[Sequence[TupleId]],
    r: int = 2,
    k: Optional[int] = None,
    budget: Optional[QueryBudget] = None,
) -> List[RadiusSteinerGraph]:
    """Enumerate r-radius Steiner subgraphs covering all keyword groups.

    Results are ordered by (size, center) — smaller (more compact)
    subgraphs first, matching EASE's compactness-oriented ranking.
    An exhausted *budget* stops center enumeration early and returns
    the answers found so far.
    """
    if not groups or any(not g for g in groups):
        return []
    group_sets = [set(g) for g in groups]
    all_matches: Set[TupleId] = set().union(*group_sets)
    answers: Dict[FrozenSet[TupleId], RadiusSteinerGraph] = {}
    try:
        for center in graph.nodes:
            ball = graph.bfs_hops(center, max_hops=r)
            members = set(ball)
            if budget is not None:
                budget.tick_nodes(max(1, len(members)))
            matched = [members & gs for gs in group_sets]
            if not all(matched):
                continue
            keyword_nodes = set().union(*matched)
            steiner = _steiner_reduce(graph, members, keyword_nodes, center)
            key = frozenset(steiner)
            existing = answers.get(key)
            candidate = RadiusSteinerGraph(
                center=center,
                nodes=frozenset(steiner),
                keyword_nodes=frozenset(keyword_nodes),
            )
            if existing is None or candidate.center < existing.center:
                answers[key] = candidate
    except BudgetExceededError:
        pass  # partial enumeration; caller sees budget.exhausted
    out = sorted(answers.values(), key=lambda a: (a.size(), a.center))
    return out[:k] if k is not None else out


def _steiner_reduce(
    graph: DataGraph,
    members: Set[TupleId],
    keyword_nodes: Set[TupleId],
    center: TupleId,
) -> Set[TupleId]:
    """Drop ball nodes not on any path between keyword nodes.

    Standard reduction on the induced subgraph: iteratively peel
    degree-<=1 nodes that are not keyword nodes; what remains is the
    union of paths among keyword nodes (plus cycles through them).
    """
    sub = {n: set() for n in members}
    for n in members:
        for nbr, _ in graph.neighbors(n):
            if nbr in members:
                sub[n].add(nbr)
    changed = True
    alive = set(members)
    while changed:
        changed = False
        for node in list(alive):
            if node in keyword_nodes:
                continue
            degree = len(sub[node] & alive)
            if degree <= 1:
                alive.discard(node)
                changed = True
    return alive if alive else set(keyword_nodes)
