"""BLINKS-style top-k search over keyword-distance lists (He+ SIGMOD 07).

Slide 123: with node-to-keyword distances precomputed (SLINKS /
:class:`repro.index.distance.KeywordDistanceIndex`), distinct-root
top-k search becomes Fagin's Threshold Algorithm over the per-keyword
sorted (distance, node) lists: consume the lists round-robin, maintain
partial sums, and stop as soon as the k-th complete root beats the
threshold (the sum of current list positions' distances).  The benchmark
(E9) contrasts the entries this touches against unindexed BANKS
expansion.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.index.distance import KeywordDistanceIndex
from repro.relational.database import TupleId

INF = float("inf")


@dataclass
class BlinksResult:
    """Top-k (cost, root) answers and index-entry touch count."""

    answers: List[Tuple[float, TupleId]]
    entries_touched: int


def blinks_topk(
    index: KeywordDistanceIndex,
    keywords: Sequence[str],
    k: int = 10,
) -> BlinksResult:
    """Threshold-Algorithm top-k distinct roots."""
    lists = [index.sorted_list(kw) for kw in keywords]
    if not lists or any(not lst for lst in lists):
        return BlinksResult([], 0)
    n_lists = len(lists)
    positions = [0] * n_lists
    partial: Dict[TupleId, Dict[int, float]] = {}
    complete: Dict[TupleId, float] = {}
    entries = 0

    def _current_distances() -> List[float]:
        out = []
        for li, lst in enumerate(lists):
            pos = positions[li]
            out.append(lst[pos][0] if pos < len(lst) else INF)
        return out

    def stopping_bound(kth: float) -> float:
        """Best cost any not-yet-complete root could still achieve.

        NRA-style: a fully unseen root costs at least the sum of current
        list positions; a partially seen root costs at least its seen
        sum plus the current positions of its unseen lists.  Returns
        early as soon as some candidate bound drops below *kth* — the
        caller only needs to know whether ``kth <= bound``.
        """
        current = _current_distances()
        bound = sum(d for d in current if d < INF) + (
            0.0 if all(d < INF for d in current) else INF
        )
        if bound < kth:
            return bound
        for node, seen in partial.items():
            if node in complete:
                continue
            candidate = sum(seen.values())
            feasible = True
            for li in range(n_lists):
                if li not in seen:
                    if current[li] == INF:
                        feasible = False
                        break
                    candidate += current[li]
            if feasible and candidate < bound:
                bound = candidate
                if bound < kth:
                    return bound
        return bound

    exhausted = False
    while not exhausted:
        exhausted = True
        for li, lst in enumerate(lists):
            pos = positions[li]
            if pos >= len(lst):
                continue
            exhausted = False
            distance, node = lst[pos]
            positions[li] = pos + 1
            entries += 1
            seen = partial.setdefault(node, {})
            seen[li] = distance
            if len(seen) == n_lists and node not in complete:
                complete[node] = sum(seen.values())
        if len(complete) >= k:
            kth = sorted(complete.values())[k - 1]
            if kth <= stopping_bound(kth):
                break
    answers = sorted(
        ((cost, node) for node, cost in complete.items()),
        key=lambda item: (item[0], item[1]),
    )[:k]
    return BlinksResult(answers, entries)
