"""BANKS backward and frontier-prioritised expansion (slides 113-114).

* **BANKS I** (Bhalotia+ ICDE 02): one single-source-set Dijkstra per
  keyword group, expanded in *equi-distance* order across all groups; a
  node reached by every group becomes a candidate answer root whose tree
  is the union of the shortest paths to each group.

* **BANKS II** (Kacholia+ VLDB 05): instead of strict equi-distance, an
  activation-based priority prefers expanding (a) frontiers that
  originate from small keyword groups and (b) low-degree nodes — the
  "spreading activation" idea.  We model activation as
  ``distance * log(2 + origin group size) * log(2 + degree)``: hubs and
  huge-group frontiers are deprioritised, which is what lets BANKS II
  confirm the meeting points with fewer node expansions on hub-heavy
  graphs (the E4 claim).

Both return the same semantics: top-k distinct-root answers with cost
``sum_i dist(root, group_i)``, guaranteed optimal because expansion
stops only when the confirmed k-th cost is no worse than any bound on
unseen roots.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.graph.data_graph import DataGraph
from repro.graph_search.steiner import SteinerTree
from repro.relational.database import TupleId
from repro.resilience.budget import QueryBudget
from repro.resilience.errors import BudgetExceededError

INF = float("inf")


@dataclass
class BanksResult:
    """Top-k answers plus the expansion statistics benchmarks report."""

    trees: List[SteinerTree]
    nodes_expanded: int


def _result_tree(
    graph: DataGraph,
    root: TupleId,
    parents: List[Dict[TupleId, Optional[TupleId]]],
    dists: List[Dict[TupleId, float]],
) -> SteinerTree:
    """Union of shortest paths from *root* back to each group."""
    edges: Set[Tuple[TupleId, TupleId]] = set()
    for parent in parents:
        node = root
        while parent.get(node) is not None:
            prev = parent[node]
            edge = (min(node, prev), max(node, prev))
            edges.add(edge)
            node = prev
    weight = sum(graph.edge_weight(u, v) or 0.0 for u, v in edges)
    return SteinerTree(root=root, edges=sorted(edges), weight=weight)


def _expand(
    graph: DataGraph,
    groups: Sequence[Sequence[TupleId]],
    k: int,
    priority: Callable[[float, int, TupleId], float],
    budget: Optional[QueryBudget] = None,
    span=None,
) -> BanksResult:
    g = len(groups)
    if g == 0 or any(not group for group in groups):
        return BanksResult([], 0)
    dists: List[Dict[TupleId, float]] = [dict() for _ in range(g)]
    parents: List[Dict[TupleId, Optional[TupleId]]] = [dict() for _ in range(g)]
    settled: List[Set[TupleId]] = [set() for _ in range(g)]
    heap: List[Tuple[float, float, int, TupleId]] = []
    for i, group in enumerate(groups):
        for node in group:
            if node in graph:
                dists[i][node] = 0.0
                parents[i][node] = None
                heapq.heappush(heap, (priority(0.0, i, node), 0.0, i, node))
    nodes_expanded = 0
    confirmed: Dict[TupleId, float] = {}

    try:
        nodes_expanded = _expand_loop(
            graph, groups, k, priority, budget, dists, parents, settled, heap, confirmed
        )
    except BudgetExceededError:
        # Out of budget: fall through with whatever roots are confirmed
        # so far (the engine flags the result set as degraded).
        nodes_expanded = budget.nodes_expanded if budget is not None else 0

    roots = sorted(confirmed.items(), key=lambda item: (item[1], item[0]))[:k]
    trees = [_result_tree(graph, root, parents, dists) for root, _ in roots]
    if span is not None:
        span.add("nodes_expanded", nodes_expanded)
        span.add("roots_confirmed", len(confirmed))
    return BanksResult(trees, nodes_expanded)


def _expand_loop(
    graph: DataGraph,
    groups: Sequence[Sequence[TupleId]],
    k: int,
    priority: Callable[[float, int, TupleId], float],
    budget: Optional[QueryBudget],
    dists: List[Dict[TupleId, float]],
    parents: List[Dict[TupleId, Optional[TupleId]]],
    settled: List[Set[TupleId]],
    heap: List[Tuple[float, float, int, TupleId]],
    confirmed: Dict[TupleId, float],
) -> int:
    g = len(groups)
    nodes_expanded = 0
    while heap:
        prio, dist, i, node = heapq.heappop(heap)
        if node in settled[i]:
            continue
        settled[i].add(node)
        nodes_expanded += 1
        if budget is not None:
            budget.tick_nodes()
        if all(node in s for s in settled):
            confirmed[node] = sum(d[node] for d in dists)
        # Termination: k confirmed roots whose cost beats the optimistic
        # bound for any unconfirmed root (sum of current frontier minima).
        if len(confirmed) >= k:
            bound = 0.0
            remaining_min = [INF] * g
            for _, d2, gi, n2 in heap:
                if n2 not in settled[gi] and d2 < remaining_min[gi]:
                    remaining_min[gi] = d2
            bound = sum(m if m < INF else 0.0 for m in remaining_min)
            kth = sorted(confirmed.values())[k - 1]
            if kth <= bound:
                break
        for nbr, w in graph.neighbors(node):
            nd = dist + w
            if nd < dists[i].get(nbr, INF):
                dists[i][nbr] = nd
                parents[i][nbr] = node
                heapq.heappush(heap, (priority(nd, i, nbr), nd, i, nbr))

    return nodes_expanded


def banks_backward(
    graph: DataGraph,
    groups: Sequence[Sequence[TupleId]],
    k: int = 10,
    budget: Optional[QueryBudget] = None,
    span=None,
) -> BanksResult:
    """BANKS I: equi-distance backward expansion.

    *span* (a tracing span) receives ``nodes_expanded`` /
    ``roots_confirmed`` work counters; the expansion itself is
    untouched.
    """
    return _expand(
        graph, groups, k, priority=lambda d, i, n: d, budget=budget, span=span
    )


def banks_bidirectional(
    graph: DataGraph,
    groups: Sequence[Sequence[TupleId]],
    k: int = 10,
    budget: Optional[QueryBudget] = None,
    span=None,
) -> BanksResult:
    """BANKS II: activation-prioritised expansion (see module docstring)."""
    sizes = [max(1, len(group)) for group in groups]

    def priority(dist: float, i: int, node: TupleId) -> float:
        activation = math.log(2 + sizes[i]) * math.log(2 + graph.degree(node))
        return dist * activation

    return _expand(graph, groups, k, priority=priority, budget=budget, span=span)
