"""Exact group Steiner trees by dynamic programming.

Slide 30: the top-1 result of keyword search under tree semantics is the
minimum-weight tree connecting one instance of each keyword — the group
Steiner tree (GST).  NP-hard in general, but tractable for a fixed
number of keyword groups ℓ (slide 112, Ding+ ICDE 07) via the
Dreyfus–Wagner style DP over group subsets:

    dp[S][v] = weight of the cheapest tree rooted at v covering groups S
    grow:   dp[S][v] -> dp[S][u] + w(u, v)          (Dijkstra relaxation)
    merge:  dp[S1][v] + dp[S2][v] -> dp[S1|S2][v]

Complexity O(3^ℓ·n + 2^ℓ·(n log n + m)): exponential in ℓ only.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.graph.data_graph import DataGraph
from repro.relational.database import TupleId
from repro.resilience.budget import QueryBudget
from repro.resilience.errors import BudgetExceededError

INF = float("inf")


@dataclass
class SteinerTree:
    """An answer tree: root, edges and total weight."""

    root: TupleId
    edges: List[Tuple[TupleId, TupleId]]
    weight: float

    @property
    def nodes(self) -> Set[TupleId]:
        out = {self.root}
        for u, v in self.edges:
            out.add(u)
            out.add(v)
        return out

    def size(self) -> int:
        return len(self.nodes)


def tree_weight(graph: DataGraph, edges: Sequence[Tuple[TupleId, TupleId]]) -> float:
    total = 0.0
    for u, v in edges:
        w = graph.edge_weight(u, v)
        if w is None:
            raise ValueError(f"({u}, {v}) is not an edge")
        total += w
    return total


def group_steiner_dp(
    graph: DataGraph,
    groups: Sequence[Sequence[TupleId]],
    max_groups: int = 10,
    budget: Optional[QueryBudget] = None,
    span=None,
) -> Optional[SteinerTree]:
    """Minimum-weight group Steiner tree, or None if no tree connects all.

    *groups* are the keyword match sets; a tree must touch at least one
    node from each group.  Raises for more than *max_groups* groups (the
    DP is exponential in the group count).  An exhausted *budget* stops
    the DP early and returns the best tree covering all groups found so
    far (None if no mask reached full coverage yet); the budget's
    ``exhausted`` flag tells the caller the answer may be suboptimal.

    *span* (a tracing span, see :mod:`repro.obs.trace`) receives the
    DP's work counters — ``nodes_settled`` and ``masks`` — without
    altering the computation in any way.
    """
    g = len(groups)
    if g == 0:
        return None
    if g > max_groups:
        raise ValueError(f"too many groups for exact DP ({g} > {max_groups})")
    if any(not group for group in groups):
        return None

    full = (1 << g) - 1
    # dp[mask][node] = best weight; parent pointers for reconstruction.
    dp: List[Dict[TupleId, float]] = [{} for _ in range(full + 1)]
    # back[mask][node] = ("edge", u) or ("merge", m1, m2)
    back: List[Dict[TupleId, Tuple]] = [{} for _ in range(full + 1)]

    for i, group in enumerate(groups):
        mask = 1 << i
        for node in group:
            if node in graph and dp[mask].get(node, INF) > 0.0:
                dp[mask][node] = 0.0
                back[mask][node] = ("leaf",)

    nodes_settled = 0
    masks_done = 0
    try:
        for mask in range(1, full + 1):
            # Merge: combine proper submasks at the same root.
            sub = (mask - 1) & mask
            while sub:
                other = mask ^ sub
                if sub < other:  # each unordered pair once
                    for node, w1 in dp[sub].items():
                        w2 = dp[other].get(node)
                        if w2 is None:
                            continue
                        if w1 + w2 < dp[mask].get(node, INF):
                            dp[mask][node] = w1 + w2
                            back[mask][node] = ("merge", sub, other)
                sub = (sub - 1) & mask
            # Grow: Dijkstra over dp[mask].
            heap = [(w, n) for n, w in dp[mask].items()]
            heapq.heapify(heap)
            settled: Set[TupleId] = set()
            while heap:
                w, node = heapq.heappop(heap)
                if node in settled or w > dp[mask].get(node, INF):
                    continue
                settled.add(node)
                if budget is not None:
                    budget.tick_nodes()
                for nbr, edge_w in graph.neighbors(node):
                    nw = w + edge_w
                    if nw < dp[mask].get(nbr, INF):
                        dp[mask][nbr] = nw
                        back[mask][nbr] = ("edge", node)
                        heapq.heappush(heap, (nw, nbr))
            nodes_settled += len(settled)
            masks_done += 1
    except BudgetExceededError:
        # Out of budget mid-DP: fall through and reconstruct from
        # whatever full-coverage entries exist (possibly none).
        pass

    if span is not None:
        span.add("nodes_settled", nodes_settled)
        span.add("masks", masks_done)
    if not dp[full]:
        return None
    root = min(dp[full], key=lambda n: (dp[full][n], n))
    edges: List[Tuple[TupleId, TupleId]] = []
    _reconstruct(full, root, back, edges)
    return SteinerTree(root=root, edges=edges, weight=dp[full][root])


def _reconstruct(
    mask: int,
    node: TupleId,
    back: List[Dict[TupleId, Tuple]],
    edges: List[Tuple[TupleId, TupleId]],
) -> None:
    entry = back[mask].get(node)
    if entry is None or entry[0] == "leaf":
        return
    if entry[0] == "edge":
        parent = entry[1]
        edges.append((parent, node))
        _reconstruct(mask, parent, back, edges)
    else:
        __, sub, other = entry
        _reconstruct(sub, node, back, edges)
        _reconstruct(other, node, back, edges)
