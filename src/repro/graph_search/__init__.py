"""Graph-based keyword search (tutorial slides 29-31, 113-114, 121-128).

Data modeled as a tuple graph; answers are small connecting structures:

* exact group Steiner trees by dynamic programming (Ding+ ICDE 07),
* BANKS I backward expansion and BANKS II frontier-prioritised
  expansion (Bhalotia+ ICDE 02, Kacholia+ VLDB 05),
* STAR-style local-improvement approximation (Kasneci+ ICDE 09),
* distinct-root and distinct-core semantics (He+ SIGMOD 07, Qin+ ICDE 09),
* EASE r-radius Steiner subgraphs (Li+ SIGMOD 08),
* BLINKS-style TA search over keyword-distance lists (He+ SIGMOD 07).
"""

from repro.graph_search.steiner import (
    SteinerTree,
    group_steiner_dp,
    tree_weight,
)
from repro.graph_search.banks import (
    BanksResult,
    banks_backward,
    banks_bidirectional,
)
from repro.graph_search.star import star_approximation
from repro.graph_search.mip import steiner_milp, steiner_milp_rooted
from repro.graph_search.semantics import (
    distinct_root_results,
    distinct_core_results,
)
from repro.graph_search.ease import r_radius_steiner_graphs
from repro.graph_search.blinks import blinks_topk

__all__ = [
    "SteinerTree",
    "group_steiner_dp",
    "tree_weight",
    "BanksResult",
    "banks_backward",
    "banks_bidirectional",
    "star_approximation",
    "steiner_milp",
    "steiner_milp_rooted",
    "distinct_root_results",
    "distinct_core_results",
    "r_radius_steiner_graphs",
    "blinks_topk",
]
