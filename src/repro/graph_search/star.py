"""STAR-style Steiner tree approximation (Kasneci et al., ICDE 09).

Slide 113: STAR builds a quick initial tree and then iteratively
improves it by replacing "loose paths" — tree paths between two
*fixpoints* (terminals or branching nodes) — with cheaper graph paths,
achieving an O(log n) approximation that empirically beats other
heuristics.  We implement the same two phases:

1. initial tree: union of shortest paths from the best distinct-root
   candidate to one closest match of each group;
2. improvement loop: repeatedly take the heaviest loose path and ask the
   graph for a cheaper replacement that keeps the tree connected and
   spanning; stop at a fixpoint.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.graph.data_graph import DataGraph
from repro.graph_search.steiner import SteinerTree
from repro.relational.database import TupleId

INF = float("inf")


def _multi_source_dijkstra(
    graph: DataGraph, sources: Sequence[TupleId]
) -> Tuple[Dict[TupleId, float], Dict[TupleId, Optional[TupleId]]]:
    dist: Dict[TupleId, float] = {}
    parent: Dict[TupleId, Optional[TupleId]] = {}
    heap: List[Tuple[float, TupleId]] = []
    for s in sources:
        if s in graph:
            dist[s] = 0.0
            parent[s] = None
            heapq.heappush(heap, (0.0, s))
    settled: Set[TupleId] = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        for nbr, w in graph.neighbors(node):
            nd = d + w
            if nd < dist.get(nbr, INF):
                dist[nbr] = nd
                parent[nbr] = node
                heapq.heappush(heap, (nd, nbr))
    return dist, parent


def _initial_tree(
    graph: DataGraph, groups: Sequence[Sequence[TupleId]]
) -> Optional[Tuple[TupleId, Set[Tuple[TupleId, TupleId]], List[TupleId]]]:
    """Best distinct-root tree: root minimising summed group distance."""
    per_group = [_multi_source_dijkstra(graph, group) for group in groups]
    best_root = None
    best_cost = INF
    for node in graph.nodes:
        cost = 0.0
        for dist, _ in per_group:
            d = dist.get(node)
            if d is None:
                cost = INF
                break
            cost += d
        if cost < best_cost:
            best_cost = cost
            best_root = node
    if best_root is None:
        return None
    edges: Set[Tuple[TupleId, TupleId]] = set()
    terminals: List[TupleId] = [best_root]
    for dist, parent in per_group:
        node = best_root
        while parent.get(node) is not None:
            prev = parent[node]
            edges.add((min(node, prev), max(node, prev)))
            node = prev
        terminals.append(node)  # the group member the path ends at
    return best_root, edges, terminals


def _loose_paths(
    edges: Set[Tuple[TupleId, TupleId]], terminals: Set[TupleId]
) -> List[List[TupleId]]:
    """Maximal tree paths whose interior nodes have degree 2 and are
    not terminals (the replaceable segments)."""
    adj: Dict[TupleId, List[TupleId]] = {}
    for u, v in edges:
        adj.setdefault(u, []).append(v)
        adj.setdefault(v, []).append(u)
    fixpoints = {
        n for n, nbrs in adj.items() if len(nbrs) != 2 or n in terminals
    }
    paths: List[List[TupleId]] = []
    visited_edges: Set[Tuple[TupleId, TupleId]] = set()
    for start in fixpoints:
        for nbr in adj[start]:
            edge = (min(start, nbr), max(start, nbr))
            if edge in visited_edges:
                continue
            path = [start, nbr]
            visited_edges.add(edge)
            while path[-1] not in fixpoints:
                current = path[-1]
                nxt = next(n for n in adj[current] if n != path[-2])
                visited_edges.add((min(current, nxt), max(current, nxt)))
                path.append(nxt)
            paths.append(path)
    return paths


def _path_weight(graph: DataGraph, path: List[TupleId]) -> float:
    return sum(
        graph.edge_weight(path[i], path[i + 1]) or 0.0
        for i in range(len(path) - 1)
    )


def star_approximation(
    graph: DataGraph,
    groups: Sequence[Sequence[TupleId]],
    max_iterations: int = 50,
) -> Optional[SteinerTree]:
    """STAR: initial distinct-root tree + loose-path improvement."""
    if not groups or any(not g for g in groups):
        return None
    init = _initial_tree(graph, groups)
    if init is None:
        return None
    root, edges, terminal_list = init
    terminals = set(terminal_list)
    for _ in range(max_iterations):
        paths = _loose_paths(edges, terminals)
        if not paths:
            break
        paths.sort(key=lambda p: -_path_weight(graph, p))
        improved = False
        for path in paths:
            a, b = path[0], path[-1]
            current_weight = _path_weight(graph, path)
            # Cheapest a-b path through the graph avoiding the rest of
            # the tree's interior (so the result stays a tree).
            interior = set(path[1:-1])
            tree_nodes = set()
            for u, v in edges:
                tree_nodes.add(u)
                tree_nodes.add(v)
            forbidden = (tree_nodes - interior) - {a, b}
            replacement = _restricted_shortest_path(graph, a, b, forbidden)
            if replacement is None:
                continue
            new_weight = _path_weight(graph, replacement)
            if new_weight + 1e-12 < current_weight:
                for i in range(len(path) - 1):
                    edges.discard(
                        (min(path[i], path[i + 1]), max(path[i], path[i + 1]))
                    )
                for i in range(len(replacement) - 1):
                    u, v = replacement[i], replacement[i + 1]
                    edges.add((min(u, v), max(u, v)))
                improved = True
                break
        if not improved:
            break
    weight = sum(graph.edge_weight(u, v) or 0.0 for u, v in edges)
    return SteinerTree(root=root, edges=sorted(edges), weight=weight)


def _restricted_shortest_path(
    graph: DataGraph,
    source: TupleId,
    target: TupleId,
    forbidden: Set[TupleId],
) -> Optional[List[TupleId]]:
    dist: Dict[TupleId, float] = {source: 0.0}
    parent: Dict[TupleId, TupleId] = {}
    heap: List[Tuple[float, TupleId]] = [(0.0, source)]
    settled: Set[TupleId] = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            path = [target]
            while path[-1] != source:
                path.append(parent[path[-1]])
            path.reverse()
            return path
        for nbr, w in graph.neighbors(node):
            if nbr in forbidden and nbr != target:
                continue
            nd = d + w
            if nd < dist.get(nbr, INF):
                dist[nbr] = nd
                parent[nbr] = node
                heapq.heappush(heap, (nd, nbr))
    return None
