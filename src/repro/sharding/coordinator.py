"""The sharded scatter-gather coordinator.

:class:`ShardedSearchEngine` fronts one :class:`Database` partitioned
into N shards (:mod:`repro.sharding.partition`).  A query is parsed and
cleaned **once**; then:

* ``schema`` / ``index_only`` **scatter**: CN enumeration runs once at
  the coordinator over the shared substrates, per-CN execution plans
  (:class:`~repro.schema_search.topk.CNExecutorPlan`) are built once,
  and every shard evaluates its home slice of each CN's anchor queue on
  the shared thread pool, pruning against the streaming global k-th
  score (:mod:`repro.sharding.scatter`).  The gathered top-k is
  byte-identical to the single-engine answer.
* graph methods (``banks``, ``banks2``, ``steiner``, ``distinct_root``,
  ``ease``) **route**: tree answers are not partition-local under
  bounded replication (the EMBANKS/Mragyati tradeoff), so the query
  runs whole on a shard worker slot against the shared data graph,
  with circuit-breaker failover across shards.  With
  ``selection_routing=True`` the order of shards tried comes from the
  keyword-relationship source-selection scorer
  (:mod:`repro.distributed.selection`) over per-shard summaries.

Per-shard fault isolation reuses the resilience layer: each shard gets
its own :class:`QueryBudget` and :class:`CircuitBreaker`, and the
``shard.execute`` failpoint kills a single shard deterministically —
the merged :class:`ResultSet` comes back ``degraded`` (never an
exception or a hang) with the failure visible in the
``scatter → shard[i] → gather`` span tree.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import KeywordSearchEngine
from repro.core.query import Query
from repro.core.results import ResultSet, SearchResult
from repro.distributed.selection import DatabaseSummary, rank_databases
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, span as trace_span
from repro.perf.lru import LRUCache
from repro.relational.database import Database, TupleId
from repro.relational.executor import JoinStats
from repro.resilience.budget import make_budget
from repro.resilience.circuit import CircuitBreaker
from repro.resilience.degradation import KNOWN_METHODS
from repro.resilience.errors import QueryParseError
from repro.resilience.failpoints import fail_point
from repro.schema_search.candidate_networks import generate_candidate_networks
from repro.schema_search.topk import CNExecutorPlan
from repro.sharding.partition import Shard, build_shards, make_partitioner
from repro.sharding.scatter import (
    GlobalTopK,
    ShardRunStats,
    scatter_index_only,
    scatter_schema,
)

#: Methods whose evaluation is scattered across shard anchor slices;
#: the remaining KNOWN_METHODS are routed to one shard worker.
SCATTER_METHODS = ("schema", "index_only")


@dataclass
class _ShardOutcome:
    """One shard's contribution to one query."""

    shard_id: int
    payload: object = None
    error: Optional[BaseException] = None
    skipped: bool = False
    latency_ms: float = 0.0
    trace_root: object = None

    @property
    def reason(self) -> Optional[str]:
        if self.skipped:
            return f"shard {self.shard_id}: circuit open"
        if self.error is not None:
            return (
                f"shard {self.shard_id}: "
                f"{type(self.error).__name__}: {self.error}"
            )
        run = self.payload if isinstance(self.payload, ShardRunStats) else None
        if run is not None and run.exhausted:
            return f"shard {self.shard_id}: {run.reason}"
        return None


class ShardedSearchEngine:
    """Scatter-gather keyword search over a partitioned database."""

    def __init__(
        self,
        db: Database,
        n_shards: int = 4,
        partitioner="hash",
        max_cn_size: int = 4,
        clean_queries: bool = True,
        result_cache_size: int = 256,
        enable_caches: bool = True,
        selection_routing: bool = False,
        trace: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        max_workers: Optional[int] = None,
        shard_failure_threshold: int = 3,
        shard_reset_timeout_s: float = 30.0,
        backend: str = "dict",
        backend_options: Optional[Dict[str, object]] = None,
    ):
        self.db = db
        self.max_cn_size = max_cn_size
        self.enable_caches = enable_caches
        self.selection_routing = selection_routing
        self.trace_enabled = trace
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.backend_name = backend
        self.backend_options = dict(backend_options) if backend_options else None
        #: The coordinator-side engine: owns the shared substrates
        #: (index, tuple sets, CN memos) that scatter plans read, and
        #: executes routed graph methods.  Incremental refresh stays on
        #: so inserts patch rather than rebuild.
        self.engine = KeywordSearchEngine(
            db,
            max_cn_size=max_cn_size,
            clean_queries=clean_queries,
            enable_caches=enable_caches,
            metrics=self.metrics,
            backend=backend,
            backend_options=self.backend_options,
        )
        self.shards = build_shards(db, make_partitioner(partitioner, n_shards))
        for shard in self.shards.shards:
            shard.backend = backend
            shard.backend_options = self._shard_backend_options(shard.shard_id)
        self._breakers: List[CircuitBreaker] = [
            CircuitBreaker(
                failure_threshold=shard_failure_threshold,
                reset_timeout_s=shard_reset_timeout_s,
                on_transition=self._on_shard_transition,
            )
            for _ in self.shards
        ]
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers or len(self.shards),
            thread_name_prefix="shard",
        )
        self._result_cache = LRUCache(result_cache_size)
        self._summary_cache = LRUCache(32)
        self._row_marks: Dict[str, int] = {
            name: len(table) for name, table in db.tables.items()
        }
        self._served_version = db.data_version
        self._rr = 0
        self.metrics.register_gauge("shard.count", lambda: len(self.shards))
        self.metrics.register_gauge(
            "shard.cut_edges", lambda: self.shards.cut_edges
        )
        for i, breaker in enumerate(self._breakers):
            self.metrics.register_gauge(
                f"shard.circuit.state.{i}", lambda b=breaker: b.state
            )
            self.metrics.register_gauge(
                f"shard.circuit.time_in_state_s.{i}",
                lambda b=breaker: round(b.time_in_state_s(), 3),
            )

    def _shard_backend_options(
        self, shard_id: int
    ) -> Optional[Dict[str, object]]:
        """Per-shard backend options: disk segments must not collide."""
        if not self.backend_options:
            return None
        options = dict(self.backend_options)
        path = options.get("path")
        if isinstance(path, str):
            options["path"] = f"{path}.shard{shard_id}"
        return options

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._pool.shutdown(wait=False)

    def __enter__(self) -> "ShardedSearchEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _on_shard_transition(self, old_state: str, new_state: str) -> None:
        self.metrics.inc(f"shard.circuit.transitions.{new_state}")

    def shard_stats(self) -> Dict[str, object]:
        """Partition-quality numbers (balance, replicas, cut edges)."""
        return self.shards.stats()

    def parse(self, text: str, tracer: Optional[Tracer] = None) -> Query:
        """Coordinator-side parse + clean (runs once, never per shard)."""
        return self.engine.parse(text, tracer=tracer)

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def refresh(self) -> int:
        """Route rows inserted into the source database to their shards.

        Each new row is copied to its home shard plus — per the
        radius-1 boundary-replica rule — every shard owning one of its
        FK neighbours; its off-shard neighbours are replicated back
        into the home shard.  No other shard is touched, and the
        coordinator engine patches its own substrates incrementally, so
        a single-row insert stays O(neighbourhood), not O(database).
        Returns the number of shard-row copies made.
        """
        if self.db.data_version == self._served_version:
            return 0
        routed = 0
        for name, table in self.db.tables.items():
            start = self._row_marks.get(name, 0)
            for rowid in range(start, len(table)):
                tid = TupleId(name, rowid)
                home = self.shards.home(tid)
                neighbors = self.db.neighbors(tid)
                targets = {home}
                targets.update(
                    self.shards.home(nb)
                    for nb in neighbors
                    if self.shards.home(nb) != home
                )
                for sid in targets:
                    if self.shards.shards[sid].add_row(
                        tid, is_home=(sid == home)
                    ):
                        routed += 1
                home_shard = self.shards.shards[home]
                for nb in neighbors:
                    if self.shards.home(nb) != home and home_shard.add_row(
                        nb, is_home=False
                    ):
                        routed += 1
            self._row_marks[name] = len(table)
        self._served_version = self.db.data_version
        self._result_cache.clear()
        self._summary_cache.clear()
        self.metrics.inc("refresh.rows_routed", routed)
        return routed

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        text: str,
        k: int = 10,
        method: str = "schema",
        use_cache: bool = True,
        timeout_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
        fallback: bool = False,
        trace: Optional[bool] = None,
    ) -> ResultSet:
        """Top-k search with the single-engine contract.

        Results are byte-identical to
        ``KeywordSearchEngine(db).search(...)`` for every method:
        scattered methods by the anchor-partition + strict-threshold
        pruning argument, routed methods by construction.  The
        resilience and tracing knobs mirror the single engine's;
        budgets (``timeout_ms`` / ``max_expansions``) apply **per
        shard**, and any shard failure, skip or exhaustion marks the
        merged result set ``degraded`` instead of failing the query.
        ``fallback=True`` descends the single-node degradation ladder
        (scale-out does not help a query that exhausts its budget).

        The fielded DSL works here too: bare keyword queries take the
        legacy byte-identical paths, structured ones are compiled once
        at the coordinator and either scattered with filtered plans
        (single-branch ``schema`` / ``index_only``) or routed whole to
        a shard worker slot.
        """
        self.refresh()
        if method not in KNOWN_METHODS:
            raise QueryParseError(
                f"unknown method {method!r} (choices: {', '.join(KNOWN_METHODS)})"
            )
        return self._search_impl(
            self.engine._parse_canonical(text),
            k,
            method,
            use_cache,
            timeout_ms,
            max_expansions,
            fallback,
            trace,
        )

    def search_structured(
        self,
        query,
        k: int = 10,
        method: str = "schema",
        use_cache: bool = True,
        timeout_ms: Optional[float] = None,
        max_expansions: Optional[int] = None,
        fallback: bool = False,
        trace: Optional[bool] = None,
    ) -> ResultSet:
        """Search from an already-parsed :class:`StructuredQuery`."""
        self.refresh()
        if method not in KNOWN_METHODS:
            raise QueryParseError(
                f"unknown method {method!r} (choices: {', '.join(KNOWN_METHODS)})"
            )
        return self._search_impl(
            query, k, method, use_cache, timeout_ms, max_expansions, fallback, trace
        )

    def _search_impl(
        self,
        query,
        k: int,
        method: str,
        use_cache: bool,
        timeout_ms: Optional[float],
        max_expansions: Optional[int],
        fallback: bool,
        trace: Optional[bool],
    ) -> ResultSet:
        budgeted = timeout_ms is not None or max_expansions is not None
        tracing = self.trace_enabled if trace is None else trace
        tracer = Tracer() if tracing else None
        self.metrics.inc("shard_query.count")
        start_s = time.perf_counter()
        with trace_span(tracer, "search") as root:
            root.tag("method", method).tag("k", k).tag(
                "shards", len(self.shards)
            )
            if fallback:
                with trace_span(tracer, "cache_lookup") as csp:
                    csp.tag("outcome", "bypass")
                results = self.engine.search_structured(
                    query,
                    k=k,
                    method=method,
                    use_cache=False,
                    timeout_ms=timeout_ms,
                    max_expansions=max_expansions,
                    fallback=True,
                    trace=False,
                )
            elif budgeted or not (use_cache and self.enable_caches):
                with trace_span(tracer, "cache_lookup") as csp:
                    csp.tag("outcome", "bypass")
                results = self._run(
                    query, k, method, timeout_ms, max_expansions, tracer
                )
            else:
                results = self._serve_cached(query, k, method, tracer)
        self.metrics.observe(
            "shard_query.latency_ms", (time.perf_counter() - start_s) * 1000.0
        )
        if results.degraded:
            self.metrics.inc("shard_query.degraded")
        if tracer is not None:
            results.trace = tracer.finish()
        return results

    def _query_key(self, query_or_text, method: str, k: int) -> Tuple:
        """Single-engine canonical key + the shard-configuration token.

        Keys on the post-parse, post-clean :class:`StructuredQuery`
        (same invariant as the single engine), so texts that clean to
        the same canonical query share one cache entry.
        """
        if isinstance(query_or_text, str):
            query_or_text = self.engine._parse_canonical(query_or_text)
        return (query_or_text.cache_key(), method, k, self.shards.token)

    def _serve_cached(
        self, query, k: int, method: str, tracer: Optional[Tracer]
    ) -> ResultSet:
        key = self._query_key(query, method, k)
        cache = self._result_cache
        with trace_span(tracer, "cache_lookup") as csp:
            cached = cache.get(key)
            csp.tag("outcome", "hit" if cached is not None else "miss")
        if cached is not None:
            self.metrics.inc("shard_query.cache_hits")
            return cached.clone()
        results = self._run(query, k, method, None, None, tracer)
        if not results.degraded:
            # A degraded merge (dead shard, open breaker) must not be
            # pinned: the next query should retry the full scatter.
            cache.put(key, results)
        return results.clone()

    def _run(
        self,
        query,
        k: int,
        method: str,
        timeout_ms: Optional[float],
        max_expansions: Optional[int],
        tracer: Optional[Tracer],
    ) -> ResultSet:
        if query.is_empty:
            return ResultSet(method=method)
        if not query.is_bare:
            return self._run_structured(
                query, k, method, timeout_ms, max_expansions, tracer
            )
        # Bare keywords: re-enter the legacy flow (parse + clean spans,
        # byte-identical scatter/route paths).
        legacy = self.engine.parse(query.raw, tracer=tracer)
        if not legacy.keywords:
            return ResultSet(method=method)
        if method == "schema":
            return self._scatter_schema(
                list(legacy.keywords), k, timeout_ms, max_expansions, tracer
            )
        if method == "index_only":
            return self._scatter_index_only(
                list(legacy.keywords), k, timeout_ms, max_expansions, tracer
            )
        return self._routed(
            query.raw, legacy, k, method, timeout_ms, max_expansions, tracer
        )

    def _run_structured(
        self,
        query,
        k: int,
        method: str,
        timeout_ms: Optional[float],
        max_expansions: Optional[int],
        tracer: Optional[Tracer],
    ) -> ResultSet:
        """Structured execution: scatter filtered plans or route whole.

        Single-branch, phrase-free ``schema`` / ``index_only`` queries
        scatter — the compiled row filter rides to the shards inside
        the plans (filtered tuple sets) or the ownership callable, and
        the gather applies the same merge rule as the single engine.
        OR-branches and phrase constraints post-filter top-k streams,
        which would under-fill a scattered global k, so those queries
        run whole on a shard worker slot instead.
        """
        from repro.query.compiler import compile_query, predicate_only_results

        with trace_span(tracer, "compile") as csp:
            compiled = compile_query(self.engine, query)
            csp.add("branches", len(compiled.branches))
            csp.tag("filtered", compiled.row_filter is not None)
        if not compiled.branches:
            with trace_span(tracer, "gather"):
                return ResultSet(
                    predicate_only_results(self.engine, compiled, k),
                    method=method,
                )
        scatterable = (
            method in SCATTER_METHODS
            and len(compiled.branches) == 1
            and not query.phrases
        )
        if scatterable:
            keywords = list(compiled.branches[0])
            if method == "schema":
                return self._scatter_schema(
                    keywords, k, timeout_ms, max_expansions, tracer,
                    compiled=compiled,
                )
            return self._scatter_index_only(
                keywords, k, timeout_ms, max_expansions, tracer,
                compiled=compiled,
            )
        return self._routed_structured(
            query, compiled, k, method, timeout_ms, max_expansions, tracer
        )

    # ------------------------------------------------------------------
    # Scattered methods
    # ------------------------------------------------------------------
    def _scatter_schema(
        self,
        keywords: List[str],
        k: int,
        timeout_ms: Optional[float],
        max_expansions: Optional[int],
        tracer: Optional[Tracer],
        compiled=None,
    ) -> ResultSet:
        coord_budget = make_budget(timeout_ms, max_expansions)
        with trace_span(tracer, "plan") as psp:
            if compiled is not None:
                from repro.query.compiler import structured_substrates

                tuple_sets, cns, index = structured_substrates(
                    self.engine, compiled, keywords, budget=coord_budget
                )
            else:
                tuple_sets = self.engine.substrates.tuple_sets(keywords)
                if coord_budget is None:
                    cns = self.engine.substrates.candidate_networks(
                        keywords, self.max_cn_size
                    )
                else:
                    cns = generate_candidate_networks(
                        self.engine.schema_graph,
                        tuple_sets,
                        max_size=self.max_cn_size,
                        budget=coord_budget,
                    )
                index = self.engine.index
            plans = [
                CNExecutorPlan(cn, tuple_sets, index, keywords) for cn in cns
            ]
            labels = [cn.label() for cn in cns]
            psp.add("cns", len(cns))
        reasons: List[str] = []
        if coord_budget is not None and coord_budget.exhausted:
            reasons.append(f"coordinator: {coord_budget.reason}")
        results: List[SearchResult] = []
        if cns:
            gtopk = GlobalTopK(k)

            def fn(shard: Shard, budget, sp):
                run = scatter_schema(
                    shard.shard_id,
                    shard.owns,
                    plans,
                    labels,
                    tuple_sets,
                    index,
                    keywords,
                    gtopk,
                    budget,
                )
                sp.add("cns", run.cns).add("evaluated", run.evaluated).add(
                    "pruned", run.pruned
                )
                return run

            outcomes = self._scatter(fn, timeout_ms, max_expansions, tracer)
            merged = JoinStats()
            for outcome in outcomes:
                reason = outcome.reason
                if reason is not None:
                    reasons.append(reason)
                run = outcome.payload
                if isinstance(run, ShardRunStats):
                    merged.merge(run.join_stats)
                    self.metrics.inc("shard.evaluated", run.evaluated)
                    self.metrics.inc("shard.pruned", run.pruned)
            self.engine._record_sharing(merged)
            with trace_span(tracer, "gather") as gsp:
                results = [
                    SearchResult(score=score, network=label, joined=joined)
                    for score, label, joined in gtopk.sorted_results()
                ]
                if compiled is not None:
                    from repro.query.compiler import merge_branch_results

                    results = merge_branch_results(results, compiled, k)
                gsp.add("results", len(results)).add("offers", gtopk.offers)
        return ResultSet(
            results,
            method="schema",
            degraded=bool(reasons),
            degraded_reason="; ".join(reasons) or None,
        )

    def _scatter_index_only(
        self,
        keywords: List[str],
        k: int,
        timeout_ms: Optional[float],
        max_expansions: Optional[int],
        tracer: Optional[Tracer],
        compiled=None,
    ) -> ResultSet:
        with trace_span(tracer, "plan"):
            if compiled is not None:
                index = compiled.index_view(self.engine.index)
                row_filter = compiled.row_filter
            else:
                index = self.engine.index
                row_filter = None
        scored: Dict[TupleId, float] = {}

        def fn(shard: Shard, budget, sp):
            owns = shard.owns
            if row_filter is not None:
                allows = row_filter.allows
                base_owns = shard.owns
                owns = lambda tid: base_owns(tid) and allows(tid)
            run, shard_scored = scatter_index_only(
                shard.shard_id, owns, index, keywords, budget
            )
            sp.add("evaluated", run.evaluated)
            return run, shard_scored

        outcomes = self._scatter(fn, timeout_ms, max_expansions, tracer)
        reasons = []
        for outcome in outcomes:
            if outcome.reason is not None:
                reasons.append(outcome.reason)
            if outcome.payload is not None:
                run, shard_scored = outcome.payload
                self.metrics.inc("shard.evaluated", run.evaluated)
                scored.update(shard_scored)
        with trace_span(tracer, "gather") as gsp:
            top = sorted(scored.items(), key=lambda item: (-item[1], item[0]))[:k]
            results = [
                SearchResult(
                    score=score,
                    network=f"index-only({tid.table})",
                    joined=self.engine._tree_to_joined({tid}),
                )
                for tid, score in top
            ]
            if compiled is not None:
                from repro.query.compiler import merge_branch_results

                results = merge_branch_results(results, compiled, k)
            gsp.add("results", len(results))
        return ResultSet(
            results,
            method="index_only",
            degraded=bool(reasons),
            degraded_reason="; ".join(reasons) or None,
        )

    def _scatter(
        self,
        fn,
        timeout_ms: Optional[float],
        max_expansions: Optional[int],
        tracer: Optional[Tracer],
    ) -> List[_ShardOutcome]:
        """Run *fn* on every shard concurrently with fault isolation."""
        tracing = tracer is not None
        with trace_span(tracer, "scatter") as ssp:
            futures = [
                self._pool.submit(
                    self._run_shard, shard, fn, timeout_ms, max_expansions, tracing
                )
                for shard in self.shards
            ]
            outcomes = [future.result() for future in futures]
            if tracing:
                for outcome in outcomes:
                    if outcome.trace_root is not None:
                        ssp.children.append(outcome.trace_root)
                ssp.add(
                    "shard_failures",
                    sum(1 for o in outcomes if o.error is not None),
                )
        return outcomes

    def _run_shard(
        self,
        shard: Shard,
        fn,
        timeout_ms: Optional[float],
        max_expansions: Optional[int],
        tracing: bool,
    ) -> _ShardOutcome:
        """One shard worker: breaker, failpoint, budget, span, metrics."""
        outcome = _ShardOutcome(shard.shard_id)
        shard_tracer = Tracer() if tracing else None
        breaker = self._breakers[shard.shard_id]
        start_s = time.perf_counter()
        with trace_span(shard_tracer, f"shard[{shard.shard_id}]") as sp:
            sp.tag("shard", shard.shard_id)
            if not breaker.allow():
                outcome.skipped = True
                sp.tag("skipped", "circuit_open")
                self.metrics.inc("shard.skipped")
            else:
                try:
                    fail_point("shard.execute", key=shard.shard_id)
                    budget = make_budget(timeout_ms, max_expansions)
                    outcome.payload = fn(shard, budget, sp)
                    breaker.record_success()
                except (QueryParseError, ValueError) as exc:
                    # Structural: deterministic for the query, identical
                    # on every shard — not a shard-health signal.
                    outcome.error = exc
                    sp.tag("error", type(exc).__name__)
                except Exception as exc:
                    breaker.record_failure()
                    outcome.error = exc
                    sp.tag("error", type(exc).__name__)
                    self.metrics.inc("shard.failures")
        outcome.latency_ms = (time.perf_counter() - start_s) * 1000.0
        self.metrics.observe("shard.latency_ms", outcome.latency_ms)
        if shard_tracer is not None:
            outcome.trace_root = shard_tracer.finish().root
        return outcome

    # ------------------------------------------------------------------
    # Routed methods
    # ------------------------------------------------------------------
    def _summaries(self, keywords: Sequence[str]) -> List[DatabaseSummary]:
        """Per-shard source-selection summaries over the query terms.

        Restricting the summary vocabulary to the query keywords keeps
        the pairwise join-distance BFS tiny, at the cost of one build
        per new keyword set (memoised).
        """
        key = frozenset(kw.lower() for kw in keywords)
        return self._summary_cache.get_or_compute(
            key,
            lambda: [
                DatabaseSummary.build(
                    f"shard-{shard.shard_id}",
                    shard.db,
                    vocabulary=list(key),
                )
                for shard in self.shards
            ],
        )

    def route_order(self, keywords: Sequence[str]) -> List[int]:
        """Shard try-order for routed methods.

        With ``selection_routing`` the keyword-relationship scorer
        ranks shards by their ability to answer the query jointly
        (connectable keyword matches beat co-occurrence); unrankable
        shards follow in id order as failover targets.  Otherwise a
        round-robin spreads routed load across shard worker slots.
        """
        ids = list(range(len(self.shards)))
        if len(ids) <= 1:
            return ids
        if self.selection_routing:
            ranked = rank_databases(self._summaries(keywords), keywords)
            ranked_ids = [
                int(summary.name.split("-", 1)[1]) for summary, _ in ranked
            ]
            rest = [i for i in ids if i not in ranked_ids]
            return ranked_ids + rest
        start = self._rr % len(ids)
        self._rr += 1
        return ids[start:] + ids[:start]

    def _routed(
        self,
        text: str,
        query: Query,
        k: int,
        method: str,
        timeout_ms: Optional[float],
        max_expansions: Optional[int],
        tracer: Optional[Tracer],
    ) -> ResultSet:
        """Run a graph method on one shard worker, failing over.

        Evaluation uses the coordinator's shared data graph (tree
        answers are not partition-local), so results match the single
        engine exactly; the shard layer contributes slot scheduling,
        fault isolation and selection-based routing.
        """
        return self._route_and_run(
            list(query.keywords),
            lambda budget: self.engine._run_search(
                text, k, method, budget, False, None
            ),
            k,
            method,
            timeout_ms,
            max_expansions,
            tracer,
        )

    def _routed_structured(
        self,
        query,
        compiled,
        k: int,
        method: str,
        timeout_ms: Optional[float],
        max_expansions: Optional[int],
        tracer: Optional[Tracer],
    ) -> ResultSet:
        """Run a structured query whole on one shard worker slot.

        Same failover/selection machinery as :meth:`_routed`; the
        selection scorer ranks shards by the first branch's keywords.
        """
        keywords = list(compiled.branches[0]) if compiled.branches else []
        return self._route_and_run(
            keywords,
            lambda budget: self.engine._run_query(
                query, k, method, budget, False, None
            ),
            k,
            method,
            timeout_ms,
            max_expansions,
            tracer,
        )

    def _route_and_run(
        self,
        keywords: List[str],
        run_inner,
        k: int,
        method: str,
        timeout_ms: Optional[float],
        max_expansions: Optional[int],
        tracer: Optional[Tracer],
    ) -> ResultSet:
        order = self.route_order(keywords)
        reasons: List[str] = []
        with trace_span(tracer, "route") as rsp:
            rsp.tag("order", ",".join(str(i) for i in order))
            for shard_id in order:
                shard = self.shards.shards[shard_id]

                def fn(shard, budget, sp):
                    inner = run_inner(budget)
                    sp.add("results", len(inner))
                    return inner

                outcome = self._run_shard(
                    shard, fn, timeout_ms, max_expansions, tracer is not None
                )
                if tracer is not None and outcome.trace_root is not None:
                    rsp.children.append(outcome.trace_root)
                if outcome.error is not None and isinstance(
                    outcome.error, (QueryParseError, ValueError)
                ):
                    # Structural: identical on every shard, so surface it
                    # exactly like the single engine would.
                    raise outcome.error
                if outcome.reason is not None:
                    reasons.append(outcome.reason)
                    continue
                inner: ResultSet = outcome.payload
                if reasons and not inner.degraded:
                    inner = inner.clone()
                    inner.degraded = True
                    inner.degraded_reason = "; ".join(reasons)
                return inner
        return ResultSet(
            [],
            method=method,
            degraded=True,
            degraded_reason="; ".join(reasons) or "no shard available",
        )
