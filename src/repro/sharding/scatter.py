"""Scatter-gather execution primitives for the sharded engine.

* :class:`GlobalTopK` — the gather side: one lock-guarded
  :class:`~repro.schema_search.topk._TopKHeap` shared by every shard
  worker.  Its ``threshold()`` is the current global k-th score, which
  only ever rises — the monotonically tightening bound the shards
  prune against.
* :func:`scatter_schema` — the per-shard CN evaluation loop: a
  bound-ordered pipeline over this shard's slice of each CN's anchor
  queue that stops (and counts as *pruned*) every anchor slot whose
  score upper bound falls strictly below the threshold.

Why the merged top-k is byte-identical to the single engine's: the
heap retains the exact top-k of the *offered multiset* under the total
order (score desc, content key asc) independent of offer order, shard
anchor slices partition the global anchor queue of each CN, and a
pruned anchor slot's answers score strictly below the threshold at
prune time ≤ the final k-th score (exact comparisons make the
threshold monotone non-decreasing), so none of them can enter the
final heap or win an equal-score key tie-break.  The comparison is
strict (``bound < threshold``): anchor slots whose bound *equals* the
k-th score still run, because an answer tied on score can displace the
current k-th via a smaller content key.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.index.inverted import InvertedIndex
from repro.relational.database import TupleId
from repro.relational.executor import JoinedRow, JoinStats
from repro.resilience.budget import QueryBudget
from repro.resilience.errors import BudgetExceededError
from repro.schema_search.scoring import tuple_score
from repro.schema_search.topk import CNExecutor, CNExecutorPlan, _TopKHeap
from repro.schema_search.tuple_sets import TupleSets


class GlobalTopK:
    """Thread-safe streaming top-k merger with a rising threshold."""

    def __init__(self, k: int):
        self.k = k
        self._heap = _TopKHeap(k)
        self._lock = threading.Lock()
        self.offers = 0

    def offer(self, score: float, label: str, joined: JoinedRow) -> None:
        with self._lock:
            self.offers += 1
            self._heap.offer(score, label, joined)

    def threshold(self) -> float:
        """Current global k-th score (``-inf`` until the heap fills)."""
        with self._lock:
            return self._heap.kth_score()

    def sorted_results(self) -> List[Tuple[float, str, JoinedRow]]:
        with self._lock:
            return self._heap.sorted_results()


@dataclass
class ShardRunStats:
    """What one shard did for one scattered query."""

    shard_id: int
    evaluated: int = 0  # candidate results produced and offered
    pruned: int = 0  # anchor slots skipped via the global threshold
    batches: int = 0
    cns: int = 0  # CNs with a non-empty anchor slice on this shard
    exhausted: bool = False  # per-shard budget ran out
    reason: Optional[str] = None
    join_stats: JoinStats = field(default_factory=JoinStats)


def scatter_schema(
    shard_id: int,
    owns: Callable[[TupleId], bool],
    plans: Sequence[CNExecutorPlan],
    labels: Sequence[str],
    tuple_sets: TupleSets,
    index: InvertedIndex,
    keywords: Sequence[str],
    gtopk: GlobalTopK,
    budget: Optional[QueryBudget] = None,
) -> ShardRunStats:
    """Evaluate this shard's anchor slices against the global threshold.

    Mirrors :func:`~repro.schema_search.topk.topk_global_pipeline`'s
    bound-driven interleaving, except the stop test reads the *global*
    k-th score and is strict (``bound < threshold``, no epsilon), and
    skipped anchor slots are accounted as ``pruned`` instead of
    silently dropped.  Budget exhaustion returns the partial stats with
    ``exhausted`` set — never an exception.
    """
    run = ShardRunStats(shard_id)
    stats = run.join_stats
    pq: List[Tuple[float, int, CNExecutor]] = []
    for i, plan in enumerate(plans):
        executor = CNExecutor(
            plan.cn, tuple_sets, index, keywords, anchor_filter=owns, shared=plan
        )
        if not executor.exhausted():
            run.cns += 1
            heapq.heappush(pq, (-executor.bound(), i, executor))
    try:
        while pq:
            neg_bound, i, executor = heapq.heappop(pq)
            if -neg_bound < gtopk.threshold():
                # Every queued executor's bound is <= this one: all of
                # their remaining anchor slots are provably irrelevant.
                run.pruned += executor.remaining()
                run.pruned += sum(e.remaining() for _, _, e in pq)
                break
            label = labels[i]
            for score, joined in executor.next_batch(stats):
                if budget is not None:
                    budget.tick_candidates()
                gtopk.offer(score, label, joined)
                run.evaluated += 1
            run.batches += 1
            if budget is not None:
                budget.tick_nodes()
            if not executor.exhausted():
                heapq.heappush(pq, (-executor.bound(), i, executor))
    except BudgetExceededError:
        run.exhausted = True
        run.reason = budget.reason if budget is not None else "budget exhausted"
    return run


def scatter_index_only(
    shard_id: int,
    owns: Callable[[TupleId], bool],
    index: InvertedIndex,
    keywords: Sequence[str],
    budget: Optional[QueryBudget] = None,
) -> Tuple[ShardRunStats, Dict[TupleId, float]]:
    """Score this shard's home tuples straight off the global index.

    The home partition makes per-shard score maps disjoint, so the
    coordinator's union equals the single-engine scored map exactly.
    """
    run = ShardRunStats(shard_id)
    scored: Dict[TupleId, float] = {}
    try:
        for keyword in keywords:
            for tid in index.matching_tuples_view(keyword.lower()):
                if tid in scored or not owns(tid):
                    continue
                if budget is not None:
                    budget.tick_candidates()
                scored[tid] = tuple_score(index, tid, keywords)
                run.evaluated += 1
    except BudgetExceededError:
        run.exhausted = True
        run.reason = budget.reason if budget is not None else "budget exhausted"
    return run, scored
