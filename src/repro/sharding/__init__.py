"""Sharded scale-out engine: partitioning, scatter-gather top-k, routing.

Promotes (and subsumes) the :mod:`repro.distributed` demo layer: the
source-selection scorer and cross-database federation re-export from
here, and the :class:`ShardedSearchEngine` coordinator uses the scorer
for selection-based shard routing.
"""

from repro.distributed.kite import CrossDatabase, InterDbLink, cross_search
from repro.distributed.selection import DatabaseSummary, rank_databases
from repro.sharding.coordinator import SCATTER_METHODS, ShardedSearchEngine
from repro.sharding.partition import (
    HashPartitioner,
    SchemaAffinityPartitioner,
    Shard,
    ShardSet,
    build_shards,
    make_partitioner,
)
from repro.sharding.scatter import GlobalTopK, ShardRunStats

__all__ = [
    "ShardedSearchEngine",
    "SCATTER_METHODS",
    "HashPartitioner",
    "SchemaAffinityPartitioner",
    "Shard",
    "ShardSet",
    "build_shards",
    "make_partitioner",
    "GlobalTopK",
    "ShardRunStats",
    "DatabaseSummary",
    "rank_databases",
    "CrossDatabase",
    "InterDbLink",
    "cross_search",
]
