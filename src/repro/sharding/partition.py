"""Database partitioning for the sharded scatter-gather engine.

A partitioner assigns every tuple a *home* shard.  The shard set built
from an assignment gives each shard a sub-:class:`Database` holding its
home tuples plus a radius-1 *boundary replica* set — the tuples one FK
hop away that live on another shard.  The replicas are what keep
shard-local structures (source-selection summaries, per-shard indexes,
maintenance routing) aware of the FK edges the partition cuts; the
scatter path itself partitions *work* by anchor tuple over the
coordinator's shared substrates, so answers that span shards are still
produced exactly once, by the home shard of their anchor tuple (see
``docs/ALGORITHMS.md``).

Two partitioners:

* :class:`HashPartitioner` — ``crc32(table:rowid) % n``.  Uniform and
  stateless, but FK-connected tuples scatter, maximising cut edges.
* :class:`SchemaAffinityPartitioner` — routes each tuple along a
  designated FK chain toward a *root table* (the schema-graph hub) and
  hashes the chain's terminal tuple, so a paper, its ``write`` and
  ``cite`` rows land on one shard and cut edges drop.

Both are deterministic across processes (``zlib.crc32``, never the
randomised ``hash()``), so cache keys and test expectations are stable.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.relational.database import Database, TupleId


def _crc_bucket(table: str, rowid: int, n_shards: int) -> int:
    return zlib.crc32(f"{table}:{rowid}".encode("utf-8")) % n_shards


class HashPartitioner:
    """Uniform hash of the tuple identity."""

    name = "hash"

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards

    def assign(self, db: Database) -> Dict[TupleId, int]:
        return {
            tid: _crc_bucket(tid.table, tid.rowid, self.n_shards)
            for tid in db.all_tuple_ids()
        }

    def assign_one(
        self, db: Database, tid: TupleId, existing: Dict[TupleId, int]
    ) -> int:
        """Home of a tuple inserted after the initial assignment."""
        return _crc_bucket(tid.table, tid.rowid, self.n_shards)

    @property
    def token(self) -> str:
        return f"{self.name}:{self.n_shards}"


class SchemaAffinityPartitioner:
    """Keep FK-connected tuples co-resident.

    Each table gets at most one *routing FK*: the foreign key leading
    to a strictly root-closer table (shortest FK-hop distance to the
    root table; ties broken by column name for determinism).  A tuple's
    home is the home of the row its routing FK references — resolved
    transitively, so entire FK chains hang off one terminal tuple,
    which is hashed.  Tuples with no routing FK (the root table itself,
    tables disconnected from the root, NULL FK values, dangling
    references) fall back to the hash of their own identity.
    """

    name = "affinity"

    def __init__(self, n_shards: int, root_table: Optional[str] = None):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.root_table = root_table
        self._route_cache: Optional[Tuple[str, Dict[str, object]]] = None

    # -- schema analysis -----------------------------------------------
    def _fk_adjacency(self, db: Database) -> Dict[str, Set[str]]:
        adj: Dict[str, Set[str]] = {name: set() for name in db.tables}
        for tbl in db.schema:
            for fk in tbl.foreign_keys:
                adj[tbl.name].add(fk.ref_table)
                adj[fk.ref_table].add(tbl.name)
        return adj

    def _pick_root(self, db: Database, adj: Dict[str, Set[str]]) -> str:
        if self.root_table is not None:
            if self.root_table not in db.tables:
                raise ValueError(f"unknown root table {self.root_table!r}")
            return self.root_table
        # Hub table: most FK edges; name breaks ties deterministically.
        degree: Dict[str, int] = {name: 0 for name in db.tables}
        for tbl in db.schema:
            for fk in tbl.foreign_keys:
                degree[tbl.name] += 1
                degree[fk.ref_table] += 1
        return min(degree, key=lambda name: (-degree[name], name))

    def _routing(self, db: Database) -> Tuple[str, Dict[str, object]]:
        """Root table + per-table routing FK (or None)."""
        adj = self._fk_adjacency(db)
        root = self._pick_root(db, adj)
        # BFS distances from the root over the undirected FK graph.
        dist = {root: 0}
        frontier = [root]
        while frontier:
            nxt: List[str] = []
            for table in frontier:
                for nbr in sorted(adj[table]):
                    if nbr not in dist:
                        dist[nbr] = dist[table] + 1
                        nxt.append(nbr)
            frontier = nxt
        route: Dict[str, object] = {}
        for tbl in db.schema:
            if tbl.name not in dist or tbl.name == root:
                route[tbl.name] = None
                continue
            candidates = [
                fk
                for fk in tbl.foreign_keys
                if dist.get(fk.ref_table, float("inf")) < dist[tbl.name]
            ]
            if not candidates:
                route[tbl.name] = None
                continue
            route[tbl.name] = min(
                candidates, key=lambda fk: (dist[fk.ref_table], fk.column)
            )
        return root, route

    def _follow(
        self,
        db: Database,
        tid: TupleId,
        route: Dict[str, object],
        homes: Dict[TupleId, int],
    ) -> int:
        """Resolve one tuple's home, walking its routing chain."""
        chain: List[TupleId] = []
        current = tid
        while True:
            known = homes.get(current)
            if known is not None:
                home = known
                break
            fk = route.get(current.table)
            if fk is None:
                home = _crc_bucket(current.table, current.rowid, self.n_shards)
                break
            value = db.row(current)[fk.column]
            parent = (
                db.table(fk.ref_table).by_key(value)
                if value is not None
                else None
            )
            if parent is None:
                home = _crc_bucket(current.table, current.rowid, self.n_shards)
                break
            chain.append(current)
            current = TupleId(fk.ref_table, parent.rowid)
        for visited in chain:
            homes[visited] = home
        return home

    def _cached_routing(self, db: Database) -> Tuple[str, Dict[str, object]]:
        if self._route_cache is None:
            self._route_cache = self._routing(db)
        return self._route_cache

    def assign(self, db: Database) -> Dict[TupleId, int]:
        _, route = self._cached_routing(db)
        homes: Dict[TupleId, int] = {}
        for tid in db.all_tuple_ids():
            if tid not in homes:
                homes[tid] = self._follow(db, tid, route, homes)
        return homes

    def assign_one(
        self, db: Database, tid: TupleId, existing: Dict[TupleId, int]
    ) -> int:
        """Home of a late insert; memoises chain hops into *existing*."""
        _, route = self._cached_routing(db)
        return self._follow(db, tid, route, existing)

    @property
    def token(self) -> str:
        suffix = f":{self.root_table}" if self.root_table else ""
        return f"{self.name}:{self.n_shards}{suffix}"


def make_partitioner(spec, n_shards: int):
    """Partitioner from a name (``"hash"`` / ``"affinity"``) or instance."""
    if hasattr(spec, "assign"):
        return spec
    if spec == "hash":
        return HashPartitioner(n_shards)
    if spec == "affinity":
        return SchemaAffinityPartitioner(n_shards)
    raise ValueError(
        f"unknown partitioner {spec!r} (choices: hash, affinity)"
    )


class Shard:
    """One partition: a sub-database of home tuples + boundary replicas.

    ``db`` re-inserts member rows (``check_fk=False`` — a replica's
    parent may live elsewhere) with fresh local rowids; the
    ``local↔global`` maps translate.  ``home`` is the set of *global*
    tuple ids this shard owns; :meth:`owns` is the predicate the
    scatter executors slice anchor queues with.
    """

    def __init__(self, shard_id: int, source: Database):
        self.shard_id = shard_id
        self.source = source
        self.db = Database(source.schema)
        self.home: Set[TupleId] = set()
        self.replicas: Set[TupleId] = set()
        self.local_to_global: Dict[TupleId, TupleId] = {}
        self.global_to_local: Dict[TupleId, TupleId] = {}
        self._engine = None
        #: Storage backend the lazily built shard-local engine uses;
        #: configured by ShardedSearchEngine before first use.
        self.backend = "dict"
        self.backend_options: Optional[Dict[str, object]] = None

    # -- membership ----------------------------------------------------
    def owns(self, tid: TupleId) -> bool:
        return tid in self.home

    def contains(self, tid: TupleId) -> bool:
        return tid in self.global_to_local

    def add_row(self, tid: TupleId, is_home: bool) -> bool:
        """Copy one global row in; returns False if already present."""
        if tid in self.global_to_local:
            if is_home:
                self.home.add(tid)
                self.replicas.discard(tid)
            return False
        row = self.source.row(tid)
        local = self.db.insert(tid.table, check_fk=False, **row.as_dict())
        self.local_to_global[local] = tid
        self.global_to_local[tid] = local
        (self.home if is_home else self.replicas).add(tid)
        return True

    # -- shard-local engine (summaries, routed methods, demos) ---------
    @property
    def engine(self):
        if self._engine is None:
            from repro.core.engine import KeywordSearchEngine

            self._engine = KeywordSearchEngine(
                self.db,
                clean_queries=False,
                backend=self.backend,
                backend_options=self.backend_options,
            )
        return self._engine

    def __repr__(self) -> str:
        return (
            f"Shard({self.shard_id}, home={len(self.home)}, "
            f"replicas={len(self.replicas)})"
        )


class ShardSet:
    """All shards of one database plus the assignment that made them."""

    def __init__(
        self,
        db: Database,
        partitioner,
        shards: List[Shard],
        homes: Dict[TupleId, int],
        cut_edges: int,
        total_edges: int,
    ):
        self.db = db
        self.partitioner = partitioner
        self.shards = shards
        self.homes = homes
        self.cut_edges = cut_edges
        self.total_edges = total_edges

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)

    def home(self, tid: TupleId) -> int:
        shard = self.homes.get(tid)
        if shard is None:
            shard = self.homes[tid] = self.partitioner.assign_one(
                self.db, tid, self.homes
            )
        return shard

    @property
    def token(self) -> str:
        """Shard-configuration component of coordinator cache keys."""
        return self.partitioner.token

    def stats(self) -> Dict[str, object]:
        sizes = [len(s.home) for s in self.shards]
        replicas = sum(len(s.replicas) for s in self.shards)
        total = max(1, self.db.size())
        return {
            "shards": len(self.shards),
            "partitioner": self.partitioner.name,
            "home_sizes": sizes,
            "balance": (max(sizes) / max(1, min(sizes))) if sizes else 1.0,
            "boundary_replicas": replicas,
            "replication_factor": round((total + replicas) / total, 4),
            "cut_edges": self.cut_edges,
            "total_edges": self.total_edges,
            "cut_fraction": round(
                self.cut_edges / max(1, self.total_edges), 4
            ),
        }


def build_shards(db: Database, partitioner) -> ShardSet:
    """Partition *db*: home assignment, boundary replicas, cut-edge audit.

    Rows are copied per shard in global ``(table, rowid)`` order so the
    shard databases are reproducible for a given assignment.
    """
    homes = partitioner.assign(db)
    n = partitioner.n_shards
    shards = [Shard(i, db) for i in range(n)]
    members: List[Set[TupleId]] = [set() for _ in range(n)]
    replica_of: List[Set[TupleId]] = [set() for _ in range(n)]
    cut_edges = 0
    total_edges = 0
    for tid, shard_id in homes.items():
        members[shard_id].add(tid)
    for tid, shard_id in homes.items():
        row = db.row(tid)
        for parent, _ in db.references_of(row):
            # Each FK edge is visited once, from its owning (child) side.
            parent_tid = TupleId(parent.table.name, parent.rowid)
            parent_home = homes[parent_tid]
            total_edges += 1
            if parent_home != shard_id:
                cut_edges += 1
                # Radius-1 boundary replicas, both directions of the cut.
                if parent_tid not in members[shard_id]:
                    replica_of[shard_id].add(parent_tid)
                if tid not in members[parent_home]:
                    replica_of[parent_home].add(tid)
    for shard in shards:
        mine = members[shard.shard_id] | replica_of[shard.shard_id]
        for tid in sorted(mine):
            shard.add_row(tid, is_home=tid in members[shard.shard_id])
    return ShardSet(db, partitioner, shards, homes, cut_edges, total_edges)
