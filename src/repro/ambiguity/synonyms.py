"""Synonym / related-query discovery (slides 101-102).

* ``click_log_synonyms`` — Cheng et al. (ICDE 10): two queries are
  synonyms/hypernyms when their clicked "ground truth" sets overlap
  significantly (Jaccard over clicked tuples).

* ``data_only_similarity`` — Nambiar & Kambhampati (ICDE 06): without
  logs, two attribute values (e.g. "honda" vs "toyota") are similar when
  the tuples containing them have similar distributions over the other
  attributes (cosine over bag-of-feature vectors).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Sequence, Set, Tuple

from repro.datasets.logs import ClickLogEntry
from repro.index.text import tokenize
from repro.relational.database import Database


def click_log_synonyms(
    log: Sequence[ClickLogEntry],
    min_overlap: float = 0.5,
) -> List[Tuple[Tuple[str, ...], Tuple[str, ...], float]]:
    """Query pairs whose click sets overlap >= min_overlap (Jaccard).

    Returns (query_a, query_b, overlap) triples, strongest first.  The
    clicked sets act as ground truth: queries retrieving the same things
    are interchangeable phrasings (slide 101's "Indiana Jones IV" vs
    "Indian Jones 4").
    """
    clicks: Dict[Tuple[str, ...], Set] = {}
    for entry in log:
        key = tuple(entry.keywords)
        clicks.setdefault(key, set()).update(entry.clicked)
    queries = sorted(clicks)
    out = []
    for i, qa in enumerate(queries):
        for qb in queries[i + 1 :]:
            if qa == qb:
                continue
            a, b = clicks[qa], clicks[qb]
            union = a | b
            if not union:
                continue
            overlap = len(a & b) / len(union)
            if overlap >= min_overlap:
                out.append((qa, qb, overlap))
    out.sort(key=lambda triple: (-triple[2], triple[0], triple[1]))
    return out


def _value_signature(
    db: Database,
    table: str,
    attribute: str,
    value: str,
    feature_attributes: Sequence[str],
) -> Counter:
    """Bag of feature tokens of the tuples carrying attribute=value."""
    signature: Counter = Counter()
    for row in db.rows(table):
        if str(row[attribute]).lower() != value.lower():
            continue
        for feature in feature_attributes:
            fv = row[feature]
            if fv is None:
                continue
            for token in tokenize(str(fv)):
                signature[(feature, token)] += 1
    return signature


def _cosine(a: Counter, b: Counter) -> float:
    if not a or not b:
        return 0.0
    dot = sum(a[k] * b[k] for k in a.keys() & b.keys())
    norm = math.sqrt(sum(v * v for v in a.values())) * math.sqrt(
        sum(v * v for v in b.values())
    )
    return dot / norm if norm else 0.0


def data_only_similarity(
    db: Database,
    table: str,
    attribute: str,
    value_a: str,
    value_b: str,
    feature_attributes: Sequence[str],
) -> float:
    """Similarity of two values of *attribute* from co-occurring features.

    E.g. similarity("honda", "toyota") over {model-class, price-band}
    features — high when the two brands' tuples look alike elsewhere.
    """
    sig_a = _value_signature(db, table, attribute, value_a, feature_attributes)
    sig_b = _value_signature(db, table, attribute, value_b, feature_attributes)
    return _cosine(sig_a, sig_b)


def similar_values(
    db: Database,
    table: str,
    attribute: str,
    value: str,
    feature_attributes: Sequence[str],
    k: int = 5,
) -> List[Tuple[str, float]]:
    """Top-k values of *attribute* most similar to *value* (data only)."""
    others = [
        str(v)
        for v in db.table(table).distinct(attribute)
        if str(v).lower() != value.lower()
    ]
    scored = [
        (other, data_only_similarity(db, table, attribute, value, other, feature_attributes))
        for other in others
    ]
    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    return scored[:k]
