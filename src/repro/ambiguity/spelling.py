"""Noisy-channel spelling correction (slide 66).

The intended query C passes through a noisy channel and is observed as
Q; correction maximises  P(C | Q) ∝ P(Q | C) · P(C):

* error model   P(Q | C) = lambda ** edit_distance(Q, C) — each edit
  operation costs a constant factor,
* prior         P(C)     = smoothed corpus frequency of C.

Confusion sets come from the q-gram index (slide 67's Variants(k)).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.index.qgram import QGramIndex, edit_distance


class NoisyChannelCorrector:
    """Per-token corrector over a weighted vocabulary."""

    def __init__(
        self,
        frequencies: Dict[str, int],
        max_distance: int = 2,
        error_lambda: float = 0.01,
        q: int = 2,
    ):
        # error_lambda is deliberately harsh (100x per edit): during
        # segmentation-based cleaning the language model rewards merging
        # co-occurring tokens, and a weak channel would let that reward
        # overwrite tokens the user typed correctly.
        if not 0 < error_lambda < 1:
            raise ValueError("error_lambda must be in (0, 1)")
        self.frequencies = dict(frequencies)
        self.total = sum(self.frequencies.values()) or 1
        self.max_distance = max_distance
        self.error_lambda = error_lambda
        self._qgrams = QGramIndex(self.frequencies, q=q)

    # ------------------------------------------------------------------
    # Model components
    # ------------------------------------------------------------------
    def prior(self, token: str) -> float:
        """Smoothed P(C): (freq + 1) / (total + V + 1).

        The extra +1 in the denominator reserves probability mass for a
        single pseudo-token covering all unseen corrections, keeping the
        distribution proper when ``token`` is out of vocabulary.  Pinned
        by ``test_query.py::test_noisy_channel_prior_formula`` — do not
        change the arithmetic without re-ranking the corrector fixtures.
        """
        return (self.frequencies.get(token, 0) + 1) / (
            self.total + len(self.frequencies) + 1
        )

    def error_probability(self, observed: str, intended: str) -> float:
        """P(Q | C) = lambda^edit_distance."""
        dist = edit_distance(observed, intended, cutoff=self.max_distance)
        if dist > self.max_distance:
            return 0.0
        return self.error_lambda ** dist

    def score(self, observed: str, intended: str) -> float:
        return self.error_probability(observed, intended) * self.prior(intended)

    # ------------------------------------------------------------------
    # Correction
    # ------------------------------------------------------------------
    def confusion_set(self, token: str) -> List[str]:
        """Variants(k): vocabulary tokens within the edit budget."""
        matches = self._qgrams.lookup(token, max_distance=self.max_distance)
        out = [t for t, _ in matches]
        if token not in out and token in self.frequencies:
            out.append(token)
        return sorted(out)

    def candidates(self, token: str, limit: int = 5) -> List[Tuple[str, float]]:
        """Scored corrections, best first."""
        scored = [
            (variant, self.score(token, variant))
            for variant in self.confusion_set(token)
        ]
        scored = [(t, s) for t, s in scored if s > 0]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:limit]

    def correct(self, token: str) -> str:
        """Best correction (the token itself when nothing beats it)."""
        ranked = self.candidates(token, limit=1)
        return ranked[0][0] if ranked else token
