"""Keyword++: keyword-to-predicate mapping (Xin et al., VLDB 10).

Slides 95-100.  Non-quantitative keywords ("small", "IBM") hurt both
precision and recall when matched literally.  Keyword++ learns what a
keyword *means* from differential query pairs (DQPs): for every pair of
logged queries (Q_f, Q_b) with Q_f = Q_b ∪ {k}, compare the attribute
value distributions of their result sets —

* categorical attributes: KL divergence of the value distributions,
  mapping k to the equality predicate on the most-shifted value;
* numerical attributes: earth mover's distance between the result
  distributions; if significant, map k to an ORDER BY in the direction
  the distribution moved.

``translate`` then segments an incoming query (1/2-gram dynamic
programming, slide 100) and emits a structured interpretation: equality
predicates, order-by hints, and residual LIKE terms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.index.text import tokenize
from repro.relational.database import Database
from repro.relational.table import Row


@dataclass(frozen=True)
class PredicateMapping:
    """Learned meaning of one keyword."""

    keyword: str
    kind: str  # "equality" | "order_by"
    attribute: str
    value: Optional[str] = None  # equality target
    direction: Optional[str] = None  # "asc" | "desc" for order_by
    strength: float = 0.0

    def describe(self) -> str:
        if self.kind == "equality":
            return f"{self.keyword!r} -> {self.attribute} = {self.value!r}"
        return f"{self.keyword!r} -> ORDER BY {self.attribute} {self.direction}"


def kl_divergence(p: Dict[str, float], q: Dict[str, float]) -> float:
    """KL(p || q) with add-epsilon smoothing over the union support."""
    support = set(p) | set(q)
    eps = 1e-6
    total = 0.0
    for value in support:
        pv = p.get(value, 0.0) + eps
        qv = q.get(value, 0.0) + eps
        total += pv * math.log(pv / qv)
    return total


def earth_movers_distance_1d(xs: Sequence[float], ys: Sequence[float]) -> float:
    """1-D EMD = area between the empirical CDFs (signless)."""
    if not xs or not ys:
        return 0.0
    xs = sorted(xs)
    ys = sorted(ys)
    grid = sorted(set(xs) | set(ys))
    total = 0.0
    prev = grid[0]
    import bisect

    for point in grid[1:]:
        fx = bisect.bisect_right(xs, prev) / len(xs)
        fy = bisect.bisect_right(ys, prev) / len(ys)
        total += abs(fx - fy) * (point - prev)
        prev = point
    return total


class KeywordPlusPlus:
    """Learn keyword -> predicate mappings over one entity table."""

    def __init__(
        self,
        db: Database,
        table: str,
        categorical_attributes: Sequence[str],
        numerical_attributes: Sequence[str],
        text_attributes: Optional[Sequence[str]] = None,
        kl_threshold: float = 0.2,
        emd_threshold: float = 0.3,
    ):
        self.db = db
        self.table = table
        self.categorical = list(categorical_attributes)
        self.numerical = list(numerical_attributes)
        schema = db.table(table).schema
        self.text_attributes = (
            list(text_attributes)
            if text_attributes is not None
            else list(schema.text_columns)
        )
        self.kl_threshold = kl_threshold
        self.emd_threshold = emd_threshold
        self.mappings: Dict[str, PredicateMapping] = {}

    # ------------------------------------------------------------------
    # Literal evaluation (also the baseline the benchmark compares to)
    # ------------------------------------------------------------------
    def literal_match(self, keywords: Sequence[str]) -> List[Row]:
        """AND-of-LIKE over text attributes (the slide-95 baseline)."""
        out = []
        lowered = [k.lower() for k in keywords]
        for row in self.db.rows(self.table):
            text = " ".join(
                str(row[a]) for a in self.text_attributes if row[a] is not None
            ).lower()
            tokens = set(tokenize(text))
            if all(k in tokens for k in lowered):
                out.append(row)
        return out

    # ------------------------------------------------------------------
    # DQP learning
    # ------------------------------------------------------------------
    def _distribution(self, rows: Sequence[Row], attribute: str) -> Dict[str, float]:
        counts: Dict[str, float] = {}
        for row in rows:
            value = row[attribute]
            if value is None:
                continue
            counts[str(value)] = counts.get(str(value), 0.0) + 1.0
        total = sum(counts.values())
        if total:
            counts = {v: c / total for v, c in counts.items()}
        return counts

    def _numeric_values(self, rows: Sequence[Row], attribute: str) -> List[float]:
        return [float(row[attribute]) for row in rows if row[attribute] is not None]

    def learn_keyword(
        self, keyword: str, query_log: Sequence[Sequence[str]]
    ) -> Optional[PredicateMapping]:
        """Aggregate DQP evidence for *keyword* across the log (slide 98)."""
        keyword = keyword.lower()
        pair_count = 0
        cat_scores: Dict[Tuple[str, str], float] = {}
        num_scores: Dict[str, List[Tuple[float, float, float]]] = {}
        seen_backgrounds: Set[Tuple[str, ...]] = set()
        for query in query_log:
            lowered = tuple(k.lower() for k in query)
            if keyword not in lowered:
                continue
            background = tuple(k for k in lowered if k != keyword)
            if background in seen_backgrounds:
                continue
            seen_backgrounds.add(background)
            fg_rows = self.literal_match(lowered)
            bg_rows = self.literal_match(background) if background else list(
                self.db.rows(self.table)
            )
            if not fg_rows or not bg_rows:
                continue
            pair_count += 1
            for attribute in self.categorical:
                p = self._distribution(fg_rows, attribute)
                q = self._distribution(bg_rows, attribute)
                if not p or not q:
                    continue
                divergence = kl_divergence(p, q)
                # The most over-represented value explains the keyword.
                best_value = max(p, key=lambda v: p[v] - q.get(v, 0.0))
                key = (attribute, best_value)
                cat_scores[key] = cat_scores.get(key, 0.0) + divergence
            for attribute in self.numerical:
                xs = self._numeric_values(fg_rows, attribute)
                ys = self._numeric_values(bg_rows, attribute)
                if not xs or not ys:
                    continue
                emd = earth_movers_distance_1d(xs, ys)
                spread = max(ys) - min(ys) if len(ys) > 1 else 1.0
                normalised = emd / spread if spread else 0.0
                mean_shift = (sum(xs) / len(xs)) - (sum(ys) / len(ys))
                num_scores.setdefault(attribute, []).append(
                    (normalised, mean_shift, emd)
                )
        if pair_count == 0:
            return None
        best: Optional[PredicateMapping] = None
        for (attribute, value), score in cat_scores.items():
            avg = score / pair_count
            if avg >= self.kl_threshold and (best is None or avg > best.strength):
                best = PredicateMapping(
                    keyword, "equality", attribute, value=value, strength=avg
                )
        for attribute, evidence in num_scores.items():
            avg = sum(e[0] for e in evidence) / pair_count
            shift = sum(e[1] for e in evidence) / len(evidence)
            if avg >= self.emd_threshold and (best is None or avg > best.strength):
                best = PredicateMapping(
                    keyword,
                    "order_by",
                    attribute,
                    direction="asc" if shift < 0 else "desc",
                    strength=avg,
                )
        if best is not None:
            self.mappings[keyword] = best
        return best

    def learn(self, query_log: Sequence[Sequence[str]]) -> Dict[str, PredicateMapping]:
        """Learn mappings for every keyword occurring in the log."""
        vocabulary: Set[str] = set()
        for query in query_log:
            vocabulary.update(k.lower() for k in query)
        for keyword in sorted(vocabulary):
            self.learn_keyword(keyword, query_log)
        return dict(self.mappings)

    # ------------------------------------------------------------------
    # Translation and evaluation
    # ------------------------------------------------------------------
    def translate(
        self, keywords: Sequence[str]
    ) -> Tuple[List[PredicateMapping], List[str]]:
        """Split a query into mapped predicates and residual keywords."""
        predicates: List[PredicateMapping] = []
        residual: List[str] = []
        for keyword in keywords:
            mapping = self.mappings.get(keyword.lower())
            if mapping is not None:
                predicates.append(mapping)
            else:
                residual.append(keyword.lower())
        return predicates, residual

    def structured_match(self, keywords: Sequence[str]) -> List[Row]:
        """Evaluate the translated query (slide 96's T_sigma(Q)).

        Equality predicates filter; order-by mappings sort; residual
        keywords filter as LIKE terms.
        """
        predicates, residual = self.translate(keywords)
        rows = list(self.db.rows(self.table))
        for mapping in predicates:
            if mapping.kind == "equality":
                rows = [
                    r for r in rows if str(r[mapping.attribute]) == mapping.value
                ]
        if residual:
            residual_set = set(residual)
            filtered = []
            for row in rows:
                text = " ".join(
                    str(row[a]) for a in self.text_attributes if row[a] is not None
                ).lower()
                tokens = set(tokenize(text))
                if residual_set <= tokens:
                    filtered.append(row)
            rows = filtered
        for mapping in predicates:
            if mapping.kind == "order_by":
                reverse = mapping.direction == "desc"
                rows.sort(
                    key=lambda r: (
                        r[mapping.attribute] is None,
                        r[mapping.attribute] if r[mapping.attribute] is not None else 0,
                    ),
                    reverse=reverse,
                )
        return rows
