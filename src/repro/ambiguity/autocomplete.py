"""TASTIER: type-ahead keyword search (Li et al., SIGMOD 09).

Slides 71-73.  Every query keyword is treated as a *prefix*.  The trie
maps each prefix to a contiguous token-id range; candidate tuples come
from the inverted lists of the tokens under the *most selective* prefix,
and the δ-step forward index prunes candidates that cannot reach the
remaining prefixes' ranges within δ hops (the slide-73 example:
candidates {11, 12, 78} pruned to {12} by Range(sig)).  Around each
surviving candidate a small answer tree is grown with bounded search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.graph.data_graph import DataGraph
from repro.index.forward import DeltaForwardIndex
from repro.index.inverted import InvertedIndex
from repro.index.trie import Trie
from repro.relational.database import TupleId
from repro.resilience.budget import QueryBudget
from repro.resilience.errors import BudgetExceededError
from repro.resilience.failpoints import fail_point


@dataclass
class TastierResult:
    """Answers plus the work counters the E8 benchmark reports.

    ``degraded`` marks a budget-exhausted search: ``answers`` then holds
    the best partial ranking from the work done so far and ``reason``
    says which limit tripped.
    """

    answers: List[Tuple[TupleId, float]]
    candidates_initial: int
    candidates_after_pruning: int
    degraded: bool = False
    reason: Optional[str] = None


class Tastier:
    """Prefix-based keyword search with δ-forward-index pruning."""

    def __init__(
        self,
        graph: DataGraph,
        index: InvertedIndex,
        delta: int = 2,
        trie: Optional[Trie] = None,
    ):
        self.graph = graph
        self.index = index
        self.delta = delta
        self.trie = trie if trie is not None else Trie(index.vocabulary)
        self.forward = DeltaForwardIndex(graph, index, self.trie, delta=delta)

    # ------------------------------------------------------------------
    def _range(self, prefix: str) -> Optional[Tuple[int, int]]:
        return self.trie.prefix_range(prefix.lower())

    def _candidates_for(
        self,
        prefix_range: Tuple[int, int],
        budget: Optional[QueryBudget] = None,
    ) -> List[TupleId]:
        lo, hi = prefix_range
        seen: Dict[TupleId, None] = {}
        fail_point("tastier.scan")
        for token_id in range(lo, hi + 1):
            for tid in self.index.matching_tuples(self.trie.token(token_id)):
                if budget is not None:
                    budget.tick_candidates()
                seen.setdefault(tid)
        return list(seen)

    def _range_list_size(self, prefix_range: Tuple[int, int]) -> int:
        lo, hi = prefix_range
        return sum(
            self.index.document_frequency(self.trie.token(t))
            for t in range(lo, hi + 1)
        )

    def search(
        self,
        prefixes: Sequence[str],
        k: int = 10,
        budget: Optional[QueryBudget] = None,
    ) -> TastierResult:
        """Top-k answers for partially typed keywords.

        An answer is a node within δ hops of tuples matching every
        prefix, scored by its summed hop distance to the matches.

        When a :class:`QueryBudget` is given, every inverted-list
        posting scanned and every candidate grown ticks it; on
        exhaustion the best partial result accumulated so far is
        returned with ``degraded=True`` instead of raising, so an
        interactive caller always gets *something* to show.
        """
        ranges = []
        for prefix in prefixes:
            rng = self._range(prefix)
            if rng is None:
                return TastierResult([], 0, 0)
            ranges.append(rng)
        # Most selective prefix drives candidate generation.
        order = sorted(range(len(ranges)), key=lambda i: self._range_list_size(ranges[i]))
        anchor_range = ranges[order[0]]
        other_ranges = [ranges[i] for i in order[1:]]
        try:
            candidates = self._candidates_for(anchor_range, budget)
        except BudgetExceededError as exc:
            return TastierResult([], 0, 0, degraded=True, reason=str(exc))
        initial = len(candidates)
        try:
            if budget is not None:
                budget.checkpoint()
            pruned = self.forward.filter_candidates(candidates, other_ranges)
        except BudgetExceededError as exc:
            return TastierResult([], initial, 0, degraded=True, reason=str(exc))
        answers: List[Tuple[TupleId, float]] = []
        degraded = False
        reason: Optional[str] = None
        for candidate in pruned:
            if budget is not None:
                try:
                    budget.tick_nodes()
                except BudgetExceededError as exc:
                    degraded = True
                    reason = str(exc)
                    break
            cost = self._grow_cost(candidate, ranges)
            if cost is not None:
                answers.append((candidate, cost))
        answers.sort(key=lambda pair: (pair[1], pair[0]))
        return TastierResult(
            answers[:k], initial, len(pruned), degraded=degraded, reason=reason
        )

    def _grow_cost(
        self, candidate: TupleId, ranges: Sequence[Tuple[int, int]]
    ) -> Optional[float]:
        """Summed hop distance from candidate to each prefix's nearest match."""
        hops = self.graph.bfs_hops(candidate, max_hops=self.delta)
        total = 0.0
        for lo, hi in ranges:
            best = None
            for node, distance in hops.items():
                node_tokens = self.index.tokens_of(node)
                direct = any(
                    lo <= self.trie.token_id(t) <= hi
                    for t in node_tokens
                    if t in self.trie
                )
                if direct and (best is None or distance < best):
                    best = distance
            if best is None:
                return None
            total += best
        return total

    def complete_keyword(self, prefix: str, limit: int = 8) -> List[str]:
        """Plain completion suggestions for the UI."""
        return self.trie.complete(prefix.lower(), limit=limit)
