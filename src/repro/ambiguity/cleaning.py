"""Keyword query cleaning (Pu & Yu, VLDB 08; Lu et al., ICDE 11).

Slides 67-70.  A raw query is cleaned in two coupled steps:

1. every token gets a *confusion set* of spelling variants (noisy
   channel over the database vocabulary);
2. the token sequence is *segmented*: consecutive tokens are grouped
   into segments, each of which must be "backed up by tuples in the DB"
   (its cleaned tokens co-occur in one tuple), and the segmentation +
   variant choice maximising the product of segment probabilities is
   found by dynamic programming over positions (slide 68).

A per-segment penalty implements "prevent fragmentation": a single
well-supported segment beats two fragments.  ``require_nonempty=True``
gives the XClean guarantee (slide 70): every emitted segment has
matching tuples, so the cleaned query cannot be empty; XClean's second
fix (not being biased towards rare tokens) corresponds to mixing the
language model with add-one smoothing over co-occurrence support rather
than raw token rarity.
"""

from __future__ import annotations

import itertools
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ambiguity.spelling import NoisyChannelCorrector
from repro.index.inverted import InvertedIndex


@dataclass(frozen=True)
class Segment:
    """A cleaned segment: original tokens, chosen variants, support."""

    raw: Tuple[str, ...]
    cleaned: Tuple[str, ...]
    support: int
    probability: float


@dataclass(frozen=True)
class CleaningResult:
    segments: Tuple[Segment, ...]
    probability: float

    def cleaned_tokens(self) -> List[str]:
        out: List[str] = []
        for segment in self.segments:
            out.extend(segment.cleaned)
        return out


class QueryCleaner:
    """Segmentation-aware query cleaning over one database index."""

    def __init__(
        self,
        index: InvertedIndex,
        max_distance: int = 2,
        max_span: int = 3,
        segment_penalty: float = 0.4,
        variants_per_token: int = 4,
        require_nonempty: bool = False,
    ):
        self.index = index
        self.max_span = max_span
        self.segment_penalty = segment_penalty
        self.variants_per_token = variants_per_token
        self.require_nonempty = require_nonempty
        frequencies = {
            token: index.document_frequency(token) for token in index.vocabulary
        }
        self.corrector = NoisyChannelCorrector(
            frequencies, max_distance=max_distance
        )

    # ------------------------------------------------------------------
    # Segment scoring
    # ------------------------------------------------------------------
    def _variant_candidates(self, token: str) -> List[Tuple[str, float]]:
        ranked = self.corrector.candidates(token, limit=self.variants_per_token)
        if not ranked:
            # Unknown token with no close variant: keep it verbatim with a
            # tiny channel probability so cleaning degrades gracefully.
            return [(token, 1e-9)]
        return ranked

    def _segment_support(self, cleaned: Sequence[str]) -> int:
        return len(self.index.tuples_matching_all(cleaned))

    def best_segment(self, raw: Sequence[str]) -> Optional[Segment]:
        """Best variant assignment for one contiguous span."""
        candidate_lists = [self._variant_candidates(t) for t in raw]
        best: Optional[Segment] = None
        for combo in itertools.product(*candidate_lists):
            cleaned = tuple(sys.intern(variant) for variant, _ in combo)
            channel = 1.0
            for _, score in combo:
                channel *= score
            support = self._segment_support(cleaned)
            if self.require_nonempty and support == 0:
                continue
            # Language model: add-one smoothed co-occurrence support.
            lm = (support + 1) / (self.index.document_count + 1)
            probability = channel * lm
            if best is None or probability > best.probability:
                best = Segment(tuple(raw), cleaned, support, probability)
        return best

    # ------------------------------------------------------------------
    # Segmentation DP (slide 68, bottom-up)
    # ------------------------------------------------------------------
    def clean(self, raw_tokens: Sequence[str]) -> CleaningResult:
        # Interned once here: cleaned tokens become cache keys, tuple-set
        # keywords and scoring probes downstream, all sharing one object
        # with the index-side vocabulary.
        tokens = [sys.intern(t.lower()) for t in raw_tokens if t]
        n = len(tokens)
        if n == 0:
            return CleaningResult((), 1.0)
        best_prob: List[float] = [0.0] * (n + 1)
        best_prob[0] = 1.0
        best_split: List[Optional[Tuple[int, Segment]]] = [None] * (n + 1)
        for end in range(1, n + 1):
            for start in range(max(0, end - self.max_span), end):
                if best_prob[start] == 0.0:
                    continue
                segment = self.best_segment(tokens[start:end])
                if segment is None:
                    continue
                prob = best_prob[start] * segment.probability * self.segment_penalty
                if prob > best_prob[end]:
                    best_prob[end] = prob
                    best_split[end] = (start, segment)
        if best_prob[n] == 0.0:
            # No valid segmentation (only possible with require_nonempty):
            # fall back to per-token best corrections without the guarantee.
            segments = []
            prob = 1.0
            for token in tokens:
                variant, score = self._variant_candidates(token)[0]
                support = self._segment_support([variant])
                segments.append(Segment((token,), (variant,), support, score))
                prob *= score
            return CleaningResult(tuple(segments), prob)
        segments_rev: List[Segment] = []
        pos = n
        while pos > 0:
            start, segment = best_split[pos]  # type: ignore[misc]
            segments_rev.append(segment)
            pos = start
        return CleaningResult(tuple(reversed(segments_rev)), best_prob[n])
