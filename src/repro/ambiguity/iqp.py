"""IQP: probabilistic incremental query construction (Demidova et al.,
TKDE 11; slide 46).

A structural query is a *query template* (join skeleton) plus *keyword
bindings* (which attribute each keyword constrains).  IQP scores an
interpretation by

    Pr[A, T | Q]  ∝  Pr[A | T] · Pr[T]  =  ( prod_i Pr[A_i | T] ) · Pr[T]

with both factors estimated from a query log: ``Pr[T]`` is the
template's share of logged queries and ``Pr[A_i | T]`` the smoothed
frequency with which keyword-like values bound attribute ``A_i`` under
that template.  Slide 46 asks "what if no query log?" — without a log
the estimator falls back to uniform template priors and data-driven
binding probabilities (how often the keyword actually occurs in the
attribute's column), which is exactly what ``IqpModel(log=None)`` does.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.logs import QueryLogEntry
from repro.index.inverted import InvertedIndex
from repro.index.text import tokenize
from repro.relational.database import Database


@dataclass(frozen=True)
class Interpretation:
    """One scored structural interpretation of a keyword query."""

    template: str
    bindings: Tuple[Tuple[str, str], ...]  # (keyword, attribute label)
    probability: float

    def describe(self) -> str:
        parts = ", ".join(f"{kw} -> {attr}" for kw, attr in self.bindings)
        return f"{self.template} [{parts}]"


class IqpModel:
    """Keyword-binding model over templates.

    ``templates`` maps a template name to the attribute labels
    (``table.column``) it exposes for binding.
    """

    def __init__(
        self,
        db: Database,
        index: InvertedIndex,
        templates: Dict[str, Sequence[str]],
        log: Optional[Sequence[QueryLogEntry]] = None,
        smoothing: float = 0.5,
    ):
        self.db = db
        self.index = index
        self.templates = {name: list(attrs) for name, attrs in templates.items()}
        self.smoothing = smoothing
        self._template_counts: Dict[str, int] = {}
        self._binding_counts: Dict[Tuple[str, str, str], int] = {}
        self._log_total = 0
        if log:
            self._ingest(log)

    def _ingest(self, log: Sequence[QueryLogEntry]) -> None:
        for entry in log:
            if entry.template is None or entry.template not in self.templates:
                continue
            self._log_total += 1
            self._template_counts[entry.template] = (
                self._template_counts.get(entry.template, 0) + 1
            )
            for attr, value in entry.conditions:
                if isinstance(value, tuple):
                    continue
                for token in tokenize(str(value)):
                    key = (entry.template, attr, token)
                    self._binding_counts[key] = self._binding_counts.get(key, 0) + 1

    # ------------------------------------------------------------------
    # Probabilities
    # ------------------------------------------------------------------
    def template_prior(self, template: str) -> float:
        n = len(self.templates)
        if self._log_total == 0:
            return 1.0 / n
        count = self._template_counts.get(template, 0)
        return (count + self.smoothing) / (self._log_total + self.smoothing * n)

    def _data_binding_probability(self, attribute: str, keyword: str) -> float:
        """Fallback when the log is silent: P(keyword occurs in column)."""
        table, __, column = attribute.partition(".")
        try:
            tbl = self.db.table(table)
        except Exception:
            return 0.0
        total = len(tbl) or 1
        hits = 0
        for row in tbl.rows():
            value = row.get(column)
            if value is not None and keyword in tokenize(str(value)):
                hits += 1
        return (hits + self.smoothing) / (total + self.smoothing * 2)

    def binding_probability(
        self, template: str, attribute: str, keyword: str
    ) -> float:
        """Pr[A_i | T] for binding *keyword* to *attribute*."""
        keyword = keyword.lower()
        template_total = self._template_counts.get(template, 0)
        if template_total:
            count = self._binding_counts.get((template, attribute, keyword), 0)
            n_attrs = len(self.templates[template])
            log_part = (count + self.smoothing) / (
                template_total + self.smoothing * n_attrs
            )
        else:
            log_part = None
        data_part = self._data_binding_probability(attribute, keyword)
        if log_part is None:
            return data_part
        # Blend log evidence with data evidence (log dominates when present).
        return 0.7 * log_part + 0.3 * data_part

    # ------------------------------------------------------------------
    # Interpretation ranking
    # ------------------------------------------------------------------
    def interpret(
        self, keywords: Sequence[str], k: int = 5
    ) -> List[Interpretation]:
        """Top-k interpretations across all templates."""
        keywords = [kw.lower() for kw in keywords]
        out: List[Interpretation] = []
        for template, attributes in self.templates.items():
            prior = self.template_prior(template)
            if len(attributes) < 1:
                continue
            # Assign each keyword to one attribute (keywords independent).
            per_keyword: List[List[Tuple[str, float]]] = []
            for keyword in keywords:
                scored = [
                    (attr, self.binding_probability(template, attr, keyword))
                    for attr in attributes
                ]
                scored.sort(key=lambda pair: (-pair[1], pair[0]))
                per_keyword.append(scored[:3])  # beam per keyword
            for combo in itertools.product(*per_keyword):
                probability = prior
                for __, p in combo:
                    probability *= p
                bindings = tuple(
                    (kw, attr) for kw, (attr, __) in zip(keywords, combo)
                )
                out.append(Interpretation(template, bindings, probability))
        out.sort(key=lambda i: (-i.probability, i.template))
        return out[:k]
