"""Keyword-ambiguity handling (tutorial slides 65-102).

* spelling correction with a noisy-channel model (slide 66),
* keyword query cleaning with segmentation DP (Pu & Yu, VLDB 08) and
  the XClean non-empty-result guarantee (Lu+ ICDE 11),
* TASTIER type-ahead search (Li+ SIGMOD 09),
* Keyword++ differential-query-pair rewriting (Xin+ VLDB 10),
* synonym discovery from click logs (Cheng+ ICDE 10) and from data only
  (Nambiar & Kambhampati, ICDE 06).
"""

from repro.ambiguity.spelling import NoisyChannelCorrector
from repro.ambiguity.cleaning import QueryCleaner, CleaningResult, Segment
from repro.ambiguity.autocomplete import Tastier, TastierResult
from repro.ambiguity.rewriting import KeywordPlusPlus, PredicateMapping
from repro.ambiguity.iqp import IqpModel, Interpretation
from repro.ambiguity.synonyms import (
    click_log_synonyms,
    data_only_similarity,
)

__all__ = [
    "NoisyChannelCorrector",
    "QueryCleaner",
    "CleaningResult",
    "Segment",
    "Tastier",
    "TastierResult",
    "KeywordPlusPlus",
    "PredicateMapping",
    "IqpModel",
    "Interpretation",
    "click_log_synonyms",
    "data_only_similarity",
]
