"""Query expansion from clustered results (slides 80-82).

Given the results of an ambiguous query clustered by meaning ("Java"
language / island / band), produce one expanded query per cluster that
maximally retrieves its own cluster (recall) and minimally retrieves the
others (precision) — i.e. maximises F-measure.  The exact problem is
APX-hard (slide 82); we implement the standard greedy heuristic: grow
each cluster's expansion term-by-term, adding the term with the best
F-measure gain until no term improves it.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.index.text import tokenize


def _retrieves(expansion: Sequence[str], doc_tokens: Set[str]) -> bool:
    return all(term in doc_tokens for term in expansion)


def f_measure(precision: float, recall: float) -> float:
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def _evaluate(
    expansion: Sequence[str],
    cluster_docs: Sequence[Set[str]],
    other_docs: Sequence[Set[str]],
) -> float:
    tp = sum(1 for doc in cluster_docs if _retrieves(expansion, doc))
    fp = sum(1 for doc in other_docs if _retrieves(expansion, doc))
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / len(cluster_docs)
    return f_measure(precision, recall)


def expand_query_for_clusters(
    base_query: Sequence[str],
    clusters: Sequence[Sequence[str]],
    max_terms: int = 3,
) -> List[Tuple[List[str], float]]:
    """One expanded query per cluster of result texts.

    *clusters* holds the raw texts of each cluster's results.  Returns
    (expanded query, achieved F-measure) per cluster; the expansion
    always contains the base query terms.
    """
    tokenised: List[List[Set[str]]] = [
        [set(tokenize(text)) for text in cluster] for cluster in clusters
    ]
    out: List[Tuple[List[str], float]] = []
    base = [t.lower() for t in base_query]
    for ci, cluster_docs in enumerate(tokenised):
        other_docs = [
            doc for cj, docs in enumerate(tokenised) if cj != ci for doc in docs
        ]
        # Candidate terms: tokens frequent in this cluster.
        counts: Counter = Counter()
        for doc in cluster_docs:
            for token in doc:
                if token not in base:
                    counts[token] += 1
        candidates = [t for t, _ in counts.most_common(30)]
        expansion = list(base)
        best = _evaluate(expansion, cluster_docs, other_docs)
        while len(expansion) < len(base) + max_terms:
            best_term = None
            best_score = best
            for term in candidates:
                if term in expansion:
                    continue
                score = _evaluate(expansion + [term], cluster_docs, other_docs)
                if score > best_score:
                    best_score = score
                    best_term = term
            if best_term is None:
                break
            expansion.append(best_term)
            best = best_score
        out.append((expansion, best))
    return out
