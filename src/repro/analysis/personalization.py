"""PerK: personalized keyword search (Stefanidis et al., EDBT 10;
slide 168).

A user profile holds graded *preferences* — term-level ("I care about
xml": weight on content terms) and attribute-level ("conference name
matters more than abstract").  Results are re-ranked by blending the
engine's relevance score with a profile affinity score:

    final = (1 - alpha) * normalised_relevance + alpha * affinity

``affinity`` is the profile-weighted fraction of the result's content
matching preferred terms, plus attribute preferences applied to the
columns the matches occur in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.results import SearchResult
from repro.index.text import tokenize


@dataclass
class PreferenceProfile:
    """A user's graded preferences."""

    term_weights: Dict[str, float] = field(default_factory=dict)
    attribute_weights: Dict[str, float] = field(default_factory=dict)  # "table.column"

    def term_weight(self, term: str) -> float:
        return self.term_weights.get(term.lower(), 0.0)

    def attribute_weight(self, table: str, column: str) -> float:
        return self.attribute_weights.get(f"{table}.{column}", 0.0)

    def prefer_term(self, term: str, weight: float = 1.0) -> None:
        self.term_weights[term.lower()] = weight

    def prefer_attribute(self, table: str, column: str, weight: float = 1.0) -> None:
        self.attribute_weights[f"{table}.{column}"] = weight


def result_affinity(result: SearchResult, profile: PreferenceProfile) -> float:
    """Profile affinity of one relational result in [0, 1]."""
    term_score = 0.0
    term_norm = sum(profile.term_weights.values()) or 1.0
    attr_score = 0.0
    attr_norm = sum(profile.attribute_weights.values()) or 1.0
    seen_terms = set()
    for row in result.joined.distinct_rows():
        for column in row.table.schema.text_columns:
            value = row[column]
            if value is None:
                continue
            tokens = set(tokenize(str(value)))
            for token in tokens:
                weight = profile.term_weight(token)
                if weight > 0 and token not in seen_terms:
                    seen_terms.add(token)
                    term_score += weight
            if tokens:
                attr_score += profile.attribute_weight(row.table.name, column)
    term_part = min(1.0, term_score / term_norm)
    attr_part = min(1.0, attr_score / attr_norm)
    if not profile.attribute_weights:
        return term_part
    if not profile.term_weights:
        return attr_part
    return 0.5 * (term_part + attr_part)


def personalize(
    results: Sequence[SearchResult],
    profile: PreferenceProfile,
    alpha: float = 0.5,
) -> List[SearchResult]:
    """Re-rank *results* by blending relevance with profile affinity."""
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    if not results:
        return []
    max_score = max(r.score for r in results) or 1.0
    rescored = []
    for result in results:
        relevance = result.score / max_score
        affinity = result_affinity(result, profile)
        final = (1 - alpha) * relevance + alpha * affinity
        rescored.append(
            SearchResult(score=final, network=result.network, joined=result.joined)
        )
    rescored.sort(key=lambda r: (-r.score, r.network))
    return rescored
