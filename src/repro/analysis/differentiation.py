"""Result differentiation (Liu, Sun & Chen, VLDB 09; slides 149-153).

Users comparing multiple relevant results need a *comparison table*:
for each result, a concise feature set (bounded by a user budget) that
maximises the **Degree of Difference** (DoD) across results while still
summarising them.  Generating the optimal table is NP-hard (slide 153);
the paper defines weak/strong local optimality and gives efficient
algorithms — we implement the greedy single-swap algorithm (weak local
optimality; ``deep=True`` adds pair swaps, the strong variant's spirit)
plus the top-frequency and random baselines E10 compares against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

#: A feature is a (type, value) pair, e.g. ("paper:title", "olap").
Feature = Tuple[str, str]


@dataclass
class FeatureSet:
    """One result's full feature set and its current selection."""

    result_id: object
    features: FrozenSet[Feature]
    selected: Set[Feature]

    @classmethod
    def of(cls, result_id: object, features: Sequence[Feature]) -> "FeatureSet":
        return cls(result_id, frozenset(features), set())


def degree_of_difference(selections: Sequence[Set[Feature]]) -> int:
    """DoD: summed symmetric difference over all result pairs (slide 152)."""
    total = 0
    n = len(selections)
    for i in range(n):
        for j in range(i + 1, n):
            total += len(selections[i] ^ selections[j])
    return total


def _current_dod(sets: Sequence[FeatureSet]) -> int:
    return degree_of_difference([fs.selected for fs in sets])


def select_features_top_frequency(
    sets: Sequence[FeatureSet], budget: int
) -> List[FeatureSet]:
    """Baseline: per result, its most frequent feature types' values.

    (Features are unweighted here, so "frequency" is global: pick the
    features appearing in the most results — a summarising but poorly
    differentiating choice.)
    """
    counts: Dict[Feature, int] = {}
    for fs in sets:
        for feature in fs.features:
            counts[feature] = counts.get(feature, 0) + 1
    for fs in sets:
        ranked = sorted(fs.features, key=lambda f: (-counts[f], f))
        fs.selected = set(ranked[:budget])
    return list(sets)


def select_features_random(
    sets: Sequence[FeatureSet], budget: int, seed: int = 0
) -> List[FeatureSet]:
    rng = random.Random(seed)
    for fs in sets:
        pool = sorted(fs.features)
        rng.shuffle(pool)
        fs.selected = set(pool[:budget])
    return list(sets)


def select_features_greedy(
    sets: Sequence[FeatureSet],
    budget: int,
    deep: bool = False,
    max_rounds: int = 20,
) -> List[FeatureSet]:
    """Local-search DoD maximisation.

    Starts from the top-frequency table and repeatedly applies the best
    improving *single-feature swap* in some result (weak local
    optimality: no single swap improves).  With ``deep=True`` it also
    tries *pair* swaps within one result before giving up, approximating
    strong local optimality.
    """
    select_features_top_frequency(sets, budget)
    for _ in range(max_rounds):
        improved = _best_single_swap(sets)
        if not improved and deep:
            improved = _best_pair_swap(sets)
        if not improved:
            break
    return list(sets)


def _best_single_swap(sets: Sequence[FeatureSet]) -> bool:
    base = _current_dod(sets)
    best_gain = 0
    best_move: Optional[Tuple[FeatureSet, Feature, Feature]] = None
    for fs in sets:
        unselected = sorted(fs.features - fs.selected)
        for out_feature in sorted(fs.selected):
            for in_feature in unselected:
                fs.selected.remove(out_feature)
                fs.selected.add(in_feature)
                gain = _current_dod(sets) - base
                fs.selected.remove(in_feature)
                fs.selected.add(out_feature)
                if gain > best_gain:
                    best_gain = gain
                    best_move = (fs, out_feature, in_feature)
    if best_move is None:
        return False
    fs, out_feature, in_feature = best_move
    fs.selected.remove(out_feature)
    fs.selected.add(in_feature)
    return True


def _best_pair_swap(sets: Sequence[FeatureSet]) -> bool:
    base = _current_dod(sets)
    for fs in sets:
        selected = sorted(fs.selected)
        unselected = sorted(fs.features - fs.selected)
        if len(selected) < 2 or len(unselected) < 2:
            continue
        for i in range(len(selected)):
            for j in range(i + 1, len(selected)):
                for a in range(len(unselected)):
                    for b in range(a + 1, len(unselected)):
                        outs = {selected[i], selected[j]}
                        ins = {unselected[a], unselected[b]}
                        fs.selected -= outs
                        fs.selected |= ins
                        gain = _current_dod(sets) - base
                        if gain > 0:
                            return True
                        fs.selected -= ins
                        fs.selected |= outs
    return False


def comparison_table(sets: Sequence[FeatureSet]) -> Dict[object, List[Feature]]:
    """The final table: result id -> sorted selected features."""
    return {fs.result_id: sorted(fs.selected) for fs in sets}
