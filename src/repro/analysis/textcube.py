"""Keyword search in a text cube / TopCells (Ding et al., ICDE 10).

Slides 166-167: each database row is a set of dimension attributes plus
a text document; a *cell* fixes some dimensions (others ``*``) and
aggregates the documents of matching rows.  Keyword search over the
cube returns the top-k cells with support >= min_support, ranked by the
**average relevance** of the cell's documents to the query — surfacing
the common feature combinations ("Brand:Acer, Model:AOA110") behind the
matching products rather than individual products.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from itertools import combinations, product
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.index.text import tokenize

STAR = "*"


@dataclass(frozen=True)
class CubeCell:
    dimensions: Tuple[str, ...]
    values: Tuple[object, ...]

    def label(self) -> str:
        parts = []
        for dim, value in zip(self.dimensions, self.values):
            parts.append(f"{dim}:{value if value is not STAR else STAR}")
        return "{" + ", ".join(parts) + "}"


class TextCube:
    """An in-memory text cube over (dimensions..., document) rows."""

    def __init__(
        self,
        dimensions: Sequence[str],
        rows: Sequence[Tuple[Dict[str, object], str]],
    ):
        self.dimensions = tuple(dimensions)
        self.rows: List[Tuple[Dict[str, object], str]] = list(rows)
        self._tokens: List[Counter] = [
            Counter(tokenize(doc)) for _, doc in self.rows
        ]
        self._df: Counter = Counter()
        for bag in self._tokens:
            for token in bag:
                self._df[token] += 1

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------
    def _matches(self, cell: CubeCell, dims: Dict[str, object]) -> bool:
        for dim, value in zip(cell.dimensions, cell.values):
            if value is not STAR and dims.get(dim) != value:
                return False
        return True

    def cell_rows(self, cell: CubeCell) -> List[int]:
        return [
            i for i, (dims, _) in enumerate(self.rows) if self._matches(cell, dims)
        ]

    def support(self, cell: CubeCell) -> int:
        return len(self.cell_rows(cell))

    def _relevance(self, row_idx: int, keywords: Sequence[str]) -> float:
        bag = self._tokens[row_idx]
        score = 0.0
        n = len(self.rows) or 1
        for keyword in keywords:
            tf = bag.get(keyword.lower(), 0)
            if tf:
                idf = math.log((n + 1) / (self._df[keyword.lower()] + 1)) + 1.0
                score += (1 + math.log(tf)) * idf
        return score

    def average_relevance(self, cell: CubeCell, keywords: Sequence[str]) -> float:
        rows = self.cell_rows(cell)
        if not rows:
            return 0.0
        return sum(self._relevance(i, keywords) for i in rows) / len(rows)

    # ------------------------------------------------------------------
    def enumerate_cells(self, max_fixed: Optional[int] = None) -> List[CubeCell]:
        """All cells over value combinations present in the data."""
        max_fixed = max_fixed if max_fixed is not None else len(self.dimensions)
        cells: Dict[Tuple, CubeCell] = {}
        for count in range(1, max_fixed + 1):
            for dims in combinations(self.dimensions, count):
                seen: Set[Tuple] = set()
                for row_dims, _ in self.rows:
                    key = tuple(row_dims.get(d) for d in dims)
                    if None in key or key in seen:
                        continue
                    seen.add(key)
                    values = []
                    ki = 0
                    for dim in self.dimensions:
                        if dim in dims:
                            values.append(key[dims.index(dim)])
                        else:
                            values.append(STAR)
                    cell = CubeCell(self.dimensions, tuple(values))
                    cells[(dims, key)] = cell
        return list(cells.values())


def top_cells(
    cube: TextCube,
    keywords: Sequence[str],
    k: int = 5,
    min_support: int = 2,
    max_fixed: Optional[int] = None,
) -> List[Tuple[CubeCell, float, int]]:
    """Top-k cells by average relevance with support >= min_support.

    Only cells whose aggregated documents contain every keyword at least
    once qualify (AND semantics over the cell's virtual document).
    """
    lowered = [kw.lower() for kw in keywords]
    out: List[Tuple[CubeCell, float, int]] = []
    for cell in cube.enumerate_cells(max_fixed=max_fixed):
        rows = cube.cell_rows(cell)
        support = len(rows)
        if support < min_support:
            continue
        combined: Set[str] = set()
        for i in rows:
            combined.update(cube._tokens[i])
        if not all(kw in combined for kw in lowered):
            continue
        out.append((cell, cube.average_relevance(cell, lowered), support))
    out.sort(key=lambda triple: (-triple[1], -triple[2], triple[0].label()))
    return out[:k]
