"""Result ranking factors (slides 144-145).

* **vector space model** — queries and results as TF·IDF vectors,
  similarity by cosine;
* **proximity** — structural compactness of a tree/graph result
  (weighted size and root-to-keyword distances);
* **authority** — PageRank adapted to data graphs: authority flows in
  both directions of an edge, with per-edge-type weights (an
  entity-entity link transfers more authority than entity-attribute).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graph.data_graph import DataGraph
from repro.index.text import tokenize
from repro.relational.database import TupleId


class VectorSpaceRanker:
    """TF·IDF vector space over arbitrary text documents."""

    def __init__(self, documents: Dict[object, str]):
        self._tf: Dict[object, Counter] = {}
        self._df: Counter = Counter()
        for doc_id, text in documents.items():
            bag = Counter(tokenize(text))
            self._tf[doc_id] = bag
            for token in bag:
                self._df[token] += 1
        self._n = len(documents) or 1

    def idf(self, token: str) -> float:
        return math.log((self._n + 1) / (self._df.get(token, 0) + 1)) + 1.0

    def _weight(self, bag: Counter, token: str) -> float:
        tf = bag.get(token, 0)
        if tf == 0:
            return 0.0
        return (1.0 + math.log(tf)) * self.idf(token)

    def score(self, doc_id: object, keywords: Sequence[str]) -> float:
        """Cosine similarity between the query and one document."""
        bag = self._tf.get(doc_id)
        if bag is None:
            return 0.0
        query_bag = Counter(k.lower() for k in keywords)
        dot = 0.0
        for token, qtf in query_bag.items():
            dot += qtf * self.idf(token) * self._weight(bag, token)
        doc_norm = math.sqrt(sum(self._weight(bag, t) ** 2 for t in bag))
        query_norm = math.sqrt(
            sum((qtf * self.idf(t)) ** 2 for t, qtf in query_bag.items())
        )
        if doc_norm == 0 or query_norm == 0:
            return 0.0
        return dot / (doc_norm * query_norm)

    def rank(
        self, keywords: Sequence[str], k: Optional[int] = None
    ) -> List[Tuple[object, float]]:
        scored = [
            (doc_id, self.score(doc_id, keywords)) for doc_id in self._tf
        ]
        scored = [(d, s) for d, s in scored if s > 0]
        scored.sort(key=lambda pair: (-pair[1], str(pair[0])))
        return scored[:k] if k is not None else scored


def proximity_score(
    tree_size: int,
    root_to_keyword_distances: Sequence[float],
    size_weight: float = 0.5,
) -> float:
    """Compactness score: smaller trees with nearer keywords score higher.

    score = 1 / (1 + size_weight*(size-1) + sum(distances))
    """
    if tree_size < 1:
        raise ValueError("tree_size must be >= 1")
    penalty = size_weight * (tree_size - 1) + sum(root_to_keyword_distances)
    return 1.0 / (1.0 + penalty)


def authority_scores(
    graph: DataGraph,
    damping: float = 0.85,
    iterations: int = 30,
    edge_type_weight: Optional[Callable[[TupleId, TupleId], float]] = None,
) -> Dict[TupleId, float]:
    """PageRank with bidirectional flow and per-edge-type weights.

    ``edge_type_weight(u, v)`` scales the authority u sends to v
    (slide 145: different edge types may be treated differently);
    default weight 1.0 reproduces plain undirected PageRank.
    """
    nodes = graph.nodes
    n = len(nodes)
    if n == 0:
        return {}
    rank = {node: 1.0 / n for node in nodes}
    out_weight: Dict[TupleId, float] = {}
    for node in nodes:
        total = 0.0
        for nbr, _ in graph.neighbors(node):
            w = edge_type_weight(node, nbr) if edge_type_weight else 1.0
            total += w
        out_weight[node] = total
    for _ in range(iterations):
        nxt = {node: (1.0 - damping) / n for node in nodes}
        for node in nodes:
            total = out_weight[node]
            if total == 0:
                share = damping * rank[node] / n
                for other in nodes:
                    nxt[other] += share
                continue
            for nbr, _ in graph.neighbors(node):
                w = edge_type_weight(node, nbr) if edge_type_weight else 1.0
                nxt[nbr] += damping * rank[node] * (w / total)
        rank = nxt
    return rank
