"""Faceted search with a navigation cost model (slides 84-93).

Chakrabarti et al. (2004) / FACeTOR-style: query results are organised
into a navigation tree — one facet (attribute) per level, one facet
condition (value) per child.  The user model (slides 87-88):

* at node N the user either shows results (reads |N| tuples) or expands
  the child facet (reads its value list, then processes the children
  they find relevant);
* probabilities are estimated from a historical query log (slides
  89-90): ``p(expand at facet A)`` grows with how many past queries
  constrained A, and ``p(child N relevant)`` is the fraction of past
  queries whose selection conditions overlap N's condition.

``build_navigation_tree`` is the greedy top-down algorithm of slide 91:
at each level pick the unused attribute minimising expected cost.
Numeric attributes are partitioned at historical query endpoints
(slide 85).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.logs import QueryLogEntry
from repro.relational.table import Row


@dataclass
class FacetNode:
    """One node of the navigation tree."""

    condition: Optional[Tuple[str, object]]  # None at the root
    rows: List[Row]
    facet: Optional[str] = None  # attribute expanded below this node
    children: List["FacetNode"] = field(default_factory=list)

    def size(self) -> int:
        return len(self.rows)


class NavigationModel:
    """Probability estimates from a query log (slides 89-90)."""

    def __init__(self, log: Sequence[QueryLogEntry]):
        self.log = list(log)
        self._attr_counts: Dict[str, int] = {}
        for entry in self.log:
            for attr, _ in entry.conditions:
                self._attr_counts[attr] = self._attr_counts.get(attr, 0) + 1

    def p_expand(self, attribute: str) -> float:
        """High if many historical queries involve the attribute."""
        if not self.log:
            return 0.5
        return min(1.0, self._attr_counts.get(attribute, 0) / len(self.log))

    def p_show_results(self, attribute: str) -> float:
        return 1.0 - self.p_expand(attribute)

    def p_relevant(self, attribute: str, value: object) -> float:
        """Fraction of log queries whose condition overlaps (attr, value).

        *value* may be a concrete value or a ``(lo, hi)`` range (numeric
        facet conditions, slide 85).
        """
        if not self.log:
            return 0.5
        hits = 0
        for entry in self.log:
            for attr, cond in entry.conditions:
                if attr != attribute:
                    continue
                if isinstance(cond, tuple) and isinstance(value, tuple):
                    c_lo, c_hi = cond
                    v_lo, v_hi = value
                    if c_lo <= v_hi and v_lo <= c_hi:  # ranges overlap
                        hits += 1
                        break
                elif isinstance(cond, tuple):
                    lo, hi = cond
                    try:
                        if lo <= float(value) <= hi:  # type: ignore[arg-type]
                            hits += 1
                            break
                    except (TypeError, ValueError):
                        continue
                elif isinstance(value, tuple):
                    try:
                        if value[0] <= float(cond) <= value[1]:
                            hits += 1
                            break
                    except (TypeError, ValueError):
                        continue
                elif cond == value:
                    hits += 1
                    break
        return hits / len(self.log)

    def partition_points(self, attribute: str, k: int = 3) -> List[float]:
        """Numeric partition boundaries at frequent query endpoints."""
        endpoints: Dict[float, int] = {}
        for entry in self.log:
            for attr, cond in entry.conditions:
                if attr == attribute and isinstance(cond, tuple):
                    for point in cond:
                        endpoints[float(point)] = endpoints.get(float(point), 0) + 1
        ranked = sorted(endpoints.items(), key=lambda pair: (-pair[1], pair[0]))
        return sorted(point for point, _ in ranked[:k])


def _facet_values(rows: Sequence[Row], attribute: str) -> List[object]:
    seen: Dict[object, None] = {}
    for row in rows:
        value = row[attribute]
        if value is not None:
            seen.setdefault(value)
    return list(seen)


def numeric_facet_conditions(
    rows: Sequence[Row],
    attribute: str,
    model: NavigationModel,
    k_partitions: int = 3,
) -> List[Tuple[float, float]]:
    """Range conditions for a numeric attribute (slide 85).

    Partition boundaries come from historical query endpoints ("if many
    queries start or end at x, it is good to partition at x"), falling
    back to data min/max when the log is silent.
    """
    values = [
        float(row[attribute]) for row in rows if row[attribute] is not None
    ]
    if not values:
        return []
    lo, hi = min(values), max(values)
    points = [
        p for p in model.partition_points(attribute, k=k_partitions) if lo < p < hi
    ]
    boundaries = [lo] + sorted(points) + [hi + 1e-9]
    return [
        (boundaries[i], boundaries[i + 1]) for i in range(len(boundaries) - 1)
    ]


def _row_in_range(row: Row, attribute: str, condition: Tuple[float, float]) -> bool:
    value = row[attribute]
    if value is None:
        return False
    lo, hi = condition
    return lo <= float(value) < hi or (float(value) == hi)


def navigation_cost(
    node: FacetNode,
    model: NavigationModel,
    value_read_cost: float = 0.2,
) -> float:
    """Expected navigation cost of the (sub)tree rooted at *node*.

    cost(N) = p(showRes)·|N|
            + p(expand)·( V·value_read_cost + Σ_c p(relevant(c))·cost(c) )
    Leaves cost |N| (the user must read the results).
    """
    if node.facet is None or not node.children:
        return float(node.size())
    p_expand = model.p_expand(node.facet)
    p_show = 1.0 - p_expand
    expand_cost = len(node.children) * value_read_cost
    for child in node.children:
        assert child.condition is not None
        p_rel = model.p_relevant(child.condition[0], child.condition[1])
        expand_cost += p_rel * navigation_cost(child, model, value_read_cost)
    return p_show * node.size() + p_expand * expand_cost


def build_navigation_tree(
    rows: Sequence[Row],
    attributes: Sequence[str],
    model: NavigationModel,
    max_depth: int = 3,
    min_partition: int = 2,
    attribute_order: Optional[Sequence[str]] = None,
) -> FacetNode:
    """Greedy top-down construction (slide 91).

    At each level the candidate attributes are those unused above; the
    greedy pick minimises the expected cost with one-level lookahead.
    ``attribute_order`` overrides the greedy choice (used to build the
    static-order baselines the benchmark compares against).
    """
    root = FacetNode(condition=None, rows=list(rows))
    _grow(root, list(attributes), model, max_depth, min_partition, attribute_order)
    return root


def _grow(
    node: FacetNode,
    attributes: List[str],
    model: NavigationModel,
    depth_left: int,
    min_partition: int,
    attribute_order: Optional[Sequence[str]],
) -> None:
    if depth_left <= 0 or not attributes or node.size() <= 1:
        return
    if attribute_order:
        remaining = [a for a in attribute_order if a in attributes]
        choice = remaining[0] if remaining else None
    else:
        choice = None
        best_cost = float(node.size())  # cost of not expanding at all
        for attribute in attributes:
            values = _facet_values(node.rows, attribute)
            if len(values) < min_partition:
                continue
            cost = _lookahead_cost(node, attribute, values, model)
            if cost < best_cost:
                best_cost = cost
                choice = attribute
    if choice is None:
        return
    values = _facet_values(node.rows, choice)
    if len(values) < min_partition:
        return
    node.facet = choice
    rest = [a for a in attributes if a != choice]
    if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
        # Numeric attribute: partition into ranges (slide 85).
        for condition in numeric_facet_conditions(node.rows, choice, model):
            child_rows = [
                r for r in node.rows if _row_in_range(r, choice, condition)
            ]
            if not child_rows:
                continue
            child = FacetNode(condition=(choice, condition), rows=child_rows)
            node.children.append(child)
            _grow(child, rest, model, depth_left - 1, min_partition, attribute_order)
        return
    # Order categorical facet conditions by how many historical queries
    # hit them (slide 85).
    values.sort(key=lambda v: (-model.p_relevant(choice, v), str(v)))
    for value in values:
        child_rows = [r for r in node.rows if r[choice] == value]
        child = FacetNode(condition=(choice, value), rows=child_rows)
        node.children.append(child)
        _grow(child, rest, model, depth_left - 1, min_partition, attribute_order)


def _lookahead_cost(
    node: FacetNode,
    attribute: str,
    values: Sequence[object],
    model: NavigationModel,
    value_read_cost: float = 0.2,
) -> float:
    p_expand = model.p_expand(attribute)
    p_show = 1.0 - p_expand
    cost = len(values) * value_read_cost
    for value in values:
        child_size = sum(1 for r in node.rows if r[attribute] == value)
        cost += model.p_relevant(attribute, value) * child_size
    return p_show * node.size() + p_expand * cost
