"""Query refinement by term suggestion (slides 76-78).

* ``data_cloud`` — Data Clouds (Koutrika et al., EDBT 09): suggest the
  top terms from the *results* of a query, either popularity-based
  (term frequency across results — may surface overly general terms) or
  relevance-based (attribute-weighted TF summed over score-weighted
  results).

* ``frequent_cooccurring_terms`` — Tao & Yu (EDBT 09): the top-k terms
  co-occurring with the query, computed from the inverted index alone
  without generating results first (frequency of terms in the tuples of
  the query's posting intersection).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.index.inverted import InvertedIndex
from repro.index.text import tokenize
from repro.relational.database import Database, TupleId
from repro.relational.table import Row


def data_cloud(
    db: Database,
    results: Sequence[Row],
    keywords: Sequence[str],
    k: int = 10,
    mode: str = "relevance",
    attribute_weights: Optional[Dict[str, float]] = None,
    result_scores: Optional[Sequence[float]] = None,
) -> List[Tuple[str, float]]:
    """Top-k suggested terms from a result set.

    ``mode="popularity"`` counts raw term occurrences; ``"relevance"``
    weights each occurrence by the attribute's weight and the owning
    result's score (slide 77's improved TF).
    """
    if mode not in ("popularity", "relevance"):
        raise ValueError("mode must be 'popularity' or 'relevance'")
    exclude = {kw.lower() for kw in keywords}
    scores: Dict[str, float] = {}
    weights = attribute_weights or {}
    for idx, row in enumerate(results):
        result_score = (
            result_scores[idx] if result_scores is not None else 1.0
        )
        for column in row.table.schema.text_columns:
            value = row[column]
            if value is None:
                continue
            attr_weight = weights.get(column, 1.0)
            for token in tokenize(str(value)):
                if token in exclude:
                    continue
                if mode == "popularity":
                    scores[token] = scores.get(token, 0.0) + 1.0
                else:
                    scores[token] = scores.get(token, 0.0) + attr_weight * result_score
    ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
    return ranked[:k]


def frequent_cooccurring_terms(
    index: InvertedIndex,
    keywords: Sequence[str],
    k: int = 10,
) -> List[Tuple[str, int]]:
    """Top-k non-query terms in the tuples matching all keywords.

    Works entirely off the inverted index (slide 78: "capable of
    computing top-k terms efficiently without even generating results").
    """
    exclude = {kw.lower() for kw in keywords}
    matching = index.tuples_matching_all(keywords)
    counts: Counter = Counter()
    for tid in matching:
        for token in index.tokens_of(tid):
            if token not in exclude:
                counts[token] += 1
    ranked = sorted(counts.items(), key=lambda pair: (-pair[1], pair[0]))
    return ranked[:k]
