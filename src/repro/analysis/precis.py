"""Précis: fine-grained return-node selection (Koutrika et al., ICDE 06).

Slide 52: when a result involves multiple entities with many attributes,
which attributes should actually be *returned*?  Précis weights the
schema graph's edges with relevance weights in (0, 1]; an attribute is
included iff

* the total number of returned attributes stays within a budget, and
* the weight of the path from the result's anchor table to the
  attribute (product of edge weights) meets a minimum threshold.

The slide's example is checked verbatim in the tests: with minimum
weight 0.4, `person -> review -> conference -> sponsor` has weight
0.8 * 0.9 * 0.5 = 0.36 < 0.4, so `sponsor` is dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import heapq


@dataclass(frozen=True)
class WeightedAttribute:
    """One candidate output attribute with its best path weight."""

    table: str
    attribute: str
    weight: float
    path: Tuple[str, ...]

    def label(self) -> str:
        return f"{self.table}.{self.attribute}"


class PrecisGraph:
    """A weighted logical schema graph for return-node selection.

    Nodes are tables; ``add_edge(a, b, w)`` declares relatedness weight
    w in (0, 1]; ``add_attribute(table, name, w)`` attaches an attribute
    with its own weight (1.0 = core attribute).
    """

    def __init__(self) -> None:
        self._edges: Dict[str, Dict[str, float]] = {}
        self._attributes: Dict[str, List[Tuple[str, float]]] = {}

    def add_edge(self, a: str, b: str, weight: float) -> None:
        if not 0 < weight <= 1:
            raise ValueError("edge weight must be in (0, 1]")
        self._edges.setdefault(a, {})[b] = weight
        self._edges.setdefault(b, {})[a] = weight

    def add_attribute(self, table: str, name: str, weight: float = 1.0) -> None:
        if not 0 < weight <= 1:
            raise ValueError("attribute weight must be in (0, 1]")
        self._edges.setdefault(table, {})
        self._attributes.setdefault(table, []).append((name, weight))

    # ------------------------------------------------------------------
    def best_path_weights(self, anchor: str) -> Dict[str, Tuple[float, Tuple[str, ...]]]:
        """Max-product path weight from *anchor* to every table.

        Dijkstra on -log(weight); returns table -> (weight, path).
        """
        best: Dict[str, Tuple[float, Tuple[str, ...]]] = {
            anchor: (1.0, (anchor,))
        }
        heap: List[Tuple[float, str]] = [(-1.0, anchor)]
        settled = set()
        while heap:
            neg_weight, table = heapq.heappop(heap)
            if table in settled:
                continue
            settled.add(table)
            weight, path = best[table]
            for nbr, edge_weight in self._edges.get(table, {}).items():
                candidate = weight * edge_weight
                if candidate > best.get(nbr, (0.0, ()))[0]:
                    best[nbr] = (candidate, path + (nbr,))
                    heapq.heappush(heap, (-candidate, nbr))
        return {t: v for t, v in best.items() if t in settled}

    def select_attributes(
        self,
        anchor: str,
        min_weight: float = 0.0,
        max_attributes: Optional[int] = None,
    ) -> List[WeightedAttribute]:
        """Attributes to return for results anchored at *anchor*.

        An attribute qualifies when path_weight(anchor -> table) *
        attribute_weight >= min_weight; the budget keeps the heaviest.
        """
        paths = self.best_path_weights(anchor)
        candidates: List[WeightedAttribute] = []
        for table, (path_weight, path) in paths.items():
            for name, attr_weight in self._attributes.get(table, ()):
                total = path_weight * attr_weight
                if total >= min_weight:
                    candidates.append(
                        WeightedAttribute(table, name, total, path)
                    )
        candidates.sort(key=lambda a: (-a.weight, a.label()))
        if max_attributes is not None:
            candidates = candidates[:max_attributes]
        return candidates


def slide52_graph() -> PrecisGraph:
    """The slide-52 example graph: person - review - conference, with
    attribute weights as annotated on the slide."""
    graph = PrecisGraph()
    graph.add_edge("person", "review", 0.8)
    graph.add_edge("review", "conference", 0.9)
    graph.add_attribute("person", "pname", 1.0)
    graph.add_attribute("person", "name", 1.0)
    graph.add_attribute("conference", "year", 1.0)
    graph.add_attribute("conference", "sponsor", 0.5)
    return graph
