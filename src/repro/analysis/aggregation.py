"""Aggregate keyword queries with minimal group-bys (Zhou & Pei, EDBT 09).

Slides 16, 164-165: a user asks for *groups* of tuples that jointly
cover all keywords, grouped by shared values of user-specified
attributes.  A **cell** assigns to each specified attribute either a
concrete value or ``*``; a cell *covers* the query when the tuples
matching the cell jointly contain every keyword.  The answers are the
**minimal** cells: covering cells none of whose specialisations
(replacing a ``*`` by a value, or any further value constraint) still
covers — exactly the slide's "December Texas *" and "* Michigan *".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.index.text import tokenize
from repro.relational.table import Row

STAR = "*"


@dataclass(frozen=True)
class Cell:
    """An assignment over the specified attributes (value or ``*``)."""

    attributes: Tuple[str, ...]
    values: Tuple[object, ...]  # same length; STAR = wildcard

    def matches(self, row: Row) -> bool:
        for attribute, value in zip(self.attributes, self.values):
            if value is not STAR and value != row[attribute]:
                return False
        return True

    def specialises(self, other: "Cell") -> bool:
        """True if self is strictly more specific than *other*."""
        if self.attributes != other.attributes:
            return False
        strictly = False
        for mine, theirs in zip(self.values, other.values):
            if theirs is STAR:
                if mine is not STAR:
                    strictly = True
                continue
            if mine != theirs:
                return False
        return strictly

    def label(self) -> str:
        return " ".join(
            str(v) if v is not STAR else STAR for v in self.values
        )


def _row_tokens(row: Row) -> Set[str]:
    return set(tokenize(row.text()))


def _covers(
    rows: Sequence[Row], tokens: Sequence[Set[str]], cell: Cell, keywords: Sequence[str]
) -> bool:
    remaining = {k.lower() for k in keywords}
    for row, row_tokens in zip(rows, tokens):
        if not cell.matches(row):
            continue
        remaining -= row_tokens
        if not remaining:
            return True
    return not remaining


def minimal_group_bys(
    rows: Sequence[Row],
    attributes: Sequence[str],
    keywords: Sequence[str],
) -> List[Cell]:
    """All minimal covering cells over *attributes* (slide 165).

    Enumerates the cells induced by the values present in the data plus
    ``*`` per attribute, keeps the covering ones, and prunes any cell
    that has a covering specialisation.
    """
    rows = list(rows)
    tokens = [_row_tokens(r) for r in rows]
    attributes = tuple(attributes)
    value_options: List[List[object]] = []
    for attribute in attributes:
        values: Dict[object, None] = {}
        for row in rows:
            v = row[attribute]
            if v is not None:
                values.setdefault(v)
        value_options.append([STAR] + list(values))
    covering: List[Cell] = []
    for combo in product(*value_options):
        cell = Cell(attributes, tuple(combo))
        if _covers(rows, tokens, cell, keywords):
            covering.append(cell)
    minimal = []
    for cell in covering:
        if not any(other.specialises(cell) for other in covering):
            minimal.append(cell)
    minimal.sort(key=lambda c: c.label())
    return minimal


def cell_members(rows: Sequence[Row], cell: Cell) -> List[Row]:
    return [row for row in rows if cell.matches(row)]
