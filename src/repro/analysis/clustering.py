"""XBridge result-type clustering and cluster ranking (Li et al., EDBT 10).

Slides 156-160: results of an XML keyword query are grouped by the
*context of their result roots* — the label path from the document root —
so "conference papers" and "journal papers" form distinct, recognisable
clusters.  Clusters are ranked by the total score of their top-R results
with R = min(average cluster size, |G|), which "avoids too much benefit
to large clusters" (slide 157).  Individual results score by content
(log ief weights, slide 158) and structure (root-to-keyword path lengths
with over-depth discounting and shared-path-segment discounting for
tightly coupled results, slides 159-160).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.xmltree.index import XmlKeywordIndex
from repro.xmltree.node import Dewey, XmlNode


def result_content_score(
    index: XmlKeywordIndex, result: Dewey, keywords: Sequence[str]
) -> float:
    """Sum of log(ief) over matched keywords (slide 158: TF is 1)."""
    score = 0.0
    for keyword in keywords:
        occurrences = [
            d for d in index.matches(keyword) if d[: len(result)] == result
        ]
        if occurrences:
            score += math.log(1.0 + index.inverse_element_frequency(keyword))
    return score


def result_structure_score(
    index: XmlKeywordIndex,
    result: Dewey,
    keywords: Sequence[str],
    avg_depth: Optional[float] = None,
) -> float:
    """Proximity: discounted sum of root-to-keyword path lengths.

    Path segments shared between keyword paths are counted once
    (slide 160: favour tightly-coupled results); lengths beyond the
    average document depth are discounted (slide 159).
    """
    if avg_depth is None:
        avg_depth = _average_depth(index)
    paths: List[Dewey] = []
    for keyword in keywords:
        best = None
        for occurrence in index.matches(keyword):
            if occurrence[: len(result)] != result:
                continue
            if best is None or len(occurrence) < len(best):
                best = occurrence
        if best is None:
            return 0.0
        paths.append(best)
    # Count distinct edges below the result root across all paths: a
    # shared prefix segment is charged once.
    edges = set()
    for path in paths:
        for depth in range(len(result), len(path)):
            edges.add(path[: depth + 1])
    dist = len(edges)
    if dist > avg_depth:
        dist = avg_depth + 0.5 * (dist - avg_depth)  # over-depth discount
    return 1.0 / (1.0 + dist)


def _average_depth(index: XmlKeywordIndex) -> float:
    paths = index.label_paths()
    if not paths:
        return 1.0
    return sum(p.count("/") for p in paths) / len(paths)


def result_score(
    index: XmlKeywordIndex, result: Dewey, keywords: Sequence[str]
) -> float:
    return result_content_score(index, result, keywords) * result_structure_score(
        index, result, keywords
    )


def xbridge_clusters(
    root: XmlNode,
    results: Sequence[Dewey],
    context_depth: Optional[int] = None,
) -> Dict[str, List[Dewey]]:
    """Group results by the label path of their roots (slide 156).

    ``context_depth`` optionally truncates the path to its first levels
    (coarser clusters).
    """
    clusters: Dict[str, List[Dewey]] = {}
    for result in results:
        node = root.node_at(result)
        if node is None:
            continue
        path = node.label_path()
        if context_depth is not None:
            parts = [p for p in path.split("/") if p]
            path = "/" + "/".join(parts[:context_depth])
        clusters.setdefault(path, []).append(result)
    return clusters


def rank_clusters(
    index: XmlKeywordIndex,
    clusters: Dict[str, List[Dewey]],
    keywords: Sequence[str],
) -> List[Tuple[str, float]]:
    """Score(G, Q) = total score of top-R results, R = min(avg, |G|)."""
    if not clusters:
        return []
    avg = sum(len(members) for members in clusters.values()) / len(clusters)
    ranked: List[Tuple[str, float]] = []
    for path, members in clusters.items():
        scores = sorted(
            (result_score(index, m, keywords) for m in members), reverse=True
        )
        r = max(1, min(int(avg), len(scores)))
        ranked.append((path, sum(scores[:r])))
    ranked.sort(key=lambda pair: (-pair[1], pair[0]))
    return ranked
