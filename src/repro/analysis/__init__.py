"""Result analysis (tutorial slides 75-93, 143-167).

Ranking, snippet generation, result differentiation, query refinement
(data clouds, co-occurring terms, cluster-based expansion), faceted
exploration, result-type clustering, aggregate table analysis and
text-cube search.
"""

from repro.analysis.ranking import (
    VectorSpaceRanker,
    proximity_score,
    authority_scores,
)
from repro.analysis.snippets import generate_snippet, SnippetItem
from repro.analysis.differentiation import (
    FeatureSet,
    degree_of_difference,
    select_features_greedy,
    select_features_top_frequency,
    select_features_random,
)
from repro.analysis.clouds import data_cloud, frequent_cooccurring_terms
from repro.analysis.expansion import expand_query_for_clusters
from repro.analysis.facets import (
    FacetNode,
    NavigationModel,
    build_navigation_tree,
    navigation_cost,
)
from repro.analysis.clustering import xbridge_clusters, rank_clusters
from repro.analysis.aggregation import minimal_group_bys, Cell
from repro.analysis.textcube import TextCube, top_cells
from repro.analysis.precis import PrecisGraph, WeightedAttribute
from repro.analysis.personalization import PreferenceProfile, personalize

__all__ = [
    "VectorSpaceRanker",
    "proximity_score",
    "authority_scores",
    "generate_snippet",
    "SnippetItem",
    "FeatureSet",
    "degree_of_difference",
    "select_features_greedy",
    "select_features_top_frequency",
    "select_features_random",
    "data_cloud",
    "frequent_cooccurring_terms",
    "expand_query_for_clusters",
    "FacetNode",
    "NavigationModel",
    "build_navigation_tree",
    "navigation_cost",
    "xbridge_clusters",
    "rank_clusters",
    "minimal_group_bys",
    "Cell",
    "TextCube",
    "top_cells",
    "PrecisGraph",
    "WeightedAttribute",
    "PreferenceProfile",
    "personalize",
]
