"""Query-biased XML result snippets (Huang, Liu & Chen, SIGMOD 08).

Slide 148: a good snippet is self-contained, informative and concise;
its components are (a) the query keywords in context, (b) the *key* of
the result (the attribute that identifies it), (c) the entities involved
and (d) dominant features.  Selecting the optimal size-bounded snippet
is NP-hard; the paper uses greedy heuristics, as do we: items are
prioritised keyword-witnesses first, then the result key, then dominant
(frequent) attribute values, and picked greedily until the size budget
is spent.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.index.text import tokenize
from repro.xmltree.node import XmlNode


@dataclass(frozen=True)
class SnippetItem:
    """One snippet line: the node's path, tag and (possibly trimmed) text."""

    path: str
    tag: str
    text: str
    reason: str  # "keyword" | "key" | "dominant"


def _dominant_tags(result_root: XmlNode) -> List[str]:
    """Attribute tags by frequency inside the result (dominant features)."""
    counts = Counter(
        node.tag
        for node in result_root.descendants(include_self=True)
        if node.value is not None
    )
    return [tag for tag, _ in counts.most_common()]


def generate_snippet(
    result_root: XmlNode,
    keywords: Sequence[str],
    max_items: int = 4,
) -> List[SnippetItem]:
    """Greedy size-bounded snippet for one result subtree."""
    if max_items < 1:
        raise ValueError("max_items must be >= 1")
    keywords = [k.lower() for k in keywords]
    items: List[SnippetItem] = []
    used_nodes: Set[Tuple[int, ...]] = set()
    covered_keywords: Set[str] = set()

    def add(node: XmlNode, reason: str) -> bool:
        if node.dewey in used_nodes or len(items) >= max_items:
            return False
        used_nodes.add(node.dewey)
        items.append(
            SnippetItem(
                path=node.label_path(),
                tag=node.tag,
                text=(node.value or "")[:80],
                reason=reason,
            )
        )
        return True

    # 1. keyword witnesses: one node per keyword, prefer value matches.
    for keyword in keywords:
        if keyword in covered_keywords:
            continue
        witness: Optional[XmlNode] = None
        for node in result_root.descendants(include_self=True):
            tokens = set(tokenize(node.value or ""))
            if keyword in tokens:
                witness = node
                break
            if witness is None and keyword in tokenize(node.tag):
                witness = node
        if witness is not None and add(witness, "keyword"):
            covered_keywords.add(keyword)

    # 2. the result key: the first valued child of the result root.
    for child in result_root.children:
        if child.value is not None:
            add(child, "key")
            break

    # 3. dominant features until the budget is spent.
    for tag in _dominant_tags(result_root):
        if len(items) >= max_items:
            break
        for node in result_root.descendants(include_self=True):
            if node.tag == tag and node.value is not None:
                if add(node, "dominant"):
                    break
    return items


def snippet_text(items: Sequence[SnippetItem]) -> str:
    """Flat printable form of a snippet."""
    return " | ".join(f"{item.tag}: {item.text}" for item in items)


def snippet_covers_keywords(
    items: Sequence[SnippetItem], keywords: Sequence[str]
) -> bool:
    """Self-containedness check: every query keyword appears."""
    text = " ".join(f"{i.tag} {i.text}" for i in items).lower()
    tokens = set(tokenize(text))
    return all(k.lower() in tokens for k in keywords)
