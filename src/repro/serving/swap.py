"""Zero-downtime engine swaps: an RCU-style generation handle.

The server never hands queries the engine object directly; it hands
them an :class:`EngineHandle`.  Each *generation* pairs an engine with
an epoch number and a reader refcount:

* **readers** (query workers) enter with :meth:`EngineHandle.acquire`,
  which pins the *current* generation — a swap concurrent with the
  query cannot tear the engine out from under it;
* **a swap** builds the next generation's engine elsewhere (background
  thread, possibly a :meth:`DurableEngine.recover`), then calls
  :meth:`swap`: the flip itself is a single pointer exchange under a
  lock (readers are never blocked), after which the swapper *drains* —
  waits for the old generation's refcount to reach zero — before
  tearing the old engine down.  A query therefore always runs start to
  finish on one fully built generation: no torn reads, no
  half-invalidated caches.

``swap.generation`` / ``swap.count`` / ``swap.drain_ms`` surface the
epoch in ``/metrics``; the ``serve.swap`` failpoint fires inside the
swap window so chaos tests can crash or delay a swap mid-flight.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.resilience.failpoints import fail_point


class Generation:
    """One engine epoch with a reader refcount."""

    __slots__ = ("engine", "number", "_refs", "_retired", "_drained", "_lock")

    def __init__(self, engine: Any, number: int):
        self.engine = engine
        self.number = number
        self._refs = 0
        self._retired = False
        self._drained = threading.Event()
        self._lock = threading.Lock()

    def pin(self) -> None:
        with self._lock:
            self._refs += 1

    def unpin(self) -> None:
        with self._lock:
            self._refs -= 1
            if self._refs <= 0 and self._retired:
                self._drained.set()

    def retire(self) -> None:
        """Mark no-new-readers; signals drained once refs hit zero."""
        with self._lock:
            self._retired = True
            if self._refs <= 0:
                self._drained.set()

    def wait_drained(self, timeout_s: Optional[float]) -> bool:
        return self._drained.wait(timeout_s)

    @property
    def readers(self) -> int:
        with self._lock:
            return self._refs


@dataclass(frozen=True)
class SwapResult:
    """Outcome of one :meth:`EngineHandle.swap`."""

    generation: int
    previous_generation: int
    drained: bool
    drain_ms: float
    old_readers_left: int


class EngineHandle:
    """Atomic, drain-on-swap holder of the serving engine."""

    def __init__(
        self,
        engine: Any,
        metrics: Optional[MetricsRegistry] = None,
        teardown: Optional[Callable[[Any], None]] = None,
    ):
        self._current = Generation(engine, 1)
        self._flip_lock = threading.Lock()
        self._swapping = 0  # count of flip()s whose drain hasn't finished
        self.swaps_completed = 0
        #: Called with the old engine after its generation drains
        #: (default: drop caches so the memory is reclaimable even if
        #: something still references the object).
        self.teardown = teardown if teardown is not None else _default_teardown
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics.register_gauge("swap.generation", lambda: self.generation)
        self.metrics.register_gauge(
            "swap.in_progress", lambda: int(self.swapping)
        )

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    @contextmanager
    def acquire(self) -> Iterator[Tuple[Any, int]]:
        """Pin the current generation for the duration of one query."""
        with self._flip_lock:
            generation = self._current
            generation.pin()
        try:
            yield generation.engine, generation.number
        finally:
            generation.unpin()

    @property
    def engine(self) -> Any:
        """The current engine (unpinned — for stats, not for queries)."""
        return self._current.engine

    @property
    def generation(self) -> int:
        return self._current.number

    @property
    def swapping(self) -> bool:
        return self._swapping > 0

    def readers(self) -> int:
        return self._current.readers

    # ------------------------------------------------------------------
    # Swapper side
    # ------------------------------------------------------------------
    def flip(self, new_engine: Any) -> Generation:
        """Install *new_engine* as the current generation; return the old.

        The flip is atomic with respect to :meth:`acquire` (readers get
        either the old or the new generation, never a mix) and takes
        only the pointer-exchange lock — callers may hold a mutation
        lock across it without stalling on slow readers.  The returned
        (retired) generation MUST be handed to :meth:`drain`, which is
        where the waiting, teardown, and bookkeeping happen; until then
        :attr:`swapping` stays true.
        """
        with self._flip_lock:
            self._swapping += 1
        try:
            fail_point("serve.swap")
            with self._flip_lock:
                old = self._current
                self._current = Generation(new_engine, old.number + 1)
                old.retire()
            return old
        except BaseException:
            with self._flip_lock:
                self._swapping -= 1
            raise

    def drain(
        self, old: Generation, drain_timeout_s: Optional[float] = 30.0
    ) -> SwapResult:
        """Wait out *old*'s pinned readers, then tear the engine down.

        Blocks the *swapper* — not readers, not new queries — until
        every query pinned to the old generation finishes, or
        ``drain_timeout_s`` elapses (``drained=False``; the old engine
        is leaked rather than torn down under a live reader).  Call
        this *outside* any mutation lock: a long-running query pinned
        to the old generation must never stall inserts or other swaps.
        """
        try:
            start_s = time.perf_counter()
            drained = old.wait_drained(drain_timeout_s)
            drain_ms = (time.perf_counter() - start_s) * 1000.0
            if drained:
                try:
                    self.teardown(old.engine)
                except Exception:  # teardown must never fail a swap
                    pass
            self.swaps_completed += 1
            self.metrics.inc("swap.count")
            self.metrics.observe("swap.drain_ms", drain_ms)
            if not drained:
                self.metrics.inc("swap.drain_timeouts")
            return SwapResult(
                generation=old.number + 1,
                previous_generation=old.number,
                drained=drained,
                drain_ms=drain_ms,
                old_readers_left=old.readers,
            )
        finally:
            with self._flip_lock:
                self._swapping -= 1

    def swap(
        self, new_engine: Any, drain_timeout_s: Optional[float] = 30.0
    ) -> SwapResult:
        """:meth:`flip` + :meth:`drain` in one blocking call."""
        return self.drain(self.flip(new_engine), drain_timeout_s=drain_timeout_s)


def _default_teardown(engine: Any) -> None:
    """Free what the old generation can free: caches and pools."""
    invalidate = getattr(engine, "invalidate_caches", None)
    if invalidate is not None:
        invalidate()
    close = getattr(engine, "close", None)
    if close is not None:
        close()
