"""Admission control: token buckets, latency EWMA, the shedding ladder.

The serving front end admits a request only after three gates:

1. **bounded queue** — queued + in-flight requests may never exceed
   ``max_concurrency + max_queue_depth``; past that the request is shed
   with a 429 regardless of tenant (the queue cannot grow without
   bound, so neither can memory or tail latency).  This gate runs
   *before* the token bucket so a request shed for server-side load
   never debits the tenant's tokens;
2. **per-tenant token bucket** — each tenant refills at a configured
   rate with a burst allowance; an empty bucket is a per-tenant 429
   with a ``Retry-After`` telling the client exactly when a token will
   exist (no thundering-herd retry storms).  The bucket map itself is
   bounded (``max_tenants``, LRU eviction of idle buckets, shared
   overflow bucket past the cap) — the ``tenant`` parameter is
   client-controlled, so unbounded per-tenant state would be a memory
   DoS vector;
3. **the shedding ladder** — between "healthy" and "full" the
   controller degrades *answers* before it degrades *availability*, by
   mapping load pressure onto the resilience layer's degradation
   ladder (PR 2):

   ======================  =======================================
   pressure                admitted as
   ======================  =======================================
   ``< full_below``        requested method, full budget
   ``< fallback_below``    requested method with ``fallback=True``
                           (budget exhaustion descends the ladder)
   ``< 1.0``               ``index_only`` — the terminal rung,
                           guaranteed cheap
   ``>= 1.0``              shed: 429 + Retry-After
   ======================  =======================================

   Pressure is the max of queue occupancy (``depth / capacity``) and
   the latency signal (``ewma / (2 * target)``) — so a server whose
   queue looks short but whose requests got slow still starts
   degrading, and a server at 2x its target latency sheds even with
   queue space left.

Everything is lock-guarded and clock-injectable; the controller is
shared between asyncio route handlers and worker threads.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.resilience.failpoints import fail_point

#: Admission modes, healthiest first (mode of an admitted request).
MODE_FULL = "full"
MODE_FALLBACK = "fallback"
MODE_INDEX_ONLY = "index_only"
MODES = (MODE_FULL, MODE_FALLBACK, MODE_INDEX_ONLY)


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "_tokens", "_stamp", "_clock", "_lock")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._tokens = float(burst)
        self._stamp = clock()
        self._clock = clock
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._stamp = now

    def try_acquire(self, cost: float = 1.0) -> float:
        """Take *cost* tokens; returns 0.0 on success, else seconds until
        the bucket will hold *cost* tokens again (the Retry-After)."""
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= cost:
                self._tokens -= cost
                return 0.0
            return (cost - self._tokens) / self.rate

    def available(self) -> float:
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class LatencyEWMA:
    """Exponentially weighted moving average of request latency (ms)."""

    __slots__ = ("alpha", "_value", "_count", "_lock")

    def __init__(self, alpha: float = 0.2):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, latency_ms: float) -> None:
        with self._lock:
            if self._count == 0:
                self._value = latency_ms
            else:
                self._value += self.alpha * (latency_ms - self._value)
            self._count += 1

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict on one request."""

    admitted: bool
    mode: str  # MODE_FULL / MODE_FALLBACK / MODE_INDEX_ONLY, or "shed"
    pressure: float
    retry_after_s: float = 0.0
    reason: Optional[str] = None


class AdmissionController:
    """Bounded-queue admission with per-tenant rate limits and shedding.

    The route handler calls :meth:`admit` before queueing, brackets
    execution with :meth:`enqueued` / :meth:`started`, and reports
    completion through :meth:`finished` (which feeds the latency EWMA).
    """

    def __init__(
        self,
        max_concurrency: int = 8,
        max_queue_depth: int = 32,
        tenant_rate: float = 200.0,
        tenant_burst: float = 400.0,
        target_latency_ms: float = 250.0,
        full_below: float = 0.5,
        fallback_below: float = 0.8,
        ewma_alpha: float = 0.2,
        max_tenants: int = 1024,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {max_concurrency}")
        if max_queue_depth < 0:
            raise ValueError(f"max_queue_depth must be >= 0, got {max_queue_depth}")
        if max_tenants < 1:
            raise ValueError(f"max_tenants must be >= 1, got {max_tenants}")
        if not 0.0 < full_below <= fallback_below <= 1.0:
            raise ValueError(
                "thresholds must satisfy 0 < full_below <= fallback_below <= 1, "
                f"got {full_below} / {fallback_below}"
            )
        self.max_concurrency = max_concurrency
        self.max_queue_depth = max_queue_depth
        self.capacity = max_concurrency + max_queue_depth
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self.target_latency_ms = target_latency_ms
        self.full_below = full_below
        self.fallback_below = fallback_below
        self.latency = LatencyEWMA(alpha=ewma_alpha)
        self._clock = clock
        self._lock = threading.Lock()
        # LRU-ordered, bounded at max_tenants: tenant names arrive from
        # the network, so the map must not grow with attacker-chosen
        # keys.  Tenants past the cap share the overflow bucket.
        self.max_tenants = max_tenants
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._overflow_bucket = TokenBucket(
            tenant_rate, tenant_burst, clock=clock
        )
        self._queued = 0
        self._inflight = 0
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics.register_gauge("serve.queue_depth", lambda: self.queued)
        self.metrics.register_gauge("serve.inflight", lambda: self.inflight)
        self.metrics.register_gauge(
            "serve.pressure", lambda: round(self.pressure(), 4)
        )
        self.metrics.register_gauge(
            "serve.latency_ewma_ms", lambda: round(self.latency.value, 3)
        )

    # ------------------------------------------------------------------
    # Load signals
    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        with self._lock:
            return self._queued

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def depth(self) -> int:
        """Requests currently held by the server (queued + in-flight)."""
        with self._lock:
            return self._queued + self._inflight

    def pressure(self) -> float:
        """Unified load signal in [0, inf): >= 1.0 means shed.

        The queue component reaches 1.0 exactly when the bounded queue
        is full; the latency component reaches 1.0 when the EWMA hits
        twice the target (degradation starts well before, at
        ``full_below * 2 * target``).
        """
        occupancy = self.depth() / self.capacity
        latency_ratio = 0.0
        if self.target_latency_ms > 0 and self.latency.count:
            latency_ratio = self.latency.value / (2.0 * self.target_latency_ms)
        return max(occupancy, latency_ratio)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    #: How far into the LRU end :meth:`_bucket` looks for an evictable
    #: (fully refilled, hence long-idle) bucket before giving up and
    #: routing the new tenant to the shared overflow bucket.
    _EVICT_SCAN = 16

    def _bucket(self, tenant: str) -> TokenBucket:
        evicted = overflow = False
        try:
            with self._lock:
                bucket = self._buckets.get(tenant)
                if bucket is not None:
                    self._buckets.move_to_end(tenant)
                    return bucket
                if len(self._buckets) >= self.max_tenants:
                    # Evict an idle bucket: one refilled to burst grants
                    # its tenant nothing a fresh bucket wouldn't, so
                    # dropping it can't be used to bypass the limiter.
                    for name in list(
                        itertools.islice(iter(self._buckets), self._EVICT_SCAN)
                    ):
                        candidate = self._buckets[name]
                        if candidate.available() >= candidate.burst:
                            del self._buckets[name]
                            evicted = True
                            break
                if len(self._buckets) >= self.max_tenants:
                    # No idle bucket to reclaim: hold the memory bound
                    # and let the new tenant share the overflow bucket.
                    overflow = True
                    return self._overflow_bucket
                bucket = self._buckets[tenant] = TokenBucket(
                    self.tenant_rate, self.tenant_burst, clock=self._clock
                )
                return bucket
        finally:
            # Counters take their own locks; touch them only after the
            # admission lock is released (gauge callbacks registered on
            # this controller re-acquire it from the metrics side).
            if evicted:
                self.metrics.inc("serve.tenant_evictions")
            if overflow:
                self.metrics.inc("serve.tenant_overflow")

    def admit(self, tenant: str = "default", cost: float = 1.0) -> AdmissionDecision:
        """Decide whether (and how degraded) to run one request.

        Never raises except through the ``serve.admit`` failpoint; a
        shed decision carries the ``Retry-After`` hint in seconds.
        Server-side gates (queue capacity, overload pressure) run
        before the tenant bucket is charged: a request the server was
        going to shed anyway must not also burn the tenant's tokens.
        """
        fail_point("serve.admit", key=tenant)
        if self.depth() >= self.capacity:
            self.metrics.inc("serve.shed.queue_full")
            return AdmissionDecision(
                admitted=False,
                mode="shed",
                pressure=self.pressure(),
                retry_after_s=self._overload_retry_after(),
                reason="queue full",
            )
        pressure = self.pressure()
        if pressure >= 1.0:
            self.metrics.inc("serve.shed.overload")
            return AdmissionDecision(
                admitted=False,
                mode="shed",
                pressure=pressure,
                retry_after_s=self._overload_retry_after(),
                reason=f"overload (pressure {pressure:.2f})",
            )
        retry_after = self._bucket(tenant).try_acquire(cost)
        if retry_after > 0.0:
            self.metrics.inc("serve.shed.rate_limited")
            return AdmissionDecision(
                admitted=False,
                mode="shed",
                pressure=pressure,
                retry_after_s=retry_after,
                reason=f"tenant {tenant!r} over rate limit",
            )
        if pressure < self.full_below:
            mode = MODE_FULL
        elif pressure < self.fallback_below:
            mode = MODE_FALLBACK
        else:
            mode = MODE_INDEX_ONLY
        self.metrics.inc(f"serve.admitted.{mode}")
        return AdmissionDecision(admitted=True, mode=mode, pressure=pressure)

    def _overload_retry_after(self) -> float:
        """Retry hint under overload: time to drain ~half the queue."""
        ewma_s = max(self.latency.value, 1.0) / 1000.0
        per_slot = ewma_s / self.max_concurrency
        return max(0.05, round(per_slot * max(1, self.depth()) / 2.0, 3))

    # ------------------------------------------------------------------
    # Lifecycle bracketing (route handlers)
    # ------------------------------------------------------------------
    def enqueued(self) -> None:
        with self._lock:
            self._queued += 1

    def started(self) -> None:
        with self._lock:
            self._queued -= 1
            self._inflight += 1

    def abandoned(self) -> None:
        """An enqueued request left before starting (disconnect/drain)."""
        with self._lock:
            self._queued -= 1

    def finished(self, latency_ms: float) -> None:
        with self._lock:
            self._inflight -= 1
        self.latency.observe(latency_ms)
        self.metrics.observe("serve.request_ms", latency_ms)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            queued, inflight = self._queued, self._inflight
            tenants = len(self._buckets)
        return {
            "queued": queued,
            "inflight": inflight,
            "capacity": self.capacity,
            "pressure": round(self.pressure(), 4),
            "latency_ewma_ms": round(self.latency.value, 3),
            "tenants": tenants,
        }
