"""Overload-safe async serving front end.

Admission control (:mod:`repro.serving.admission`), zero-downtime
engine swaps (:mod:`repro.serving.swap`), transport-agnostic routing
(:mod:`repro.serving.routes`) and the stdlib asyncio HTTP/1.1 server
(:mod:`repro.serving.server`).
"""

from repro.serving.admission import (
    MODE_FALLBACK,
    MODE_FULL,
    MODE_INDEX_ONLY,
    AdmissionController,
    AdmissionDecision,
    LatencyEWMA,
    TokenBucket,
)
from repro.serving.routes import BadRequest, Request, Response, Router
from repro.serving.server import ServingServer, serve
from repro.serving.swap import EngineHandle, Generation, SwapResult

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BadRequest",
    "EngineHandle",
    "Generation",
    "LatencyEWMA",
    "MODE_FALLBACK",
    "MODE_FULL",
    "MODE_INDEX_ONLY",
    "Request",
    "Response",
    "Router",
    "ServingServer",
    "SwapResult",
    "TokenBucket",
    "serve",
]
