"""JSON routes for the serving front end.

The :class:`Router` owns everything request handling needs — the
:class:`~repro.serving.swap.EngineHandle`, the
:class:`~repro.serving.admission.AdmissionController`, the worker
pool, and the (optional) durability wrapper — and exposes a single
``async dispatch(request)``.  It is deliberately independent of HTTP
framing: tests drive it with hand-built :class:`Request` objects, and
:mod:`repro.serving.server` adds the socket/HTTP/1.1 layer on top.

Routes::

    GET  /health       liveness: always 200 while the process runs
    GET  /ready        readiness: 503 while a swap or drain is active
    GET  /metrics      MetricsRegistry.snapshot() as JSON
    GET  /search       q, k, method, timeout_ms, max_expansions,
    POST /search       fallback, tenant (also via X-Tenant header)
    POST /batch        {"queries": [...], "k":, "method":, ...}
    POST /insert       {"table":, "values": {...}} (durable when the
                       server was started over a durability dir)
    POST /admin/swap   build + atomically install a new engine
                       generation; {"source": "rebuild"|"recover"}

Request execution follows the admission verdict: ``full`` runs the
requested method, ``fallback`` forces the degradation ladder on,
``index_only`` pins the terminal rung, and a shed request is a 429
carrying ``Retry-After``.  Every admitted query gets a
:class:`~repro.resilience.budget.QueryBudget` carved from the
request's remaining deadline; a client disconnect poisons that budget
so the worker thread unwinds at its next cooperative tick instead of
finishing work nobody will read.
"""

from __future__ import annotations

import asyncio
import inspect
import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.engine import KeywordSearchEngine
from repro.obs.metrics import MetricsRegistry
from repro.resilience.budget import QueryBudget
from repro.resilience.degradation import KNOWN_METHODS
from repro.resilience.errors import QueryParseError, ReproError
from repro.serving.admission import (
    AdmissionController,
    MODE_FALLBACK,
    MODE_FULL,
    MODE_INDEX_ONLY,
)
from repro.serving.swap import EngineHandle


class Request:
    """One parsed request, transport-agnostic."""

    __slots__ = (
        "method",
        "path",
        "params",
        "headers",
        "body",
        "budget",
        "disconnected",
    )

    def __init__(
        self,
        method: str,
        path: str,
        params: Optional[Dict[str, str]] = None,
        headers: Optional[Dict[str, str]] = None,
        body: Optional[Dict[str, Any]] = None,
    ):
        self.method = method.upper()
        self.path = path
        self.params = params or {}
        self.headers = {k.lower(): v for k, v in (headers or {}).items()}
        self.body = body or {}
        #: Budget of the in-flight query, attached by the route so the
        #: transport can poison it on client disconnect.
        self.budget: Optional[QueryBudget] = None
        self.disconnected = False

    def cancel(self) -> None:
        """Transport-side disconnect: poison any in-flight budget."""
        self.disconnected = True
        budget = self.budget
        if budget is not None:
            budget.poison("client disconnected")

    def param(self, name: str, default: Any = None) -> Any:
        if name in self.params:
            return self.params[name]
        return self.body.get(name, default)

    @property
    def tenant(self) -> str:
        return str(
            self.param("tenant") or self.headers.get("x-tenant") or "default"
        )


class Response:
    """Status + JSON payload + extra headers."""

    __slots__ = ("status", "payload", "headers")

    def __init__(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ):
        self.status = status
        self.payload = payload
        self.headers = headers or {}


class BadRequest(ReproError):
    """Maps to a 400 without touching an engine."""


def _bad(message: str) -> Response:
    return Response(400, {"ok": False, "error": message})


def _shed_response(decision) -> Response:
    retry_s = max(0.001, decision.retry_after_s)
    return Response(
        429,
        {
            "ok": False,
            "error": "shed",
            "reason": decision.reason,
            "retry_after_s": round(retry_s, 3),
            "pressure": round(decision.pressure, 4),
        },
        headers={"Retry-After": str(max(1, int(retry_s + 0.999)))},
    )


def _parse_int(value: Any, name: str, lo: int = 1, hi: int = 1000) -> int:
    try:
        out = int(value)
    except (TypeError, ValueError):
        raise BadRequest(f"{name} must be an integer, got {value!r}")
    if not lo <= out <= hi:
        raise BadRequest(f"{name} must be in [{lo}, {hi}], got {out}")
    return out


def _parse_float(value: Any, name: str, lo: float = 0.0) -> float:
    try:
        out = float(value)
    except (TypeError, ValueError):
        raise BadRequest(f"{name} must be a number, got {value!r}")
    if out <= lo:
        raise BadRequest(f"{name} must be > {lo:g}, got {out:g}")
    return out


def _truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    return str(value).lower() in ("1", "true", "yes", "on")


def _accepts_budget(engine: Any) -> bool:
    """Does this engine's ``search`` take a ``budget=`` kwarg?

    The single :class:`KeywordSearchEngine` does; the sharded
    coordinator builds per-shard budgets internally and only accepts
    the ``timeout_ms`` / ``max_expansions`` shorthands.
    """
    cached = getattr(engine, "_accepts_budget_", None)
    if cached is None:
        try:
            cached = "budget" in inspect.signature(engine.search).parameters
        except (TypeError, ValueError):
            cached = False
        try:
            engine._accepts_budget_ = cached
        except AttributeError:
            pass
    return cached


class Router:
    """Route table + request execution over a swappable engine."""

    def __init__(
        self,
        handle: EngineHandle,
        admission: AdmissionController,
        executor,
        metrics: MetricsRegistry,
        db,
        durable=None,
        engine_builder: Optional[Callable[[], Any]] = None,
        default_timeout_ms: float = 2000.0,
        max_timeout_ms: float = 30000.0,
        default_k: int = 10,
        is_ready: Optional[Callable[[], bool]] = None,
        started_at: Optional[float] = None,
    ):
        self.handle = handle
        self.admission = admission
        self.executor = executor
        self.metrics = metrics
        self.db = db
        self.durable = durable
        #: Builds the *next* generation's engine over the current
        #: database.  Runs under the mutation lock so concurrent
        #: inserts can never produce a torn generation.  May accept a
        #: single argument: the *live* database at build time (see
        #: :meth:`_build_generation`).
        self.engine_builder = engine_builder or (
            lambda: _default_builder(self.db, self.metrics)
        )
        self.default_timeout_ms = default_timeout_ms
        self.max_timeout_ms = max_timeout_ms
        self.default_k = default_k
        self._is_ready = is_ready or (lambda: True)
        self._started_at = started_at if started_at is not None else time.time()
        #: Serialises mutations with generation builds and snapshots.
        self.mutation_lock = threading.Lock()
        # Created lazily inside the running loop: on 3.9 an asyncio
        # primitive built outside the loop binds the wrong one.
        self._slots: Optional[asyncio.Semaphore] = None

    @property
    def slots(self) -> asyncio.Semaphore:
        if self._slots is None:
            self._slots = asyncio.Semaphore(self.admission.max_concurrency)
        return self._slots

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def dispatch(self, request: Request) -> Response:
        route = (request.method, request.path)
        try:
            if request.path == "/health":
                return self._health()
            if request.path == "/ready":
                return self._ready()
            if request.path == "/metrics":
                return self._metrics()
            if request.path == "/search":
                if request.method not in ("GET", "POST"):
                    return self._method_not_allowed(request)
                return await self._search(request)
            if request.path == "/batch":
                if request.method != "POST":
                    return self._method_not_allowed(request)
                return await self._batch(request)
            if request.path == "/insert":
                if request.method != "POST":
                    return self._method_not_allowed(request)
                return await self._insert(request)
            if request.path == "/admin/swap":
                if request.method != "POST":
                    return self._method_not_allowed(request)
                return await self._swap(request)
            return Response(
                404, {"ok": False, "error": f"no route {request.path!r}"}
            )
        except BadRequest as exc:
            self.metrics.inc("serve.bad_requests")
            return _bad(str(exc))
        except QueryParseError as exc:
            self.metrics.inc("serve.bad_requests")
            return _bad(str(exc))
        except Exception as exc:  # pragma: no cover - last-resort guard
            self.metrics.inc("serve.internal_errors")
            return Response(
                500,
                {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "route": f"{route[0]} {route[1]}",
                },
            )

    def _method_not_allowed(self, request: Request) -> Response:
        return Response(
            405,
            {"ok": False, "error": f"{request.method} not allowed on {request.path}"},
        )

    # ------------------------------------------------------------------
    # Introspection routes
    # ------------------------------------------------------------------
    def _health(self) -> Response:
        return Response(
            200,
            {
                "ok": True,
                "status": "alive",
                "generation": self.handle.generation,
                "uptime_s": round(time.time() - self._started_at, 3),
            },
        )

    def _ready(self) -> Response:
        swapping = self.handle.swapping
        ready = self._is_ready() and not swapping
        payload = {
            "ok": ready,
            "status": "ready" if ready else "not_ready",
            "swapping": swapping,
            "generation": self.handle.generation,
            "admission": self.admission.stats(),
        }
        return Response(200 if ready else 503, payload)

    def _metrics(self) -> Response:
        return Response(200, {"ok": True, "metrics": self.metrics.snapshot()})

    # ------------------------------------------------------------------
    # /search
    # ------------------------------------------------------------------
    def _search_args(self, request: Request) -> Dict[str, Any]:
        text = request.param("q") or request.param("query")
        if not text or not str(text).strip():
            raise BadRequest("missing query parameter 'q'")
        k = _parse_int(request.param("k", self.default_k), "k")
        method = str(request.param("method", "schema"))
        if method not in KNOWN_METHODS:
            raise BadRequest(
                f"unknown method {method!r} (choices: {', '.join(KNOWN_METHODS)})"
            )
        timeout_ms = request.param("timeout_ms")
        if timeout_ms is None:
            timeout_ms = self.default_timeout_ms
        else:
            timeout_ms = min(
                _parse_float(timeout_ms, "timeout_ms"), self.max_timeout_ms
            )
        max_expansions = request.param("max_expansions")
        if max_expansions is not None:
            max_expansions = _parse_int(
                max_expansions, "max_expansions", lo=1, hi=100_000_000
            )
        expand = request.param("expand")
        if expand is not None:
            expand = str(expand).strip() or None
        if expand is not None:
            # "expand=spelling,synonyms" csv (or "all"); validated here
            # so a typo is a 400 before any engine work.
            from repro.query.pipeline import KNOWN_EXPANSIONS, parse_expand

            if expand.lower() in ("1", "true", "all"):
                expand = ",".join(KNOWN_EXPANSIONS)
            try:
                parse_expand(expand)
            except QueryParseError as exc:
                raise BadRequest(str(exc))
        facets = request.param("facets")
        if facets is not None:
            text_value = str(facets).strip().lower()
            if text_value in ("", "0", "false", "no", "off"):
                facets = None
            elif text_value in ("1", "true", "yes", "on", "auto"):
                facets = True
            # otherwise an explicit "table.column,..." list, passed through
        return {
            "text": str(text),
            "k": k,
            "method": method,
            "timeout_ms": timeout_ms,
            "max_expansions": max_expansions,
            "fallback": _truthy(request.param("fallback", False)),
            "expand": expand,
            "facets": facets,
            "highlight": _truthy(request.param("highlight", False)),
        }

    @staticmethod
    def _apply_mode(args: Dict[str, Any], mode: str) -> Dict[str, Any]:
        """Degrade the request per the admission verdict."""
        out = dict(args)
        if mode == MODE_FALLBACK:
            out["fallback"] = True
        elif mode == MODE_INDEX_ONLY:
            out["method"] = "index_only"
            out["fallback"] = False
        return out

    def _run_query(
        self,
        engine: Any,
        args: Dict[str, Any],
        budget: Optional[QueryBudget],
    ):
        if budget is not None and _accepts_budget(engine):
            search_kwargs: Dict[str, Any] = {
                "budget": budget,
                "fallback": args["fallback"],
            }
        else:
            search_kwargs = {
                "timeout_ms": args["timeout_ms"],
                "max_expansions": args["max_expansions"],
                "fallback": args["fallback"],
            }
        if args.get("expand") or args.get("facets") or args.get("highlight"):
            from repro.query.pipeline import execute_pipeline

            return execute_pipeline(
                engine,
                args["text"],
                k=args["k"],
                method=args["method"],
                expand=args.get("expand"),
                facets=args.get("facets"),
                highlight=bool(args.get("highlight")),
                **search_kwargs,
            )
        return engine.search(
            args["text"], k=args["k"], method=args["method"], **search_kwargs
        )

    async def _search(self, request: Request) -> Response:
        args = self._search_args(request)
        decision = self.admission.admit(request.tenant)
        if not decision.admitted:
            return _shed_response(decision)
        args = self._apply_mode(args, decision.mode)
        start_s = time.perf_counter()
        deadline_s = start_s + args["timeout_ms"] / 1000.0
        self.admission.enqueued()
        # Bounded queue wait: the deadline caps time-in-queue too, so a
        # request cannot sit queued longer than it would be allowed to
        # run.  Expiry or disconnect while queued sheds late (429).
        try:
            await asyncio.wait_for(
                self.slots.acquire(), timeout=max(0.001, deadline_s - time.perf_counter())
            )
        except asyncio.TimeoutError:
            self.admission.abandoned()
            self.metrics.inc("serve.shed.queue_timeout")
            return _shed_response(decision)
        self.admission.started()
        try:
            if request.disconnected:
                self.metrics.inc("serve.disconnects")
                return Response(499, {"ok": False, "error": "client disconnected"})
            remaining_ms = max(1.0, (deadline_s - time.perf_counter()) * 1000.0)
            budget = QueryBudget(
                timeout_ms=remaining_ms,
                max_nodes=args["max_expansions"],
                max_cns=args["max_expansions"],
                max_candidates=args["max_expansions"],
            )
            request.budget = budget
            if request.disconnected:
                budget.poison("client disconnected")
            loop = asyncio.get_running_loop()
            with self.handle.acquire() as (engine, generation):
                results = await loop.run_in_executor(
                    self.executor, self._run_query, engine, args, budget
                )
            elapsed_ms = (time.perf_counter() - start_s) * 1000.0
            payload = results.to_dict()
            payload.update(
                {
                    "ok": True,
                    "generation": generation,
                    "elapsed_ms": round(elapsed_ms, 3),
                    "admission": {
                        "mode": decision.mode,
                        "pressure": round(decision.pressure, 4),
                    },
                }
            )
            if budget.poisoned:
                self.metrics.inc("serve.cancelled")
                return Response(499, {"ok": False, "error": "client disconnected"})
            return Response(200, payload)
        finally:
            self.slots.release()
            self.admission.finished((time.perf_counter() - start_s) * 1000.0)

    # ------------------------------------------------------------------
    # /batch
    # ------------------------------------------------------------------
    async def _batch(self, request: Request) -> Response:
        queries = request.body.get("queries")
        if not isinstance(queries, list) or not queries:
            raise BadRequest("body must carry a non-empty 'queries' list")
        if not all(isinstance(q, str) and q.strip() for q in queries):
            raise BadRequest("every query must be a non-empty string")
        k = _parse_int(request.body.get("k", self.default_k), "k")
        method = str(request.body.get("method", "schema"))
        if method not in KNOWN_METHODS:
            raise BadRequest(f"unknown method {method!r}")
        timeout_ms = min(
            _parse_float(
                request.body.get("timeout_ms", self.default_timeout_ms),
                "timeout_ms",
            ),
            self.max_timeout_ms,
        )
        decision = self.admission.admit(request.tenant, cost=float(len(queries)))
        if not decision.admitted:
            return _shed_response(decision)
        mode_args = self._apply_mode(
            {"method": method, "fallback": False}, decision.mode
        )
        start_s = time.perf_counter()
        deadline_s = start_s + timeout_ms / 1000.0
        self.admission.enqueued()
        # Same bounded queue wait as /search: the per-query timeout
        # caps time-in-queue, so a batch cannot sit queued longer than
        # one of its queries would be allowed to run.
        try:
            await asyncio.wait_for(
                self.slots.acquire(),
                timeout=max(0.001, deadline_s - time.perf_counter()),
            )
        except asyncio.TimeoutError:
            self.admission.abandoned()
            self.metrics.inc("serve.shed.queue_timeout")
            return _shed_response(decision)
        self.admission.started()
        try:
            if request.disconnected:
                self.metrics.inc("serve.disconnects")
                return Response(499, {"ok": False, "error": "client disconnected"})
            # Poison channel only (no deadline of its own — each query
            # carries timeout_ms): a client disconnect mid-batch stops
            # the remaining queries instead of computing unread answers.
            budget = QueryBudget(timeout_ms=None)
            request.budget = budget
            if request.disconnected:
                budget.poison("client disconnected")
            loop = asyncio.get_running_loop()
            with self.handle.acquire() as (engine, generation):
                outcomes = await loop.run_in_executor(
                    self.executor,
                    lambda: self._run_batch(
                        engine,
                        queries,
                        k,
                        mode_args["method"],
                        timeout_ms,
                        mode_args["fallback"],
                        budget=budget,
                    ),
                )
            if budget.poisoned:
                self.metrics.inc("serve.cancelled")
                return Response(499, {"ok": False, "error": "client disconnected"})
            payload = {
                "ok": True,
                "generation": generation,
                "count": len(outcomes),
                "admission": {
                    "mode": decision.mode,
                    "pressure": round(decision.pressure, 4),
                },
                "results": outcomes,
                "elapsed_ms": round((time.perf_counter() - start_s) * 1000.0, 3),
            }
            return Response(200, payload)
        finally:
            self.slots.release()
            self.admission.finished((time.perf_counter() - start_s) * 1000.0)

    def _run_batch(
        self,
        engine: Any,
        queries,
        k: int,
        method: str,
        timeout_ms: float,
        fallback: bool,
        budget: Optional[QueryBudget] = None,
    ):
        search_many = getattr(engine, "search_many", None)
        if search_many is not None:
            outcomes = search_many(
                queries,
                k=k,
                method=method,
                timeout_ms=timeout_ms,
                fallback=fallback,
                detailed=True,
            )
            out = []
            for outcome in outcomes:
                entry = outcome.results.to_dict()
                entry["status"] = outcome.status
                if outcome.error is not None:
                    entry["error"] = {
                        "type": type(outcome.error).__name__,
                        "message": str(outcome.error),
                    }
                out.append(entry)
            return out
        # Engines without a batch executor (sharded coordinator): run
        # sequentially on this worker thread, checking the poison
        # channel between queries so a disconnect stops the batch.
        out = []
        for text in queries:
            if budget is not None and budget.poisoned:
                break
            results = engine.search(
                text, k=k, method=method, timeout_ms=timeout_ms, fallback=fallback
            )
            out.append(results.to_dict())
        return out

    # ------------------------------------------------------------------
    # /insert
    # ------------------------------------------------------------------
    async def _insert(self, request: Request) -> Response:
        table = request.body.get("table")
        values = request.body.get("values")
        if not table or not isinstance(values, dict):
            raise BadRequest("body must carry 'table' and a 'values' object")
        loop = asyncio.get_running_loop()
        start_s = time.perf_counter()
        try:
            tid = await loop.run_in_executor(
                self.executor, self._apply_insert, str(table), values
            )
        except Exception as exc:
            name = type(exc).__name__
            if "Schema" in name or isinstance(exc, (ValueError, KeyError)):
                raise BadRequest(f"{name}: {exc}")
            raise
        self.metrics.inc("serve.inserts")
        return Response(
            200,
            {
                "ok": True,
                "tuple": [tid.table, tid.rowid],
                "durable": self.durable is not None,
                "generation": self.handle.generation,
                "elapsed_ms": round((time.perf_counter() - start_s) * 1000.0, 3),
            },
        )

    def _apply_insert(self, table: str, values: Dict[str, Any]):
        """Mutation path: validated, serialised, incrementally refreshed.

        The mutation lock serialises inserts against generation builds
        (``/admin/swap``) and durable snapshots: a new generation is
        always built from a database that is not mid-mutation, which is
        what the mutation-during-swap race tests pin down.
        """
        with self.mutation_lock:
            if self.durable is not None:
                tid = self.durable.insert(table, **values)
            else:
                tid = self.db.insert(table, **values)
                self._refresh_current()
            return tid

    def _refresh_current(self) -> None:
        with self.handle.acquire() as (engine, _):
            refresh = getattr(engine, "refresh", None)
            if refresh is not None:
                refresh()
            else:
                engine._sync_version()

    # ------------------------------------------------------------------
    # /admin/swap
    # ------------------------------------------------------------------
    async def _swap(self, request: Request) -> Response:
        source = str(request.body.get("source", "rebuild"))
        if source not in ("rebuild", "recover"):
            raise BadRequest(f"unknown swap source {source!r}")
        if source == "recover" and self.durable is None:
            raise BadRequest("swap source 'recover' requires a durability dir")
        drain_timeout_s = float(request.body.get("drain_timeout_s", 30.0))
        loop = asyncio.get_running_loop()
        start_s = time.perf_counter()
        result = await loop.run_in_executor(
            self.executor, self._perform_swap, source, drain_timeout_s
        )
        return Response(
            200,
            {
                "ok": True,
                "generation": result.generation,
                "previous_generation": result.previous_generation,
                "drained": result.drained,
                "drain_ms": round(result.drain_ms, 3),
                "source": source,
                "elapsed_ms": round((time.perf_counter() - start_s) * 1000.0, 3),
            },
        )

    def _perform_swap(self, source: str, drain_timeout_s: float):
        """Build the next generation and flip to it.

        Runs on a worker thread.  Only the build and the pointer flip
        happen under the mutation lock — inserts stall for the build's
        duration (tens of milliseconds on the bundled datasets) while
        *queries keep flowing on the old generation*; that trade is
        what guarantees the new generation is never torn.  The drain —
        waiting out queries pinned to the old generation, potentially
        ``drain_timeout_s`` — runs *after* the lock is released, so a
        slow old-generation query never stalls inserts or other swaps.
        """
        with self.mutation_lock:
            if source == "recover":
                new_engine = self._recover_generation()
            else:
                new_engine = self._build_generation()
            _warm_engine(new_engine)
            old = self.handle.flip(new_engine)
            # Future mutations must land in the live generation's
            # database and refresh the live engine, not the retired
            # ones — a recovered generation carries a *new* Database
            # object rebuilt from snapshot + WAL.
            self.db = new_engine.db
            if self.durable is not None:
                self.durable.engine = new_engine
                self.durable.db = new_engine.db
        return self.handle.drain(old, drain_timeout_s=drain_timeout_s)

    def _build_generation(self):
        """Invoke the configured builder over the *live* database.

        A builder that accepts an argument is handed ``self.db`` at
        build time — never a database captured at boot, which after a
        ``recover`` swap would be the retired pre-recovery object and
        would silently drop acknowledged inserts from the new
        generation.  Zero-argument builders (tests, benchmarks that
        never re-point the database) are called as-is.
        """
        builder = self.engine_builder
        try:
            params = inspect.signature(builder).parameters
        except (TypeError, ValueError):
            params = {}
        if params:
            return builder(self.db)
        return builder()

    def _recover_generation(self):
        """Checkpoint, then rebuild the next generation from disk.

        Exercises the full durability path on a live server: snapshot
        the current state, replay it back through
        :func:`~repro.durability.recovery.recover_engine`, and serve
        the recovered engine.  The WAL handle stays with the existing
        :class:`DurableEngine`; only the serving engine is replaced.
        """
        from repro.durability.recovery import recover_engine

        self.durable.snapshot()
        engine, _ = recover_engine(
            self.durable.root_dir, metrics=self.metrics, trace=False
        )
        return engine


def _default_builder(db, metrics: MetricsRegistry):
    return KeywordSearchEngine(db, metrics=metrics)


def _warm_engine(engine: Any) -> None:
    """Force-build the hot substrates before the generation serves.

    A generation must be ready the instant it is flipped in — lazy
    substrate builds after the flip would hand the first unlucky
    queries the full cold-build cost (and a failed build would surface
    as query errors instead of a failed swap).
    """
    warm = getattr(engine, "warm", None)
    if warm is not None:
        warm()
        return
    inner = getattr(engine, "engine", None)
    target = inner if inner is not None else engine
    getattr(target, "index", None)  # cached_property: builds on access
