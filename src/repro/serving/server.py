"""The asyncio HTTP/1.1 front end (stdlib only).

:class:`ServingServer` wires the whole overload-safe serving stack::

    db ──> EngineHandle(generation 1: KeywordSearchEngine | sharded)
            │                         ▲
            │   AdmissionController   │ /admin/swap builds gen N+1
            ▼                         │ under the mutation lock
    Router.dispatch  ◄── HTTP/1.1 framing (this module)
            │
            ▼
    ThreadPoolExecutor (max_concurrency workers) runs the engine

Design points:

* **hand-rolled HTTP/1.1** over ``asyncio.start_server``: request line
  + headers + Content-Length body, keep-alive by default, bounded
  header/body sizes (413/431 on breach) — no dependencies;
* **disconnect watching** — while a request executes, a reader task
  keeps draining the socket; EOF means the client hung up, which
  cancels the request (its :class:`QueryBudget` is poisoned, the
  worker unwinds at its next cooperative tick).  Bytes that arrive
  instead of EOF are kept for the next pipelined request;
* **graceful shutdown** — SIGTERM/SIGINT stop the listener, flip
  ``/ready`` to 503, let in-flight requests finish under
  ``drain_timeout_s``, then cancel stragglers and shut the pool down.
  :meth:`run` returns 0 on a clean drain so the CLI can exit honestly;
* **thread embedding** — :meth:`start_in_thread` runs the whole loop
  on a daemon thread for tests and benchmarks; :meth:`stop` is
  thread-safe.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.obs.metrics import MetricsRegistry
from repro.serving.admission import AdmissionController
from repro.serving.routes import Request, Response, Router
from repro.serving.swap import EngineHandle

MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    499: "Client Closed Request",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _BadHttp(Exception):
    """Malformed framing; carries the status to answer with."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class _Connection:
    """Buffered reader that can watch for client disconnects.

    The watch task keeps reading the socket while a request executes;
    data that arrives is buffered (pipelined requests survive), EOF
    resolves the watch — that is the disconnect signal.
    """

    __slots__ = ("reader", "_buf", "eof")

    def __init__(self, reader: asyncio.StreamReader):
        self.reader = reader
        self._buf = bytearray()
        self.eof = False

    async def _fill(self) -> bool:
        if self.eof:
            return False
        chunk = await self.reader.read(65536)
        if not chunk:
            self.eof = True
            return False
        self._buf.extend(chunk)
        return True

    async def read_until(self, sep: bytes, limit: int) -> bytes:
        while True:
            idx = self._buf.find(sep)
            if idx >= 0:
                end = idx + len(sep)
                out = bytes(self._buf[:end])
                del self._buf[:end]
                return out
            if len(self._buf) > limit:
                raise _BadHttp(431, "headers too large")
            if not await self._fill():
                if self._buf:
                    raise _BadHttp(400, "truncated request")
                raise EOFError  # clean close between requests

    async def read_exactly(self, n: int) -> bytes:
        while len(self._buf) < n:
            if not await self._fill():
                raise _BadHttp(400, "truncated body")
        out = bytes(self._buf[:n])
        del self._buf[:n]
        return out

    async def watch_disconnect(self) -> None:
        """Resolve only when the peer closes; buffer anything else."""
        while await self._fill():
            pass


class ServingServer:
    """Overload-safe HTTP serving front end over one database."""

    def __init__(
        self,
        engine: Any,
        host: str = "127.0.0.1",
        port: int = 8080,
        max_concurrency: int = 8,
        max_queue_depth: int = 32,
        tenant_rate: float = 500.0,
        tenant_burst: float = 1000.0,
        target_latency_ms: float = 250.0,
        default_timeout_ms: float = 2000.0,
        drain_timeout_s: float = 10.0,
        durable_dir: Optional[str] = None,
        engine_builder: Optional[Callable[[], Any]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.host = host
        self.port = port
        self.drain_timeout_s = drain_timeout_s
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        durable = None
        if durable_dir is not None:
            from repro.durability import DurableEngine

            durable = DurableEngine(engine, durable_dir, metrics=self.metrics)
        self.durable = durable
        self.handle = EngineHandle(engine, metrics=self.metrics)
        self.admission = AdmissionController(
            max_concurrency=max_concurrency,
            max_queue_depth=max_queue_depth,
            tenant_rate=tenant_rate,
            tenant_burst=tenant_burst,
            target_latency_ms=target_latency_ms,
            metrics=self.metrics,
        )
        self.executor = ThreadPoolExecutor(
            max_workers=max_concurrency + 2,  # +2: swap/insert never starve
            thread_name_prefix="serve",
        )
        self.router = Router(
            handle=self.handle,
            admission=self.admission,
            executor=self.executor,
            metrics=self.metrics,
            db=engine.db,
            durable=durable,
            engine_builder=engine_builder,
            default_timeout_ms=default_timeout_ms,
            is_ready=lambda: not self._draining,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        self._drained_clean = True
        self._interrupted = False
        self._stopped: Optional[asyncio.Event] = None  # created in-loop
        self._inflight_requests = 0
        self._idle: Optional[asyncio.Event] = None  # created in-loop
        self._thread: Optional[threading.Thread] = None
        self._thread_ready = threading.Event()
        self._thread_exit: Optional[int] = None
        self.metrics.register_gauge(
            "serve.draining", lambda: int(self._draining)
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (main-thread loops only)."""
        loop = self._loop
        if loop is None:
            return
        def _on_signal(sig: int) -> None:
            self._interrupted = True
            asyncio.ensure_future(self.shutdown(f"signal {sig}"))

        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, _on_signal, sig)
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-main thread or unsupported platform: the embedder
                # (tests, CLI KeyboardInterrupt path) drives shutdown.
                pass

    async def serve_until_stopped(self) -> None:
        if self._server is None:
            await self.start()
            self.install_signal_handlers()
        await self._stopped.wait()

    async def shutdown(self, reason: str = "shutdown") -> bool:
        """Stop accepting, drain in-flight under the deadline, stop.

        Returns True when every in-flight request finished before the
        drain deadline (the CLI turns that into the exit code).
        """
        if self._draining:
            self._stopped.set()
            return True
        self._draining = True
        self.metrics.inc("serve.shutdowns")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=self.drain_timeout_s)
        except asyncio.TimeoutError:
            drained = False
            self.metrics.inc("serve.drain_timeouts")
        self._drained_clean = drained
        self.executor.shutdown(wait=drained)
        if self.durable is not None:
            self.durable.close()
        self._stopped.set()
        return drained

    def run(self) -> int:
        """Blocking entry point for ``repro serve``.

        Exit codes: 0 = explicit clean stop, 130 = signal-interrupted
        after a clean drain, 1 = drain deadline elapsed with requests
        still in flight.
        """

        async def _main() -> None:
            await self.start()
            self.install_signal_handlers()
            # flush: supervisors and scripts read this line through a
            # pipe to learn the bound port (--port 0 picks a free one).
            print(
                f"serving on http://{self.host}:{self.port} "
                f"(generation {self.handle.generation}); "
                "SIGTERM or Ctrl-C drains and exits",
                flush=True,
            )
            await self._stopped.wait()

        asyncio.run(_main())
        if not self._drained_clean:
            return 1
        return 130 if self._interrupted else 0

    # ------------------------------------------------------------------
    # Thread embedding (tests and benchmarks)
    # ------------------------------------------------------------------
    def start_in_thread(self, timeout_s: float = 10.0) -> "ServingServer":
        """Run the server loop on a daemon thread; returns once ready."""

        def _thread_main() -> None:
            async def _main() -> None:
                await self.start()
                self._thread_ready.set()
                await self._stopped.wait()

            try:
                asyncio.run(_main())
            finally:
                self._thread_ready.set()  # unblock a failed start

        self._thread = threading.Thread(
            target=_thread_main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._thread_ready.wait(timeout_s):
            raise RuntimeError("server thread failed to start in time")
        if self._server is None:
            raise RuntimeError("server failed to bind")
        return self

    def stop(self, timeout_s: float = 15.0) -> bool:
        """Thread-safe graceful stop; returns True on a clean drain."""
        loop = self._loop
        if loop is None or self._stopped is None:
            return True
        future = asyncio.run_coroutine_threadsafe(self.shutdown("stop()"), loop)
        try:
            drained = bool(future.result(timeout_s))
        except Exception:
            drained = False
        thread = self._thread
        if thread is not None:
            thread.join(timeout_s)
        return drained

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(reader)
        try:
            while not self._draining:
                try:
                    request, keep_alive = await self._read_request(conn)
                except EOFError:
                    break
                except _BadHttp as exc:
                    await self._write_response(
                        writer,
                        Response(exc.status, {"ok": False, "error": str(exc)}),
                        keep_alive=False,
                    )
                    break
                response = await self._execute(conn, request)
                if request.disconnected or conn.eof:
                    break
                keep_alive = keep_alive and not self._draining
                await self._write_response(writer, response, keep_alive=keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _execute(self, conn: _Connection, request: Request) -> Response:
        """Dispatch one request, watching the socket for a disconnect."""
        self._request_started()
        watcher = asyncio.ensure_future(conn.watch_disconnect())
        task = asyncio.ensure_future(self.router.dispatch(request))
        try:
            done, _ = await asyncio.wait(
                {watcher, task}, return_when=asyncio.FIRST_COMPLETED
            )
            if task not in done:
                # The socket resolved first: the client hung up while
                # the request was queued or executing.  Poison the
                # budget and let the worker unwind cooperatively.
                request.cancel()
                self.metrics.inc("serve.disconnects")
            return await task
        finally:
            if not watcher.done():
                watcher.cancel()
                try:
                    await watcher
                except (asyncio.CancelledError, Exception):
                    pass
            self._request_finished()

    def _request_started(self) -> None:
        self._inflight_requests += 1
        self._idle.clear()

    def _request_finished(self) -> None:
        self._inflight_requests -= 1
        if self._inflight_requests <= 0:
            self._idle.set()

    # ------------------------------------------------------------------
    # HTTP framing
    # ------------------------------------------------------------------
    async def _read_request(self, conn: _Connection) -> Tuple[Request, bool]:
        head = await conn.read_until(b"\r\n\r\n", MAX_HEADER_BYTES)
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadHttp(400, f"malformed request line {lines[0]!r}")
        method, target, version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            if ":" not in line:
                raise _BadHttp(400, f"malformed header {line!r}")
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        split = urlsplit(target)
        params = {k: v for k, v in parse_qsl(split.query)}
        body: Dict[str, Any] = {}
        length_raw = headers.get("content-length", "0")
        try:
            length = int(length_raw)
        except ValueError:
            raise _BadHttp(400, f"bad Content-Length {length_raw!r}")
        if length < 0 or length > MAX_BODY_BYTES:
            raise _BadHttp(413, f"body of {length} bytes refused")
        if length:
            raw = await conn.read_exactly(length)
            content_type = headers.get("content-type", "application/json")
            if "json" in content_type or not content_type:
                try:
                    parsed = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise _BadHttp(400, f"bad JSON body: {exc}")
                if not isinstance(parsed, dict):
                    raise _BadHttp(400, "JSON body must be an object")
                body = parsed
            else:
                raise _BadHttp(400, f"unsupported content type {content_type!r}")
        connection = headers.get("connection", "").lower()
        keep_alive = version != "HTTP/1.0" and connection != "close"
        self.metrics.inc("serve.requests")
        return Request(method, split.path, params, headers, body), keep_alive

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        response: Response,
        keep_alive: bool,
    ) -> None:
        payload = json.dumps(response.payload).encode("utf-8")
        status_text = _STATUS_TEXT.get(response.status, "Unknown")
        head_lines = [
            f"HTTP/1.1 {response.status} {status_text}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in response.headers.items():
            head_lines.append(f"{name}: {value}")
        head = ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + payload)
        await writer.drain()
        self.metrics.inc(f"serve.responses.{response.status}")


def serve(
    engine: Any,
    host: str = "127.0.0.1",
    port: int = 8080,
    **kwargs: Any,
) -> int:
    """Build a :class:`ServingServer` and block until it exits."""
    return ServingServer(engine, host=host, port=port, **kwargs).run()
