"""Axiomatic evaluation of XML keyword search (Liu et al., VLDB 08).

Slides 107-109: instead of benchmarks, formalise intuitions as axioms
and check whether an engine's behaviour on *pairs* of similar inputs is
ever abnormal (assuming AND semantics):

* **data monotonicity** — adding a data node never removes results.
  Two flavours are implemented: ``count`` (the result count does not
  decrease) and ``preserve`` (every old result is still a result);
* **query monotonicity** — adding a query keyword never increases the
  result count;
* **data consistency** — every *new* result after a data addition
  contains the added node;
* **query consistency** — every *new* result after adding a query
  keyword contains the new keyword (slide 109's example).

An *engine* is any callable ``(root: XmlNode, keywords) -> set of
result-root Deweys``; adapters for SLCA / ELCA / all-LCA live in
:func:`standard_engines`.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.index.text import tokenize
from repro.xml_search.elca import elca_candidates_verify
from repro.xml_search.slca import lca_candidates, slca_indexed_lookup_eager
from repro.xmltree.build import text_element
from repro.xmltree.index import XmlKeywordIndex
from repro.xmltree.node import Dewey, XmlNode

Engine = Callable[[XmlNode, Sequence[str]], Set[Dewey]]


def slca_engine(root: XmlNode, keywords: Sequence[str]) -> Set[Dewey]:
    index = XmlKeywordIndex(root)
    return set(slca_indexed_lookup_eager(index.match_lists(list(keywords))))


def elca_engine(root: XmlNode, keywords: Sequence[str]) -> Set[Dewey]:
    index = XmlKeywordIndex(root)
    return set(elca_candidates_verify(index.match_lists(list(keywords))))


def all_lca_engine(root: XmlNode, keywords: Sequence[str]) -> Set[Dewey]:
    index = XmlKeywordIndex(root)
    return set(lca_candidates(index.match_lists(list(keywords))))


def standard_engines() -> Dict[str, Engine]:
    return {
        "slca": slca_engine,
        "elca": elca_engine,
        "all-lca": all_lca_engine,
    }


@dataclass
class AxiomReport:
    """Outcome of checking one axiom over a set of perturbations."""

    axiom: str
    checks: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def satisfied(self) -> bool:
        return not self.violations

    @property
    def violation_rate(self) -> float:
        return len(self.violations) / self.checks if self.checks else 0.0


def _clone(root: XmlNode) -> XmlNode:
    return copy.deepcopy(root)


def _subtree_contains_node(result: Dewey, node: Dewey) -> bool:
    return node[: len(result)] == result


def _subtree_contains_keyword(
    root: XmlNode, result: Dewey, keyword: str
) -> bool:
    node = root.node_at(result)
    if node is None:
        return False
    tokens = set(tokenize(node.text()))
    for descendant in node.descendants(include_self=True):
        tokens.update(tokenize(descendant.tag))
    return keyword.lower() in tokens


def _add_keyword_node(
    root: XmlNode, parent: XmlNode, keyword: str, tag: str = "note"
) -> XmlNode:
    return parent.add_child(text_element(tag, keyword))


def check_data_monotonicity(
    engine: Engine,
    root: XmlNode,
    keywords: Sequence[str],
    insertion_parents: Sequence[Dewey],
    mode: str = "preserve",
) -> AxiomReport:
    """Add a node containing an existing query keyword at each parent."""
    if mode not in ("preserve", "count"):
        raise ValueError("mode must be 'preserve' or 'count'")
    report = AxiomReport(f"data-monotonicity[{mode}]")
    before = engine(root, keywords)
    for parent_dewey in insertion_parents:
        for keyword in keywords:
            mutated = _clone(root)
            parent = mutated.node_at(parent_dewey)
            if parent is None:
                continue
            _add_keyword_node(mutated, parent, keyword)
            after = engine(mutated, keywords)
            report.checks += 1
            if mode == "count":
                if len(after) < len(before):
                    report.violations.append(
                        f"count {len(before)} -> {len(after)} after adding "
                        f"{keyword!r} under {parent_dewey}"
                    )
            else:
                missing = before - after
                if missing:
                    report.violations.append(
                        f"results {sorted(missing)} lost after adding "
                        f"{keyword!r} under {parent_dewey}"
                    )
    return report


def check_data_consistency(
    engine: Engine,
    root: XmlNode,
    keywords: Sequence[str],
    insertion_parents: Sequence[Dewey],
) -> AxiomReport:
    """Every new result after a data addition must contain the new node."""
    report = AxiomReport("data-consistency")
    before = engine(root, keywords)
    for parent_dewey in insertion_parents:
        for keyword in keywords:
            mutated = _clone(root)
            parent = mutated.node_at(parent_dewey)
            if parent is None:
                continue
            new_node = _add_keyword_node(mutated, parent, keyword)
            after = engine(mutated, keywords)
            report.checks += 1
            for result in after - before:
                if not _subtree_contains_node(result, new_node.dewey):
                    report.violations.append(
                        f"new result {result} does not contain added node "
                        f"{new_node.dewey}"
                    )
    return report


def check_query_monotonicity(
    engine: Engine,
    root: XmlNode,
    keywords: Sequence[str],
    extra_keywords: Sequence[str],
) -> AxiomReport:
    """Adding a keyword must not increase the result count (AND)."""
    report = AxiomReport("query-monotonicity")
    before = engine(root, keywords)
    for extra in extra_keywords:
        if extra.lower() in {k.lower() for k in keywords}:
            continue
        after = engine(root, list(keywords) + [extra])
        report.checks += 1
        if len(after) > len(before):
            report.violations.append(
                f"count {len(before)} -> {len(after)} after adding "
                f"keyword {extra!r}"
            )
    return report


def check_query_consistency(
    engine: Engine,
    root: XmlNode,
    keywords: Sequence[str],
    extra_keywords: Sequence[str],
) -> AxiomReport:
    """Every new result after adding a keyword contains that keyword."""
    report = AxiomReport("query-consistency")
    before = engine(root, keywords)
    for extra in extra_keywords:
        if extra.lower() in {k.lower() for k in keywords}:
            continue
        after = engine(root, list(keywords) + [extra])
        report.checks += 1
        for result in after - before:
            if not _subtree_contains_keyword(root, result, extra):
                report.violations.append(
                    f"new result {result} lacks new keyword {extra!r}"
                )
    return report


def axiom_matrix(
    engines: Dict[str, Engine],
    root: XmlNode,
    keywords: Sequence[str],
    extra_keywords: Sequence[str],
    seed: int = 41,
    n_insertions: int = 8,
) -> Dict[str, Dict[str, AxiomReport]]:
    """Satisfaction matrix: engine -> axiom -> report (bench E16)."""
    rng = random.Random(seed)
    internal = [
        n.dewey
        for n in root.descendants(include_self=True)
        if n.children
    ]
    parents = (
        rng.sample(internal, min(n_insertions, len(internal)))
        if internal
        else [root.dewey]
    )
    matrix: Dict[str, Dict[str, AxiomReport]] = {}
    for name, engine in engines.items():
        matrix[name] = {
            "data-monotonicity": check_data_monotonicity(
                engine, root, keywords, parents, mode="preserve"
            ),
            "data-monotonicity-count": check_data_monotonicity(
                engine, root, keywords, parents, mode="count"
            ),
            "data-consistency": check_data_consistency(
                engine, root, keywords, parents
            ),
            "query-monotonicity": check_query_monotonicity(
                engine, root, keywords, extra_keywords
            ),
            "query-consistency": check_query_consistency(
                engine, root, keywords, extra_keywords
            ),
        }
    return matrix
