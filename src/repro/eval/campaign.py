"""INEX-style evaluation campaigns (slides 104-106 operationalised).

A *topic* is a query plus assessor ground truth: per result root, a
graded relevance (0..1).  A campaign runs several engines over all
topics and produces a leaderboard of mean AgP — the slide-106 metric —
with per-topic gP@k available for drill-down.  This is the programmatic
substitute for INEX's human assessment pipeline (see DESIGN.md's
substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.eval.inex import (
    average_generalized_precision,
    generalized_precision_at_k,
)
from repro.xmltree.node import Dewey, XmlNode

#: An engine returns result roots in rank order for a keyword query.
RankedEngine = Callable[[XmlNode, Sequence[str]], List[Dewey]]


@dataclass(frozen=True)
class Topic:
    """One benchmark topic: query + graded ground truth."""

    topic_id: str
    keywords: Tuple[str, ...]
    relevance: Dict[Dewey, float]  # result root -> grade in [0, 1]

    def grade(self, result: Dewey) -> float:
        return self.relevance.get(result, 0.0)


@dataclass
class TopicResult:
    topic_id: str
    agp: float
    gp_at: Dict[int, float]


@dataclass
class CampaignReport:
    engine: str
    topics: List[TopicResult]

    @property
    def mean_agp(self) -> float:
        if not self.topics:
            return 0.0
        return sum(t.agp for t in self.topics) / len(self.topics)

    def mean_gp_at(self, k: int) -> float:
        values = [t.gp_at.get(k, 0.0) for t in self.topics]
        return sum(values) / len(values) if values else 0.0


def evaluate_topic(
    engine: RankedEngine,
    document: XmlNode,
    topic: Topic,
    cutoffs: Sequence[int] = (1, 3, 5, 10),
) -> TopicResult:
    ranked = engine(document, list(topic.keywords))
    grades = [topic.grade(result) for result in ranked]
    return TopicResult(
        topic_id=topic.topic_id,
        agp=average_generalized_precision(grades),
        gp_at={
            k: generalized_precision_at_k(grades, k) if grades else 0.0
            for k in cutoffs
        },
    )


def run_campaign(
    engines: Dict[str, RankedEngine],
    document: XmlNode,
    topics: Sequence[Topic],
    cutoffs: Sequence[int] = (1, 3, 5, 10),
) -> List[CampaignReport]:
    """Evaluate every engine on every topic; leaderboard by mean AgP."""
    reports = []
    for name, engine in engines.items():
        topic_results = [
            evaluate_topic(engine, document, topic, cutoffs) for topic in topics
        ]
        reports.append(CampaignReport(name, topic_results))
    reports.sort(key=lambda r: (-r.mean_agp, r.engine))
    return reports


def leaderboard_rows(
    reports: Sequence[CampaignReport], cutoffs: Sequence[int] = (1, 5)
) -> List[Tuple[str, ...]]:
    """Printable leaderboard rows: engine, AgP, gP@k..."""
    rows = []
    for report in reports:
        row = [report.engine, f"{report.mean_agp:.3f}"]
        for k in cutoffs:
            row.append(f"{report.mean_gp_at(k):.3f}")
        rows.append(tuple(row))
    return rows
