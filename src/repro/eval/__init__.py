"""Evaluation methodology (tutorial slides 104-109).

INEX-style character-level metrics with the tolerance-to-irrelevance
reading model, and the axiomatic framework of Liu et al. (VLDB 08):
data/query monotonicity and consistency checks applied to any XML
keyword search engine.
"""

from repro.eval.inex import (
    char_precision_recall_f,
    result_score_with_tolerance,
    generalized_precision_at_k,
    average_generalized_precision,
)
from repro.eval.campaign import (
    Topic,
    CampaignReport,
    run_campaign,
    leaderboard_rows,
)
from repro.eval.axioms import (
    AxiomReport,
    check_data_monotonicity,
    check_query_monotonicity,
    check_data_consistency,
    check_query_consistency,
    axiom_matrix,
)

__all__ = [
    "char_precision_recall_f",
    "result_score_with_tolerance",
    "generalized_precision_at_k",
    "average_generalized_precision",
    "Topic",
    "CampaignReport",
    "run_campaign",
    "leaderboard_rows",
    "AxiomReport",
    "check_data_monotonicity",
    "check_query_monotonicity",
    "check_data_consistency",
    "check_query_consistency",
    "axiom_matrix",
]
