"""INEX-style evaluation metrics (slides 104-106).

INEX assessors highlight relevant character ranges; a retrieved result
fragment is scored at character granularity:

* precision — fraction of the *read* characters that are relevant,
* recall    — fraction of relevant characters retrieved,
* F-measure — their harmonic mean,

with the **tolerance-to-irrelevance** reading model: the user reads a
result's characters in order and stops after ``tolerance`` consecutive
irrelevant characters (slide 105's "assume user stops reading when
there are too many consecutive non-relevant result fragments").

Ranked lists are scored by generalized precision gP@k (mean score of the
first k results) and AgP (mean of gP@k over all k) — slide 106.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

Interval = Tuple[int, int]  # [start, end) character range


def _to_set(intervals: Sequence[Interval]) -> Set[int]:
    out: Set[int] = set()
    for start, end in intervals:
        if end < start:
            raise ValueError("interval end before start")
        out.update(range(start, end))
    return out


def read_prefix_with_tolerance(
    result: Interval, relevant: Sequence[Interval], tolerance: int
) -> Set[int]:
    """Characters actually read under the tolerance model.

    The user reads result characters left to right and abandons the
    result after `tolerance` consecutive irrelevant characters (those
    characters are still read — they are the wasted effort precision
    charges for).
    """
    relevant_chars = _to_set(relevant)
    start, end = result
    read: Set[int] = set()
    consecutive_irrelevant = 0
    for position in range(start, end):
        read.add(position)
        if position in relevant_chars:
            consecutive_irrelevant = 0
        else:
            consecutive_irrelevant += 1
            if consecutive_irrelevant >= tolerance:
                break
    return read


def char_precision_recall_f(
    read_chars: Set[int], relevant: Sequence[Interval]
) -> Tuple[float, float, float]:
    """Character precision / recall / F of one read set."""
    relevant_chars = _to_set(relevant)
    if not read_chars:
        return (0.0, 0.0, 0.0)
    overlap = len(read_chars & relevant_chars)
    precision = overlap / len(read_chars)
    recall = overlap / len(relevant_chars) if relevant_chars else 0.0
    if precision + recall == 0:
        return (precision, recall, 0.0)
    f = 2 * precision * recall / (precision + recall)
    return (precision, recall, f)


def result_score_with_tolerance(
    result: Interval, relevant: Sequence[Interval], tolerance: int = 20
) -> float:
    """F-measure of one result under the tolerance reading model."""
    read = read_prefix_with_tolerance(result, relevant, tolerance)
    __, __, f = char_precision_recall_f(read, relevant)
    return f


def generalized_precision_at_k(scores: Sequence[float], k: int) -> float:
    """gP@k: average score of the first k results (slide 106)."""
    if k <= 0:
        raise ValueError("k must be >= 1")
    window = list(scores[:k])
    if not window:
        return 0.0
    return sum(window) / k


def average_generalized_precision(scores: Sequence[float]) -> float:
    """AgP: mean of gP@k over all k = 1..n."""
    if not scores:
        return 0.0
    return sum(
        generalized_precision_at_k(scores, k) for k in range(1, len(scores) + 1)
    ) / len(scores)
