"""Product / e-commerce entity table (Keyword++ setting, slides 95-99).

A single wide entity table mixing categorical (brand), numerical (screen
size, weight, price) and free-text (description) attributes.  The
generator plants the exact phenomena Keyword++ exploits: "IBM" appearing
in descriptions of Lenovo-branded laptops, "small"/"light" correlating
with low screen size / weight, so that differential-query-pair analysis
can recover the mappings.
"""

from __future__ import annotations

import random
from typing import List

from repro.relational.database import Database
from repro.relational.schema import Column, Schema, TableSchema

BRANDS = ["lenovo", "asus", "dell", "apple", "acer", "toshiba"]
#: Brand synonyms that appear in descriptions but never in the brand column.
BRAND_SYNONYMS = {"ibm": "lenovo", "mac": "apple"}
CATEGORIES = ["laptop", "tablet", "desktop", "monitor"]
MODEL_WORDS = [
    "thinkpad", "aspire", "inspiron", "pavilion", "macbook", "zenbook",
    "satellite", "latitude", "ideapad", "chromebook",
]
DESC_WORDS = [
    "business", "gaming", "student", "portable", "performance", "battery",
    "display", "keyboard", "storage", "memory", "graphics", "ultralight",
]


def product_schema() -> Schema:
    return Schema(
        [
            TableSchema(
                "product",
                (
                    Column("pid", "int"),
                    Column("name", "str", text=True),
                    Column("brand", "str", text=True),
                    Column("category", "str", text=True),
                    Column("screen_size", "float", nullable=True),
                    Column("weight", "float", nullable=True),
                    Column("price", "float"),
                    Column("description", "str", text=True),
                ),
                primary_key="pid",
            )
        ]
    )


def generate_product_db(n_products: int = 200, seed: int = 13) -> Database:
    """Generate the product catalog.

    Planted correlations:

    * ~60% of Lenovo laptop descriptions mention "ibm";
    * descriptions of small-screen products mention "small";
    * descriptions of light products mention "light".
    """
    rng = random.Random(seed)
    db = Database(product_schema())
    for pid in range(n_products):
        brand = rng.choice(BRANDS)
        category = rng.choice(CATEGORIES)
        model = rng.choice(MODEL_WORDS)
        name = f"{model} {rng.randrange(100, 999)}"
        screen = round(rng.uniform(10.0, 17.5), 1)
        weight = round(rng.uniform(0.9, 3.5), 2)
        price = round(rng.uniform(300, 2500), 2)
        desc_terms = rng.sample(DESC_WORDS, 3)
        desc = f"{category} for {desc_terms[0]} with {desc_terms[1]} {desc_terms[2]}"
        if brand == "lenovo" and rng.random() < 0.6:
            desc += " the ibm heritage"
        if brand == "apple" and rng.random() < 0.5:
            desc += " classic mac design"
        if screen <= 12.5 and rng.random() < 0.7:
            desc += " small and compact"
        if weight <= 1.5 and rng.random() < 0.7:
            desc += " light to carry"
        if price <= 600 and rng.random() < 0.5:
            desc += " cheap value"
        db.insert(
            "product",
            pid=pid,
            name=name,
            brand=brand,
            category=category,
            screen_size=screen,
            weight=weight,
            price=price,
            description=desc,
        )
    return db
