"""XML corpora: slide-transcribed trees and scalable generators.

The hand-built documents reproduce the tutorial's figures exactly so
unit tests can assert slide-level behaviour; the generators scale the
same shapes up (a DBLP-like ``bib`` corpus and an XMark-like ``auctions``
corpus) for the SLCA/ELCA and clustering benchmarks.
"""

from __future__ import annotations

import random
from typing import List

from repro.datasets import words
from repro.xmltree.build import element as e
from repro.xmltree.build import text_element as t
from repro.xmltree.node import XmlNode


def slide_conf_tree() -> XmlNode:
    """Slides 32-33: one conf, two papers — SLCA example.

    ``conf(name=SIGMOD, year=2007,
           paper(title=Keyword, author=Mark, author=Chen),
           paper(title=RDF, author=Mark, author=Zhang))``
    """
    return e(
        "conf",
        t("name", "sigmod"),
        t("year", "2007"),
        e(
            "paper",
            t("title", "keyword"),
            t("author", "mark"),
            t("author", "chen"),
        ),
        e(
            "paper",
            t("title", "rdf"),
            t("author", "mark"),
            t("author", "zhang"),
        ),
    )


def slide_query_consistency_tree() -> XmlNode:
    """Slide 109: conf with two papers and a demo (query consistency)."""
    return e(
        "conf",
        t("name", "sigmod"),
        t("year", "2007"),
        e(
            "paper",
            e("title", t("keyword", "keyword")),
            t("author", "mark"),
            t("author", "yang"),
        ),
        e(
            "paper",
            e("title", t("name", "xml")),
            t("author", "liu"),
            t("author", "chen"),
        ),
        e(
            "demo",
            e("title", t("name", "top-k")),
            t("author", "soliman"),
        ),
    )


def slide_scientist_tree() -> XmlNode:
    """Slide 6: the structured document where John != cloud author."""
    return e(
        "scientists",
        e(
            "scientist",
            t("name", "john"),
            e("publications", e("paper", t("title", "xml"))),
        ),
        e(
            "scientist",
            t("name", "mary"),
            e("publications", e("paper", t("title", "cloud"))),
        ),
    )


def slide_auction_tree() -> XmlNode:
    """Slide 161: auctions with seller/buyer/auctioneer roles for "Tom"."""
    return e(
        "auctions",
        e(
            "closed_auction",
            t("seller", "bob"),
            t("buyer", "mary"),
            t("auctioneer", "tom"),
            t("price", "149.24"),
        ),
        e(
            "closed_auction",
            t("seller", "frank"),
            t("buyer", "tom"),
            t("auctioneer", "louis"),
            t("price", "750.30"),
        ),
        e(
            "open_auction",
            t("seller", "tom"),
            t("buyer", "peter"),
            t("auctioneer", "mark"),
            t("price", "350.00"),
        ),
    )


def slide_imdb_tree() -> XmlNode:
    """Slides 27/36: the imdb tree (movies + director)."""
    return e(
        "imdb",
        e(
            "movie",
            t("name", "shining"),
            t("year", "1980"),
            t("plot", "a haunted hotel in winter"),
        ),
        e(
            "movie",
            t("name", "simpsons"),
            t("year", "1989"),
            t("plot", "tv cartoon"),
        ),
        e(
            "movie",
            t("name", "scoop"),
            t("year", "2006"),
            t("plot", "a journalist mystery"),
        ),
        e(
            "director",
            t("name", "w allen"),
            t("dob", "1935"),
        ),
    )


def generate_bib_xml(
    n_confs: int = 10,
    papers_per_conf: int = 12,
    seed: int = 31,
    with_journals: bool = True,
    with_workshops: bool = False,
) -> XmlNode:
    """A DBLP-like XML corpus: bib/{conf,journal,workshop}/paper/...

    Different container types give XBridge-style clustering distinct
    root-to-result paths to recover.
    """
    rng = random.Random(seed)
    bib = XmlNode("bib")
    containers = ["conf"] * n_confs
    if with_journals:
        containers += ["journal"] * max(1, n_confs // 2)
    if with_workshops:
        containers += ["workshop"] * max(1, n_confs // 3)
    for idx, kind in enumerate(containers):
        container = e(
            kind,
            t("name", words.VENUES[idx % len(words.VENUES)]),
            t("year", str(1998 + (idx * 3) % 13)),
        )
        for _ in range(papers_per_conf):
            topic = words.distinct_zipf_sample(rng, words.TOPIC_WORDS, rng.randint(2, 3))
            paper = e("paper", e("title", t("keyword", " ".join(topic))))
            n_authors = rng.randint(1, 3)
            for _ in range(n_authors):
                first = rng.choice(words.FIRST_NAMES)
                last = rng.choice(words.LAST_NAMES)
                paper.add_child(t("author", f"{first} {last}"))
            if rng.random() < 0.3:
                paper.add_child(
                    t("abstract", " ".join(words.zipf_sample(rng, words.TOPIC_WORDS, 6)))
                )
            container.add_child(paper)
        bib.add_child(container)
    return bib


def generate_auctions_xml(n_auctions: int = 60, seed: int = 37) -> XmlNode:
    """An XMark-like auctions corpus with role ambiguity planted.

    Person names recur across the seller/buyer/auctioneer roles so that
    describable clustering has several role-interpretations per query.
    """
    rng = random.Random(seed)
    people = [rng.choice(words.FIRST_NAMES) for _ in range(20)]
    auctions = XmlNode("auctions")
    for _ in range(n_auctions):
        kind = rng.choice(["closed_auction", "open_auction"])
        node = e(
            kind,
            t("seller", rng.choice(people)),
            t("buyer", rng.choice(people)),
            t("auctioneer", rng.choice(people)),
            t("price", f"{rng.uniform(10, 999):.2f}"),
            e("item", t("name", rng.choice(words.TOPIC_WORDS))),
        )
        auctions.add_child(node)
    return auctions


def generate_deep_auctions_xml(
    n_regions: int = 4,
    categories_per_region: int = 3,
    items_per_category: int = 5,
    seed: int = 47,
) -> XmlNode:
    """A deeply nested XMark-like corpus (depth >= 6).

    site/regions/region/categories/category/items/item/{name,
    description/keyword, seller/person/name} — exercises the d factor in
    the ?LCA complexity bounds and gives clustering real path variety.
    """
    rng = random.Random(seed)
    site = XmlNode("site")
    regions = site.add_child(XmlNode("regions"))
    region_names = ["europe", "asia", "namerica", "samerica", "africa"]
    for ri in range(n_regions):
        region = regions.add_child(XmlNode("region"))
        region.add_child(t("name", region_names[ri % len(region_names)]))
        categories = region.add_child(XmlNode("categories"))
        for _ in range(categories_per_region):
            category = categories.add_child(XmlNode("category"))
            category.add_child(
                t("label", rng.choice(words.TOPIC_WORDS))
            )
            items = category.add_child(XmlNode("items"))
            for _ in range(items_per_category):
                item = items.add_child(XmlNode("item"))
                item.add_child(
                    t("name", " ".join(
                        words.distinct_zipf_sample(rng, words.TOPIC_WORDS, 2)
                    ))
                )
                description = item.add_child(XmlNode("description"))
                description.add_child(
                    t("keyword", " ".join(
                        words.zipf_sample(rng, words.TOPIC_WORDS, 3)
                    ))
                )
                seller = item.add_child(XmlNode("seller"))
                person = seller.add_child(XmlNode("person"))
                person.add_child(
                    t("name", rng.choice(words.FIRST_NAMES))
                )
    return site
