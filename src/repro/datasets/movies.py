"""IMDB-like movie database (tutorial slides 25-27, 36: the imdb example)."""

from __future__ import annotations

import random
from typing import List

from repro.datasets import words
from repro.relational.database import Database
from repro.relational.schema import Column, ForeignKey, Schema, TableSchema

MOVIE_WORDS = [
    "shining", "simpsons", "scoop", "friends", "matrix", "godfather",
    "casablanca", "alien", "vertigo", "psycho", "jaws", "rocky",
    "gladiator", "amadeus", "fargo", "heat", "seven", "memento",
]

PLOT_WORDS = [
    "meaning", "life", "love", "war", "family", "crime", "revenge",
    "journey", "dream", "mystery", "island", "city", "future", "past",
    "hotel", "winter", "summer", "secret", "money", "power",
]

DIRECTOR_NAMES = [
    "woody allen", "stanley kubrick", "alfred hitchcock", "sofia coppola",
    "ridley scott", "david lynch", "joel coen", "wes anderson",
    "kathryn bigelow", "spike lee",
]


def movie_schema() -> Schema:
    return Schema(
        [
            TableSchema(
                "director",
                (
                    Column("did", "int"),
                    Column("name", "str", text=True),
                    Column("dob", "int", nullable=True),
                ),
                primary_key="did",
            ),
            TableSchema(
                "movie",
                (
                    Column("mid", "int"),
                    Column("title", "str", text=True),
                    Column("year", "int"),
                    Column("plot", "str", nullable=True, text=True),
                    Column("did", "int", nullable=True),
                ),
                primary_key="mid",
                foreign_keys=(ForeignKey("did", "director", "did"),),
            ),
            TableSchema(
                "actor",
                (
                    Column("acid", "int"),
                    Column("name", "str", text=True),
                ),
                primary_key="acid",
            ),
            TableSchema(
                "casts",
                (
                    Column("csid", "int"),
                    Column("mid", "int"),
                    Column("acid", "int"),
                    Column("role", "str", nullable=True, text=True),
                ),
                primary_key="csid",
                foreign_keys=(
                    ForeignKey("mid", "movie", "mid"),
                    ForeignKey("acid", "actor", "acid"),
                ),
            ),
        ]
    )


def generate_movie_db(
    n_directors: int = 10,
    n_movies: int = 80,
    n_actors: int = 40,
    avg_cast: float = 3.0,
    seed: int = 11,
) -> Database:
    """Generate a movie database with Zipf-skewed plot vocabulary."""
    rng = random.Random(seed)
    db = Database(movie_schema())
    for did in range(n_directors):
        name = DIRECTOR_NAMES[did % len(DIRECTOR_NAMES)]
        dob = 1930 + rng.randrange(50)
        db.insert("director", did=did, name=name, dob=dob)
    for mid in range(n_movies):
        title = " ".join(
            words.distinct_zipf_sample(rng, MOVIE_WORDS, rng.randint(1, 2))
        )
        year = 1960 + rng.randrange(60)
        plot = None
        if rng.random() < 0.8:
            plot = "a story about " + " ".join(
                words.zipf_sample(rng, PLOT_WORDS, rng.randint(3, 6))
            )
        did = rng.randrange(n_directors) if rng.random() < 0.9 else None
        db.insert("movie", mid=mid, title=title, year=year, plot=plot, did=did)
    for acid in range(n_actors):
        first = rng.choice(words.FIRST_NAMES)
        last = rng.choice(words.LAST_NAMES)
        db.insert("actor", acid=acid, name=f"{first} {last}")
    csid = 0
    for mid in range(n_movies):
        count = max(1, int(rng.gauss(avg_cast, 1.0)))
        for acid in rng.sample(range(n_actors), min(count, n_actors)):
            role = rng.choice(PLOT_WORDS) if rng.random() < 0.4 else None
            db.insert("casts", csid=csid, mid=mid, acid=acid, role=role)
            csid += 1
    return db
