"""Shared word pools and Zipfian sampling helpers for the generators.

Term pools intentionally include the tokens the tutorial's worked
examples use ("widom", "xml", "john", "sigmod", "keyword", "mark", …) so
unit tests can reproduce the slides verbatim against generated data.
"""

from __future__ import annotations

import random
from typing import List, Sequence

FIRST_NAMES = [
    "john", "mary", "david", "wei", "yi", "ziyang", "jennifer", "mark",
    "michael", "susan", "rakesh", "hector", "jeffrey", "jim", "anna",
    "peter", "laura", "chen", "serge", "moshe", "dan", "alice", "bob",
    "carol", "frank", "grace", "henry", "irene", "tom", "louis",
]

LAST_NAMES = [
    "widom", "smith", "jones", "ullman", "dewitt", "gray", "stonebraker",
    "chen", "wang", "liu", "garcia", "molina", "abiteboul", "vardi",
    "naughton", "papakonstantinou", "hristidis", "chaudhuri", "agrawal",
    "seltzer", "yang", "zhang", "lin", "luo", "qin", "sun", "li", "xu",
    "guo", "he", "bao", "kacholia", "bhalotia", "markowetz",
]

TOPIC_WORDS = [
    "xml", "keyword", "search", "database", "query", "processing",
    "cloud", "computing", "mining", "olap", "stream", "index", "join",
    "optimization", "transaction", "recovery", "parallel", "distributed",
    "graph", "tree", "ranking", "retrieval", "schema", "relational",
    "semantic", "web", "data", "storage", "cache", "benchmark",
    "scalability", "privacy", "provenance", "skyline", "spatial",
    "temporal", "probabilistic", "uncertain", "workflow", "clustering",
]

FILLER_WORDS = [
    "novel", "efficient", "effective", "scalable", "adaptive", "robust",
    "towards", "revisiting", "analysis", "framework", "approach",
    "system", "model", "algorithms", "techniques", "evaluation",
    "exploration", "integration", "management", "discovery",
]

VENUES = [
    "sigmod", "vldb", "icde", "edbt", "cikm", "www", "kdd", "sigir",
    "pods", "tods",
]

CITIES = [
    "houston", "dallas", "austin", "detroit", "flint", "lansing",
    "seattle", "portland", "boston", "chicago", "denver", "phoenix",
]

STATES = ["tx", "mi", "wa", "or", "ma", "il", "co", "az"]

MONTHS = [
    "jan", "feb", "mar", "apr", "may", "jun",
    "jul", "aug", "sep", "oct", "nov", "dec",
]


def zipf_weights(n: int, s: float = 1.0) -> List[float]:
    """Weights proportional to 1/rank^s for ranks 1..n."""
    return [1.0 / (rank ** s) for rank in range(1, n + 1)]


def zipf_choice(rng: random.Random, pool: Sequence[str], s: float = 1.0) -> str:
    """Draw one item from *pool* with Zipfian (rank-skewed) probability."""
    return rng.choices(pool, weights=zipf_weights(len(pool), s), k=1)[0]


def zipf_sample(
    rng: random.Random, pool: Sequence[str], k: int, s: float = 1.0
) -> List[str]:
    """Draw *k* items with replacement, Zipfian-skewed."""
    return rng.choices(pool, weights=zipf_weights(len(pool), s), k=k)


def distinct_zipf_sample(
    rng: random.Random, pool: Sequence[str], k: int, s: float = 1.0
) -> List[str]:
    """Draw up to *k* distinct items, preferring high-rank ones."""
    seen: List[str] = []
    attempts = 0
    while len(seen) < min(k, len(pool)) and attempts < 20 * k:
        item = zipf_choice(rng, pool, s)
        if item not in seen:
            seen.append(item)
        attempts += 1
    return seen
