"""Events table — the aggregate-keyword-search example of slides 16 & 165.

``TUTORIAL_EVENTS`` reproduces the slide's table verbatim (month, state,
city, event, description) so the Zhou & Pei minimal-group-by algorithm
can be unit-tested against the slide's expected clusters
("December Texas" and "* Michigan").  ``generate_events_db`` scales the
same shape up for benchmarking.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.datasets import words
from repro.relational.database import Database
from repro.relational.schema import Column, Schema, TableSchema

#: Verbatim rows from tutorial slide 16/165.
TUTORIAL_EVENTS: List[Dict[str, object]] = [
    {"eid": 0, "month": "dec", "state": "tx", "city": "houston",
     "event": "us open pool", "description": "best of 19 ranking"},
    {"eid": 1, "month": "dec", "state": "tx", "city": "dallas",
     "event": "cowboys dream run", "description": "motorcycle beer"},
    {"eid": 2, "month": "dec", "state": "tx", "city": "austin",
     "event": "spam museum party", "description": "classical american food"},
    {"eid": 3, "month": "oct", "state": "mi", "city": "detroit",
     "event": "motorcycle rallies", "description": "tournament round robin"},
    {"eid": 4, "month": "oct", "state": "mi", "city": "flint",
     "event": "michigan pool exhibition", "description": "non ranking 2 days"},
    {"eid": 5, "month": "sep", "state": "mi", "city": "lansing",
     "event": "american food history", "description": "the best food from usa"},
]

EVENT_WORDS = [
    "pool", "motorcycle", "american", "food", "music", "festival",
    "marathon", "exhibition", "tournament", "parade", "rodeo", "fair",
]


def events_schema() -> Schema:
    return Schema(
        [
            TableSchema(
                "events",
                (
                    Column("eid", "int"),
                    Column("month", "str", text=True),
                    Column("state", "str", text=True),
                    Column("city", "str", text=True),
                    Column("event", "str", text=True),
                    Column("description", "str", text=True),
                ),
                primary_key="eid",
            )
        ]
    )


def tutorial_events_db() -> Database:
    """The exact six-row table from the slides."""
    db = Database(events_schema())
    for record in TUTORIAL_EVENTS:
        db.insert("events", **record)
    return db


def generate_events_db(n_events: int = 300, seed: int = 17) -> Database:
    """A larger events table with the same attribute structure."""
    rng = random.Random(seed)
    db = Database(events_schema())
    for record in TUTORIAL_EVENTS:
        db.insert("events", **record)
    for eid in range(len(TUTORIAL_EVENTS), n_events):
        month = rng.choice(words.MONTHS)
        state = rng.choice(words.STATES)
        city = rng.choice(words.CITIES)
        terms = words.distinct_zipf_sample(rng, EVENT_WORDS, rng.randint(1, 2))
        event = " ".join(terms + [rng.choice(["show", "night", "day", "open"])])
        description = " ".join(words.zipf_sample(rng, EVENT_WORDS, 3))
        db.insert(
            "events",
            eid=eid,
            month=month,
            state=state,
            city=city,
            event=event,
            description=description,
        )
    return db
