"""Deterministic synthetic datasets.

Substitutes for the corpora the surveyed papers evaluate on (DBLP, IMDB,
product catalogs, INEX/XMark XML, query & click logs).  All generators
take an explicit ``seed`` and produce identical output for identical
parameters, which makes every test and benchmark reproducible.
"""

from repro.datasets.bibliographic import bibliographic_schema, generate_bibliographic_db
from repro.datasets.movies import movie_schema, generate_movie_db
from repro.datasets.products import product_schema, generate_product_db
from repro.datasets.events import events_schema, generate_events_db, TUTORIAL_EVENTS
from repro.datasets.xml_corpora import (
    generate_bib_xml,
    generate_auctions_xml,
    slide_conf_tree,
    slide_auction_tree,
    slide_imdb_tree,
)
from repro.datasets.logs import (
    QueryLogEntry,
    ClickLogEntry,
    generate_query_log,
    generate_click_log,
)

__all__ = [
    "bibliographic_schema",
    "generate_bibliographic_db",
    "movie_schema",
    "generate_movie_db",
    "product_schema",
    "generate_product_db",
    "events_schema",
    "generate_events_db",
    "TUTORIAL_EVENTS",
    "generate_bib_xml",
    "generate_auctions_xml",
    "slide_conf_tree",
    "slide_auction_tree",
    "slide_imdb_tree",
    "QueryLogEntry",
    "ClickLogEntry",
    "generate_query_log",
    "generate_click_log",
]
