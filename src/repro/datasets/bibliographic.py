"""DBLP-like bibliographic database generator.

The running example of the tutorial (slides 2, 10, 28, 44, 115): schema
``conference — paper — write — author`` plus a ``cite`` self-relationship
on papers.  Fan-outs and term skew are controllable; defaults mimic a
small DBLP slice.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.datasets import words
from repro.relational.database import Database
from repro.relational.schema import Column, ForeignKey, Schema, TableSchema


def bibliographic_schema(with_cite: bool = True) -> Schema:
    """The author–write–paper–conference(–cite) schema."""
    tables = [
        TableSchema(
            "author",
            (
                Column("aid", "int"),
                Column("name", "str", text=True),
                Column("affiliation", "str", nullable=True, text=True),
            ),
            primary_key="aid",
        ),
        TableSchema(
            "conference",
            (
                Column("cid", "int"),
                Column("name", "str", text=True),
                Column("year", "int"),
                Column("location", "str", nullable=True, text=True),
            ),
            primary_key="cid",
        ),
        TableSchema(
            "paper",
            (
                Column("pid", "int"),
                Column("title", "str", text=True),
                Column("abstract", "str", nullable=True, text=True),
                Column("cid", "int"),
            ),
            primary_key="pid",
            foreign_keys=(ForeignKey("cid", "conference", "cid"),),
        ),
        TableSchema(
            "write",
            (
                Column("wid", "int"),
                Column("aid", "int"),
                Column("pid", "int"),
            ),
            primary_key="wid",
            foreign_keys=(
                ForeignKey("aid", "author", "aid"),
                ForeignKey("pid", "paper", "pid"),
            ),
        ),
    ]
    if with_cite:
        tables.append(
            TableSchema(
                "cite",
                (
                    Column("ctid", "int"),
                    Column("citing", "int"),
                    Column("cited", "int"),
                ),
                primary_key="ctid",
                foreign_keys=(
                    ForeignKey("citing", "paper", "pid"),
                    ForeignKey("cited", "paper", "pid"),
                ),
            )
        )
    return Schema(tables)


def generate_bibliographic_db(
    n_authors: int = 60,
    n_conferences: int = 8,
    n_papers: int = 150,
    avg_authors_per_paper: float = 2.2,
    avg_citations_per_paper: float = 1.5,
    seed: int = 7,
    with_cite: bool = True,
) -> Database:
    """Generate a populated bibliographic database.

    Titles/abstracts draw topic terms Zipfianly so that common terms
    ("database", "query") produce large tuple sets and rare ones small —
    the skew the top-k and SLCA experiments exercise.
    """
    rng = random.Random(seed)
    db = Database(bibliographic_schema(with_cite=with_cite))

    for aid in range(n_authors):
        first = words.FIRST_NAMES[aid % len(words.FIRST_NAMES)]
        last = rng.choice(words.LAST_NAMES)
        affiliation = rng.choice(
            ["stanford", "asu", "unsw", "mit", "wisconsin", "tsinghua", None]
        )
        db.insert(
            "author", aid=aid, name=f"{first} {last}", affiliation=affiliation
        )

    for cid in range(n_conferences):
        name = words.VENUES[cid % len(words.VENUES)]
        year = 1998 + (cid * 3) % 13
        location = rng.choice(words.CITIES)
        db.insert("conference", cid=cid, name=name, year=year, location=location)

    for pid in range(n_papers):
        topic = words.distinct_zipf_sample(rng, words.TOPIC_WORDS, rng.randint(2, 4))
        filler = rng.sample(words.FILLER_WORDS, 2)
        title = " ".join([filler[0]] + topic + [filler[1]])
        abstract = None
        if rng.random() < 0.7:
            abstract_terms = words.zipf_sample(rng, words.TOPIC_WORDS, 8)
            abstract = "we study " + " ".join(abstract_terms)
        cid = rng.randrange(n_conferences)
        db.insert("paper", pid=pid, title=title, abstract=abstract, cid=cid)

    wid = 0
    for pid in range(n_papers):
        count = max(1, int(rng.gauss(avg_authors_per_paper, 1.0)))
        for aid in rng.sample(range(n_authors), min(count, n_authors)):
            db.insert("write", wid=wid, aid=aid, pid=pid)
            wid += 1

    if with_cite:
        ctid = 0
        for pid in range(n_papers):
            count = max(0, int(rng.gauss(avg_citations_per_paper, 1.0)))
            for _ in range(count):
                cited = rng.randrange(n_papers)
                if cited != pid:
                    db.insert("cite", ctid=ctid, citing=pid, cited=cited)
                    ctid += 1
    return db


def tiny_bibliographic_db() -> Database:
    """The hand-written instance behind the slide examples.

    Contains John's SIGMOD paper ("XML keyword search"), a Widom XML
    paper, and enough structure that queries like ``{john, sigmod}`` and
    ``{widom, xml}`` have the interpretations slides 10 and 28 enumerate.
    """
    db = Database(bibliographic_schema(with_cite=True))
    authors = [
        (0, "john smith", "stanford"),
        (1, "jennifer widom", "stanford"),
        (2, "mark chen", "asu"),
        (3, "david dewitt", "wisconsin"),
        (4, "john ullman", None),
    ]
    for aid, name, aff in authors:
        db.insert("author", aid=aid, name=name, affiliation=aff)
    conferences = [
        (0, "sigmod", 2007, "beijing"),
        (1, "vldb", 2008, "auckland"),
        (2, "icde", 2011, "hannover"),
    ]
    for cid, name, year, loc in conferences:
        db.insert("conference", cid=cid, name=name, year=year, location=loc)
    papers = [
        (0, "xml keyword search", "keyword search on xml data", 0),
        (1, "join processing revisited", "hash join algorithms", 1),
        (2, "cloud data management", "cloud computing for databases", 2),
        (3, "xml query optimization", "optimizing xquery", 1),
    ]
    for pid, title, abstract, cid in papers:
        db.insert("paper", pid=pid, title=title, abstract=abstract, cid=cid)
    writes = [(0, 0, 0), (1, 2, 0), (2, 1, 3), (3, 3, 1), (4, 4, 2), (5, 0, 2)]
    for wid, aid, pid in writes:
        db.insert("write", wid=wid, aid=aid, pid=pid)
    cites = [(0, 0, 3), (1, 2, 0)]
    for ctid, citing, cited in cites:
        db.insert("cite", ctid=ctid, citing=citing, cited=cited)
    return db
