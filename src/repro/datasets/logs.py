"""Query-log and click-log generators.

Several surveyed techniques consume usage logs: IQP (slide 46) estimates
keyword-binding probabilities from a query log, faceted search (slides
85-90) estimates expansion probabilities from historical selection
conditions, Keyword++ (slide 98) mines differential query pairs, and
Cheng et al. (slide 101) mine synonyms from click overlap.  Real logs
are proprietary, so we synthesise logs from the database itself with a
known intent distribution — which also gives benchmarks ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.index.text import tokenize
from repro.relational.database import Database, TupleId


@dataclass(frozen=True)
class QueryLogEntry:
    """One historical query.

    ``keywords`` is the raw keyword sequence; ``conditions`` the
    structured selection conditions the user (conceptually) meant, e.g.
    ``{"brand": "lenovo", "price": (0, 800)}``; ``template`` names the
    join template / form the query used, when known.
    """

    keywords: Tuple[str, ...]
    conditions: Tuple[Tuple[str, object], ...] = ()
    template: Optional[str] = None

    def condition_dict(self) -> Dict[str, object]:
        return dict(self.conditions)


@dataclass(frozen=True)
class ClickLogEntry:
    """A query together with the tuples the user clicked."""

    keywords: Tuple[str, ...]
    clicked: Tuple[TupleId, ...]


def generate_query_log(
    db: Database,
    table: str,
    n_queries: int = 200,
    attributes: Optional[Sequence[str]] = None,
    seed: int = 23,
) -> List[QueryLogEntry]:
    """Generate selection-style queries against one table.

    Each query picks a random row and turns 1-2 of its attribute values
    into conditions; keyword text is drawn from the row's text columns.
    Numeric attributes yield range conditions around the value.
    """
    rng = random.Random(seed)
    tbl = db.table(table)
    rows = list(tbl.rows())
    if not rows:
        return []
    schema = tbl.schema
    if attributes is None:
        attributes = [c.name for c in schema.columns if c.name != schema.primary_key]
    out: List[QueryLogEntry] = []
    for _ in range(n_queries):
        row = rng.choice(rows)
        n_conditions = rng.randint(1, min(2, len(attributes)))
        chosen = rng.sample(list(attributes), n_conditions)
        conditions: List[Tuple[str, object]] = []
        keyword_pool: List[str] = []
        for attr in chosen:
            value = row[attr]
            if value is None:
                continue
            column = schema.column(attr)
            if column.dtype in ("int", "float") and not column.text:
                span = abs(float(value)) * 0.2 + 1.0
                lo = round(float(value) - rng.uniform(0, span), 2)
                hi = round(float(value) + rng.uniform(0, span), 2)
                conditions.append((attr, (lo, hi)))
            else:
                conditions.append((attr, value))
                keyword_pool.extend(tokenize(str(value)))
        if not conditions:
            continue
        if not keyword_pool:
            keyword_pool = tokenize(row.text()) or ["item"]
        k = rng.randint(1, min(3, len(keyword_pool)))
        keywords = tuple(rng.sample(keyword_pool, k))
        out.append(QueryLogEntry(keywords=keywords, conditions=tuple(conditions)))
    return out


def generate_click_log(
    db: Database,
    table: str,
    n_queries: int = 200,
    noise: float = 0.1,
    seed: int = 29,
) -> List[ClickLogEntry]:
    """Generate click-log entries with known intent.

    Each entry targets one row: the query keywords are a sample of the
    row's tokens (possibly phrased differently across entries — this is
    what synonym mining detects) and the click set contains the target
    plus occasional noise clicks.
    """
    rng = random.Random(seed)
    tbl = db.table(table)
    rows = list(tbl.rows())
    if not rows:
        return []
    out: List[ClickLogEntry] = []
    for _ in range(n_queries):
        row = rng.choice(rows)
        tokens = tokenize(row.text())
        if not tokens:
            continue
        k = rng.randint(1, min(3, len(tokens)))
        keywords = tuple(rng.sample(tokens, k))
        clicked = [TupleId(table, row.rowid)]
        if rng.random() < noise:
            other = rng.choice(rows)
            if other.rowid != row.rowid:
                clicked.append(TupleId(table, other.rowid))
        out.append(ClickLogEntry(keywords=keywords, clicked=tuple(clicked)))
    return out


def binding_frequencies(
    log: Sequence[QueryLogEntry],
) -> Dict[Tuple[str, str], int]:
    """(attribute, keyword) -> count, the statistic IQP's Pr[A_i | T] needs."""
    counts: Dict[Tuple[str, str], int] = {}
    for entry in log:
        for attr, value in entry.conditions:
            if isinstance(value, tuple):
                continue
            for token in tokenize(str(value)):
                key = (attr, token)
                counts[key] = counts.get(key, 0) + 1
    return counts
